(* Standalone rsim-lint driver, the binary the CI lint job runs: scan
   the workspace, diff the findings against the committed baseline,
   optionally write the JSON report, exit 1 on fresh findings. The
   [rsim lint] subcommand wraps the same library with the same
   semantics; this one exists so linting needs nothing but dune and
   compiler-libs. *)

let () =
  let root = ref "." in
  let baseline = ref None in
  let out = ref None in
  let update = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR workspace root (default: .)");
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "PATH baseline file (default: ROOT/lint.baseline.json)" );
      ( "--out",
        Arg.String (fun s -> out := Some s),
        "PATH write the JSON report here" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline to the current findings and exit 0" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "rsim_lint [options]";
  let root = !root in
  let bpath =
    match !baseline with
    | Some p -> p
    | None -> Filename.concat root "lint.baseline.json"
  in
  let report = Lint.scan ~root () in
  match Lint.load_baseline ~path:bpath with
  | Error e ->
    prerr_endline e;
    exit 2
  | Ok base ->
    let fresh = Lint.fresh_against ~baseline:base report.Lint.findings in
    (match !out with
    | None -> ()
    | Some p ->
      let oc = open_out p in
      output_string oc
        (Rsim_obs.Obs.Json.to_string_pretty
           (Lint.report_to_json ~tool:"rsim-lint" ~fresh report));
      output_string oc "\n";
      close_out oc);
    if !update then begin
      let oc = open_out bpath in
      output_string oc (Lint.baseline_to_string report.Lint.findings);
      close_out oc;
      Printf.printf "baseline updated: %d findings\n"
        (List.length report.Lint.findings)
    end
    else begin
      Printf.printf "rsim-lint: %d files, %d findings (%d baselined, %d fresh)\n"
        report.Lint.files
        (List.length report.Lint.findings)
        (List.length report.Lint.findings - List.length fresh)
        (List.length fresh);
      List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) fresh;
      if fresh <> [] then exit 1
    end
