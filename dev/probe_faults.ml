(* Watchdog calibration probe: run clean simulations across shapes and
   seeds and count runs the default supervision watchdog would wrongly
   quarantine. Lemma 31's step bound only covers all-covering
   simulations, so [Harness.default_watchdog] takes a generous multiple;
   this probe is how that multiple was sized. Expected output:
   "total failures: 0". *)
open Rsim_value
open Rsim_shmem
open Rsim_simulation
open Rsim_protocols
let i n = Value.Int n
let () =
  let bad = ref 0 in
  for seed = 0 to 200 do
    List.iter (fun (m, cov, d) ->
      let f = cov + d in
      let n = (cov * m) + d in
      let inputs = List.init f (fun p -> i (p + 1)) in
      let spec = { Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input); n; m; f; d; inputs } in
      let r = Harness.run ~max_ops:500_000 ~sched:(Schedule.random ~seed) spec in
      if not r.Harness.all_done then begin
        incr bad;
        if !bad <= 5 then begin
          Printf.printf "NOT DONE seed=%d m=%d f=%d d=%d bound=%d ops=[%s] quarantined=%d\n"
            seed m f d (Complexity.step_bound ~f ~m)
            (String.concat ";" (Array.to_list (Array.map string_of_int r.Harness.ops_per_sim)))
            (List.length r.Harness.report.Harness.quarantined)
        end
      end)
      [ (1,1,0); (1,1,1); (2,1,0); (2,2,0); (2,1,1); (3,1,0); (3,2,1); (3,3,1); (2,3,1) ]
  done;
  Printf.printf "total failures: %d\n" !bad
