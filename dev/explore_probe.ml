(* Scratch: inspect the violations the pruned engine reports on the
   Yield_on_higher seeded bug, to tune the dedup-soundness test. *)
open Rsim_explore
open Rsim_augmented

let () =
  let w =
    match
      Explore.Aug_target.builtin ~inject:Aug.Yield_on_higher
        ~oracles:[ Explore.Aug_target.theorem20 ]
        ~name:"bu-conflict" ~f:2 ~m:2 ()
    with
    | Some w -> w
    | None -> failwith "no workload"
  in
  let rep = Explore.exhaustive ~max_steps:10 ~domains:1 w in
  Printf.printf "violations: %d (dedup %d, pruned %d)\n"
    (List.length rep.Explore.violations)
    rep.Explore.dedup_hits rep.Explore.pruned;
  List.iter
    (fun v ->
      Printf.printf "script [%s] original [%s]\n"
        (String.concat ";" (List.map string_of_int v.Explore.script))
        (String.concat ";" (List.map string_of_int v.Explore.original));
      List.iter (fun e -> Printf.printf "   err: %s\n" e) v.Explore.errors)
    rep.Explore.violations
