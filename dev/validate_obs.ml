(* CI schema check for the observability outputs.

   Usage:  validate_obs metrics FILE   — a `rsim ... --metrics json` dump
           validate_obs trace FILE     — a `--trace-out` Chrome trace
           validate_obs bench FILE     — bench's BENCH_obs.json
           validate_obs explore FILE   — bench's BENCH_explore.json

   For [metrics], FILE may be a whole captured stdout: the dump is the
   last line starting with '{'. Exits 0 if the file matches the schema,
   1 with a diagnostic on stderr otherwise. *)

module J = Rsim_obs.Obs.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("validate_obs: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse what s =
  match J.parse s with Ok j -> j | Error e -> fail "%s: bad JSON: %s" what e

let obj_field what j name =
  match J.member name j with
  | Some v -> v
  | None -> fail "%s: missing field %S" what name

let check_metrics path =
  let last_json_line =
    List.fold_left
      (fun acc line ->
        if String.length line > 0 && line.[0] = '{' then Some line else acc)
      None
      (String.split_on_char '\n' (read_file path))
  in
  let line =
    match last_json_line with
    | Some l -> l
    | None -> fail "metrics: no line starting with '{' in %s" path
  in
  let j = parse "metrics" line in
  let counters = obj_field "metrics" j "counters" in
  ignore (obj_field "metrics" j "gauges");
  let histograms = obj_field "metrics" j "histograms" in
  (* the instrumented hot paths must actually have reported *)
  List.iter
    (fun name ->
      match J.member name counters with
      | Some (J.Int n) when n >= 0 -> ()
      | Some _ -> fail "metrics: counter %S is not a non-negative int" name
      | None -> fail "metrics: counter %S missing" name)
    [ "explore.executions"; "fiber.ops"; "aug.bu.total" ];
  (match J.member "explore.preemptions" histograms with
  | Some h ->
    (match (J.member "count" h, J.member "sum" h, J.member "buckets" h) with
    | Some (J.Int _), Some (J.Int _), Some (J.Arr _) -> ()
    | _ -> fail "metrics: explore.preemptions histogram malformed")
  | None -> fail "metrics: histogram explore.preemptions missing");
  print_endline "metrics dump ok"

let check_trace path =
  let j = parse "trace" (read_file path) in
  let evs =
    match J.member "traceEvents" j with
    | Some (J.Arr evs) -> evs
    | Some _ -> fail "trace: traceEvents is not an array"
    | None -> fail "trace: missing traceEvents"
  in
  if evs = [] then fail "trace: no events recorded";
  List.iteri
    (fun i ev ->
      List.iter
        (fun f ->
          match J.member f ev with
          | Some (J.Str _) when f = "name" || f = "ph" -> ()
          | Some (J.Int _) when f <> "name" && f <> "ph" -> ()
          | Some _ -> fail "trace: event %d: field %S has the wrong type" i f
          | None -> fail "trace: event %d: missing field %S" i f)
        [ "name"; "ph"; "pid"; "tid"; "ts" ];
      match J.member "ph" ev with
      | Some (J.Str ("i" | "X" | "C")) -> ()
      | _ -> fail "trace: event %d: unknown phase" i)
    evs;
  Printf.printf "trace ok: %d events\n" (List.length evs)

let check_bench path =
  let j = parse "bench" (read_file path) in
  List.iter
    (fun name ->
      match obj_field "bench" j name with
      | J.Float f when Float.is_finite f && f >= 0. -> ()
      | J.Int n when n >= 0 -> ()
      | _ -> fail "bench: %S is not a non-negative number" name)
    [
      "schedules_per_sec_obs_off";
      "schedules_per_sec_obs_on";
      "aug_ops_per_sec";
      "trace_events";
    ];
  ignore (obj_field "bench" j "obs_on_overhead_pct");
  print_endline "bench snapshot ok"

let check_explore path =
  let j = parse "explore" (read_file path) in
  let positive what v =
    match v with
    | J.Float f when Float.is_finite f && f > 0. -> ()
    | J.Int n when n > 0 -> ()
    | _ -> fail "explore: %S is not a positive number" what
  in
  let side name =
    let s = obj_field "explore" j name in
    positive (name ^ ".wall_s") (obj_field "explore" s "wall_s");
    positive (name ^ ".executions") (obj_field "explore" s "executions");
    positive (name ^ ".prefixes") (obj_field "explore" s "prefixes");
    match obj_field "explore" s "violations" with
    | J.Int 0 -> ()
    | _ -> fail "explore: %s run of the clean workload found violations" name
  in
  side "naive";
  side "engine";
  (* The engine must never lose to the O(L^2) baseline outright; the
     >= 4x target is asserted on the CI runner, not here — wall-clock
     thresholds are too machine-dependent for a schema check. *)
  positive "speedup_vs_naive" (obj_field "explore" j "speedup_vs_naive");
  (match obj_field "explore" j "scaling" with
  | J.Arr rows when List.length rows >= 2 ->
    let execs =
      List.map
        (fun row ->
          positive "scaling.domains" (obj_field "explore" row "domains");
          positive "scaling.scheds_per_sec"
            (obj_field "explore" row "scheds_per_sec");
          obj_field "explore" row "executions")
        rows
    in
    (* pruning is off for the scaling runs: every domain count must have
       done identical work, or the engine is not domain-count invariant *)
    (match execs with
    | e :: rest when List.for_all (( = ) e) rest -> ()
    | _ -> fail "explore: scaling rows did different amounts of work")
  | J.Arr _ -> fail "explore: scaling has fewer than 2 rows"
  | _ -> fail "explore: scaling is not an array");
  positive "scaling_1_to_4" (obj_field "explore" j "scaling_1_to_4");
  print_endline "explore snapshot ok"

let () =
  match Sys.argv with
  | [| _; "metrics"; path |] -> check_metrics path
  | [| _; "trace"; path |] -> check_trace path
  | [| _; "bench"; path |] -> check_bench path
  | [| _; "explore"; path |] -> check_explore path
  | _ ->
    prerr_endline "usage: validate_obs (metrics|trace|bench|explore) FILE";
    exit 2
