open Rsim_value
open Rsim_shmem
open Rsim_simulation

let () =
  (* f=1 covering simulator over racing consensus with m=3, n=3 *)
  let spec = {
    Harness.protocol = (fun pid input -> (Rsim_protocols.Racing.protocol ~m:3 ()) pid input);
    n = 3; m = 3; f = 1; d = 0; inputs = [ Value.Int 42 ];
  } in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  Printf.printf "f=1: all_done=%b outputs=%s total_ops=%d bus=%s\n"
    r.Harness.all_done
    (String.concat "," (List.map (fun (i,v) -> Printf.sprintf "%d:%s" i (Value.show v)) r.Harness.outputs))
    r.Harness.total_ops
    (String.concat "," (Array.to_list (Array.map string_of_int r.Harness.bu_counts)));
  (match Harness.validate spec r ~task:Rsim_tasks.Task.consensus with
   | Ok () -> print_endline "consensus OK"
   | Error e -> Printf.printf "violation: %s\n" (Harness.explain e));
  (* f=2: 2 covering simulators, m=2, n=4 racing (broken protocol regime) *)
  let spec2 = {
    Harness.protocol = (fun pid input -> (Rsim_protocols.Racing.protocol ~m:2 ()) pid input);
    n = 4; m = 2; f = 2; d = 0; inputs = [ Value.Int 1; Value.Int 2 ];
  } in
  List.iter (fun seed ->
    let r2 = Harness.run ~sched:(Schedule.random ~seed) spec2 in
    Printf.printf "f=2 seed=%d: all_done=%b outputs=[%s] ops=%d bus=%s  "
      seed r2.Harness.all_done
      (String.concat "," (List.map (fun (i,v) -> Printf.sprintf "%d:%s" i (Value.show v)) r2.Harness.outputs))
      r2.Harness.total_ops
      (String.concat "," (Array.to_list (Array.map string_of_int r2.Harness.bu_counts)));
    (match Harness.validate spec2 r2 ~task:Rsim_tasks.Task.consensus with
     | Ok () -> print_endline "consensus OK"
     | Error e -> Printf.printf "VIOLATION: %s\n" (Harness.explain e));
    (* check the aug spec on the run *)
    let report = Rsim_augmented.Aug_spec.check r2.Harness.aug r2.Harness.trace in
    if not report.Rsim_augmented.Aug_spec.ok then
      Format.printf "AUG SPEC FAIL: %a@." Rsim_augmented.Aug_spec.pp_report report)
    [1;2;3;4;5];
  (* f=2 with d=1 direct simulator, m=2, n=3 *)
  let spec3 = {
    Harness.protocol = (fun pid input -> (Rsim_protocols.Racing.protocol ~m:2 ()) pid input);
    n = 3; m = 2; f = 2; d = 1; inputs = [ Value.Int 7; Value.Int 9 ];
  } in
  List.iter (fun seed ->
    let r3 = Harness.run ~sched:(Schedule.random ~seed) spec3 in
    Printf.printf "f=2 d=1 seed=%d: all_done=%b outputs=[%s]\n"
      seed r3.Harness.all_done
      (String.concat "," (List.map (fun (i,v) -> Printf.sprintf "%d:%s" i (Value.show v)) r3.Harness.outputs)))
    [1;2;3];
  print_endline (Harness.architecture spec3)

let () =
  print_endline "--- analysis ---";
  let spec = {
    Harness.protocol = (fun pid input -> (Rsim_protocols.Racing.protocol ~m:3 ()) pid input);
    n = 6; m = 3; f = 2; d = 0; inputs = [ Value.Int 1; Value.Int 2 ];
  } in
  List.iter (fun seed ->
    let r = Harness.run ~sched:(Schedule.random ~seed) spec in
    let rep = Analysis.check spec r in
    Format.printf "seed=%d: %a@." seed Analysis.pp_report rep)
    [1;2;3;4;5;6;7;8];
  let spec3 = {
    Harness.protocol = (fun pid input -> (Rsim_protocols.Racing.protocol ~m:2 ()) pid input);
    n = 7; m = 2; f = 4; d = 1; inputs = [ Value.Int 1; Value.Int 2; Value.Int 3; Value.Int 4 ];
  } in
  List.iter (fun seed ->
    let r = Harness.run ~sched:(Schedule.random ~seed) spec3 in
    let rep = Analysis.check spec3 r in
    Format.printf "f=4 d=1 seed=%d: ok=%b rev=%d hidden=%d%s@." seed rep.Analysis.ok
      rep.Analysis.stats.Analysis.n_revisions rep.Analysis.stats.Analysis.n_hidden_steps
      (if rep.Analysis.ok then "" else " ERRORS: " ^ String.concat " | " rep.Analysis.errors))
    [1;2;3;4;5]
