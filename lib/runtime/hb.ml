(* Happens-before machinery: per-fiber vector clocks joined on shared-
   location reads/writes, plus control-boundary (fault-plane) events.

   The runtime linearizes every base-object operation, so the trace's
   index order already embeds one valid happens-before order. What the
   vector clocks add is the *per-location* view: a fiber's clock only
   advances past another fiber's events when it actually read a location
   the other fiber published, so "q observed p's write" becomes a
   machine-checkable pointwise comparison instead of an argument about
   scan contents. The explore engine's race oracle and its
   sleep-set-prune certification are both built on this module. *)

type clock = int array

module Clock = struct
  let make n : clock = Array.make n 0
  let copy : clock -> clock = Array.copy

  let tick (c : clock) p = c.(p) <- c.(p) + 1

  let join ~(into : clock) (c : clock) =
    for i = 0 to Array.length into - 1 do
      if c.(i) > into.(i) then into.(i) <- c.(i)
    done

  let leq (a : clock) (b : clock) =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    go 0

  let concurrent a b = (not (leq a b)) && not (leq b a)

  let show (c : clock) =
    "<"
    ^ String.concat ","
        (Array.to_list (Array.map string_of_int c))
    ^ ">"
end

module Tracker = struct
  type t = {
    procs : int;
    clocks : clock array;  (* one clock per fiber, dimension [procs] *)
    published : clock option array;  (* last write's stamp, per location *)
  }

  let create ~procs ~locs =
    {
      procs;
      clocks = Array.init procs (fun _ -> Clock.make procs);
      published = Array.make locs None;
    }

  let procs t = t.procs

  let step t ~pid = Clock.tick t.clocks.(pid) pid

  let write t ~pid ~loc =
    Clock.tick t.clocks.(pid) pid;
    t.published.(loc) <- Some (Clock.copy t.clocks.(pid))

  let read t ~pid ~loc =
    match t.published.(loc) with
    | None -> ()
    | Some c -> Clock.join ~into:t.clocks.(pid) c

  let read_all t ~pid =
    Clock.tick t.clocks.(pid) pid;
    Array.iter
      (function
        | None -> ()
        | Some c -> Clock.join ~into:t.clocks.(pid) c)
      t.published

  (* A ~control boundary event (crash, restart, stall): the fiber's
     local state may be lost, but its place in the happens-before order
     persists — an incarnation edge, modeled as a plain local tick so
     pre-crash events stay ordered before post-restart ones. *)
  let boundary t ~pid = Clock.tick t.clocks.(pid) pid

  let stamp t ~pid = Clock.copy t.clocks.(pid)
end
