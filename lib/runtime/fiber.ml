module type OPS = sig
  type op
  type res
end

type status = Done | Pending | Failed of exn | Crashed

type 'op directive =
  | Proceed
  | Replace of 'op
  | Crash
  | Crash_restart of { delay : int }
  | Stall of { steps : int }
  | Raise of exn

type event =
  | Ev_crash of { pid : int; at : int; restarting : bool }
  | Ev_restart of { pid : int; at : int; incarnation : int }
  | Ev_stall of { pid : int; at : int; steps : int }
  | Ev_replace of { pid : int; at : int }
  | Ev_raise of { pid : int; at : int }

module Obs = Rsim_obs.Obs

(* Always-on fault-plane and throughput counters: one atomic increment
   each, no allocation (the observability plane's "off" cost). *)
let m_ops = Obs.Metrics.counter "fiber.ops"
let m_crashes = Obs.Metrics.counter "fiber.faults.crash"
let m_restarts = Obs.Metrics.counter "fiber.faults.restart"
let m_stalls = Obs.Metrics.counter "fiber.faults.stall"
let m_replaces = Obs.Metrics.counter "fiber.faults.replace"
let m_raises = Obs.Metrics.counter "fiber.faults.raise"

let pp_event fmt = function
  | Ev_crash { pid; at; restarting } ->
    Format.fprintf fmt "crash(pid=%d, at=%d%s)" pid at
      (if restarting then ", restarting" else "")
  | Ev_restart { pid; at; incarnation } ->
    Format.fprintf fmt "restart(pid=%d, at=%d, incarnation=%d)" pid at
      incarnation
  | Ev_stall { pid; at; steps } ->
    Format.fprintf fmt "stall(pid=%d, at=%d, steps=%d)" pid at steps
  | Ev_replace { pid; at } -> Format.fprintf fmt "replace(pid=%d, at=%d)" pid at
  | Ev_raise { pid; at } -> Format.fprintf fmt "raise(pid=%d, at=%d)" pid at

module Make (M : OPS) = struct
  open Effect
  open Effect.Deep

  type _ Effect.t += Op : M.op -> M.res Effect.t

  let op o = perform (Op o)

  type trace_entry = { idx : int; pid : int; op : M.op; res : M.res }

  type result = {
    statuses : status array;
    trace : trace_entry list;
    ops_per_fiber : int array;
    total_ops : int;
    events : event list;
  }

  (* A fiber that performed an operation is suspended here until the
     scheduler picks it. *)
  type suspended = { pending_op : M.op; resume : (M.res, unit) continuation }

  type slot = Fresh | Suspended of suspended | Finished of status

  let start_fiber pid body slots =
    (* Run [body pid] until its first Op, completion, or exception. *)
    match_with
      (fun () -> body pid)
      ()
      {
        retc = (fun () -> slots.(pid) <- Finished Done);
        exnc = (fun e -> slots.(pid) <- Finished (Failed e));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Op o ->
              Some
                (fun (k : (a, unit) continuation) ->
                  slots.(pid) <- Suspended { pending_op = o; resume = k })
            | _ -> None);
      }

  let default_obs_label (_ : M.op) = "op"

  let run ?(max_ops = 1_000_000) ?control ?(max_restarts = 4)
      ?(obs_label = default_obs_label) ?probe ~sched ~apply bodies =
    let n = List.length bodies in
    let bodies_arr = Array.of_list bodies in
    let slots = Array.make n Fresh in
    List.iteri (fun pid body -> start_fiber pid body slots) bodies;
    let ops_per_fiber = Array.make n 0 in
    let rev_trace = ref [] in
    let rev_events = ref [] in
    let total = ref 0 in
    (* [clock] counts scheduling decisions; stall windows and restart
       delays are measured against it, so a stalled or crashed-restarting
       fiber wakes after other fibers have been offered that many turns
       (or immediately, if nobody else can run — time fast-forwards). *)
    let clock = ref 0 in
    let stalled_until = Array.make n 0 in
    let restart_due = Array.make n (-1) in
    let incarnations = Array.make n 0 in
    let event e =
      rev_events := e :: !rev_events;
      (match e with
      | Ev_crash _ -> Obs.Metrics.incr m_crashes
      | Ev_restart _ -> Obs.Metrics.incr m_restarts
      | Ev_stall _ -> Obs.Metrics.incr m_stalls
      | Ev_replace _ -> Obs.Metrics.incr m_replaces
      | Ev_raise _ -> Obs.Metrics.incr m_raises);
      if Obs.Trace.enabled () then
        match e with
        | Ev_crash { pid; at; restarting } ->
          Obs.Trace.instant ~name:"fault.crash" ~pid ~ts:at
            ~args:[ ("restarting", Obs.Json.Bool restarting) ]
            ()
        | Ev_restart { pid; at; incarnation } ->
          Obs.Trace.instant ~name:"fault.restart" ~pid ~ts:at
            ~args:[ ("incarnation", Obs.Json.Int incarnation) ]
            ()
        | Ev_stall { pid; at; steps } ->
          Obs.Trace.instant ~name:"fault.stall" ~pid ~ts:at
            ~args:[ ("steps", Obs.Json.Int steps) ]
            ()
        | Ev_replace { pid; at } ->
          Obs.Trace.instant ~name:"fault.replace" ~pid ~ts:at ()
        | Ev_raise { pid; at } ->
          Obs.Trace.instant ~name:"fault.raise" ~pid ~ts:at ()
    in
    let do_restarts () =
      for pid = 0 to n - 1 do
        if restart_due.(pid) >= 0 && !clock >= restart_due.(pid) then begin
          restart_due.(pid) <- -1;
          incarnations.(pid) <- incarnations.(pid) + 1;
          event
            (Ev_restart
               { pid; at = !total; incarnation = incarnations.(pid) });
          (* A restarted process loses all local state: its body runs
             again from the beginning. Shared state (inside [apply]'s
             closure) persists. *)
          start_fiber pid bodies_arr.(pid) slots
        end
      done
    in
    let pending_pids () =
      let acc = ref [] in
      for pid = n - 1 downto 0 do
        match slots.(pid) with
        | Suspended _ -> if stalled_until.(pid) <= !clock then acc := pid :: !acc
        | Fresh | Finished _ -> ()
      done;
      !acc
    in
    (* The earliest clock at which a stalled fiber wakes or a crashed one
       restarts, if any. *)
    let earliest_wake () =
      let best = ref None in
      let consider c = match !best with
        | Some b when b <= c -> ()
        | _ -> best := Some c
      in
      for pid = 0 to n - 1 do
        (match slots.(pid) with
        | Suspended _ when stalled_until.(pid) > !clock ->
          consider stalled_until.(pid)
        | Suspended _ | Fresh | Finished _ -> ());
        if restart_due.(pid) >= 0 then consider restart_due.(pid)
      done;
      !best
    in
    (* [decisions] counts successful scheduling decisions only; unlike
       [clock] it never jumps on stall/restart fast-forwards, so a probe
       sees a dense 0,1,2,... step sequence it can index prefixes by. *)
    let decisions = ref 0 in
    let pending_of pid =
      match slots.(pid) with
      | Suspended { pending_op; _ } -> Some pending_op
      | Fresh | Finished _ -> None
    in
    let rec loop sched =
      if !total >= max_ops then ()
      else begin
        do_restarts ();
        match pending_pids () with
        | [] -> (
          (* Nobody can run now, but time passing may wake someone. *)
          match earliest_wake () with
          | Some c ->
            clock := c;
            loop sched
          | None -> ())
        | live
          when match probe with
               | None -> false
               | Some p -> (
                 match p ~step:!decisions ~live ~pending:pending_of with
                 | `Continue -> false
                 | `Stop -> true) ->
          (* The probe asked to stop before this decision was made. *)
          ()
        | live -> (
          match Rsim_shmem.Schedule.next sched ~live with
          | None -> ()
          | Some (pid, sched') ->
            incr clock;
            incr decisions;
            (match slots.(pid) with
            | Suspended { pending_op; resume } -> (
              let exec op =
                let res = apply ~pid op in
                let idx = !total in
                rev_trace := { idx; pid; op; res } :: !rev_trace;
                total := idx + 1;
                ops_per_fiber.(pid) <- ops_per_fiber.(pid) + 1;
                Obs.Metrics.incr m_ops;
                if Obs.Trace.enabled () then
                  Obs.Trace.sampled_complete ~name:(obs_label op) ~pid ~ts:idx
                    ~dur:1 ();
                (* Resuming overwrites the slot with the fiber's next
                   state (Suspended on its next op, or Finished). *)
                continue resume res
              in
              let directive =
                match control with
                | None -> Proceed
                | Some c -> c ~pid ~nth:ops_per_fiber.(pid) pending_op
              in
              match directive with
              | Proceed -> exec pending_op
              | Replace op' ->
                event (Ev_replace { pid; at = !total });
                exec op'
              | Raise e ->
                (* The injected exception unwinds the fiber body, so the
                   fiber ends up [Failed e] via [start_fiber]'s [exnc]. *)
                event (Ev_raise { pid; at = !total });
                discontinue resume e
              | Crash ->
                event (Ev_crash { pid; at = !total; restarting = false });
                slots.(pid) <- Finished Crashed
              | Crash_restart { delay } ->
                let restarting = incarnations.(pid) < max_restarts in
                event (Ev_crash { pid; at = !total; restarting });
                slots.(pid) <- Finished Crashed;
                if restarting then restart_due.(pid) <- !clock + max 1 delay
              | Stall { steps } ->
                event (Ev_stall { pid; at = !total; steps });
                stalled_until.(pid) <- !clock + max 1 steps)
            | Fresh | Finished _ -> assert false);
            loop sched')
      end
    in
    loop sched;
    let statuses =
      Array.map
        (function
          | Finished s -> s
          | Suspended _ -> Pending
          | Fresh -> Done)
        slots
    in
    {
      statuses;
      trace = List.rev !rev_trace;
      ops_per_fiber;
      total_ops = !total;
      events = List.rev !rev_events;
    }
end
