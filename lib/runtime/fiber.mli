(** Cooperative fibers for the real system, with single-step scheduling.

    Real processes (the simulators and the augmented-snapshot code they
    run) are written in direct style. Every operation on the shared base
    object is performed through {!S.op}, which is an OCaml effect: the
    runtime captures the fiber's continuation there, and a {!Schedule}
    decides which fiber's pending operation executes next. Operations are
    applied atomically, one at a time, so the recorded trace *is* the
    linearization order of base-object operations — exactly the
    atomic-steps model of the paper (§2).

    Determinism: given the same fiber bodies, scheduler, [apply] function
    and [control] function, the execution and trace are identical. Fibers
    must not share mutable state other than through [apply].

    {b The fault boundary.} Every base-object operation passes through
    the optional [control] hook just before it is applied, and the hook's
    {!directive} decides its fate: execute as-is, execute a substituted
    operation (dropped or corrupted writes), crash the fiber (losing its
    local state while shared memory persists — the paper's crash-fault
    model), crash it and later restart it from a fresh body, stall it for
    a window of scheduling decisions, or unwind it with an injected
    exception. {!Rsim_faults.Faults} compiles declarative fault specs
    into such a hook; the harness's watchdog supervision uses the same
    mechanism.

    {b Observability.} Every applied operation bumps the always-on
    [fiber.ops] counter and, when {!Rsim_obs.Obs.Trace} is collecting,
    emits a one-tick span named by [obs_label] at logical time = the
    operation's trace index; fault-plane events bump [fiber.faults.*]
    counters and emit instant trace events. With tracing off the
    per-operation cost is one atomic increment and one atomic load. *)

module type OPS = sig
  type op
  type res
end

type status =
  | Done  (** fiber body returned *)
  | Pending  (** has an operation waiting to be scheduled *)
  | Failed of exn  (** fiber body raised *)
  | Crashed  (** killed by a {!Crash} / {!Crash_restart} directive *)

(** What to do with a fiber's pending operation, decided at the apply
    boundary. *)
type 'op directive =
  | Proceed  (** apply the operation unchanged *)
  | Replace of 'op
      (** apply this operation instead (the fiber still sees the result
          type it expects — e.g. an append of nothing models a dropped
          write) *)
  | Crash
      (** kill the fiber: it never resumes, its local state is lost,
          shared memory persists; status becomes {!Crashed} *)
  | Crash_restart of { delay : int }
      (** crash, then restart the fiber from a fresh body after [delay]
          scheduling decisions (capped by [max_restarts]) *)
  | Stall of { steps : int }
      (** transient stall: the operation stays pending and the fiber is
          hidden from the scheduler for [steps] scheduling decisions *)
  | Raise of exn  (** unwind the fiber with this exception ({!Failed}) *)

(** Fault-plane events recorded during a run, in order. [at] is the
    number of operations executed when the event fired (= the trace index
    the fiber's next operation would have had). *)
type event =
  | Ev_crash of { pid : int; at : int; restarting : bool }
  | Ev_restart of { pid : int; at : int; incarnation : int }
  | Ev_stall of { pid : int; at : int; steps : int }
  | Ev_replace of { pid : int; at : int }
  | Ev_raise of { pid : int; at : int }

val pp_event : Format.formatter -> event -> unit

module Make (M : OPS) : sig
  (** [op o] performs shared-memory operation [o]; only callable from
      inside a fiber body run by {!run}. *)
  val op : M.op -> M.res

  type trace_entry = { idx : int; pid : int; op : M.op; res : M.res }

  type result = {
    statuses : status array;
    trace : trace_entry list;  (** execution order = linearization order *)
    ops_per_fiber : int array;
        (** operations executed per fiber, cumulative across restarts *)
    total_ops : int;
    events : event list;  (** fault-plane events, in firing order *)
  }

  (** [run ?max_ops ?control ?max_restarts ~sched ~apply bodies] starts
      one fiber per element of [bodies] (pid = list position; each body
      receives its pid), then repeatedly: asks [sched] for a pid among
      fibers with a pending operation, consults [control] (default:
      always [Proceed]) with the pid, the fiber's executed-operation
      count [nth], and the pending operation, and acts on the directive —
      normally applying the operation via [apply] (which typically
      mutates the shared base object) and resuming the fiber until its
      next operation or completion.

      Crashed-restarting and stalled fibers wake after their delay in
      scheduling decisions; if at some point {e only} waiting fibers
      remain, time fast-forwards to the earliest wake-up rather than
      deadlocking. A fiber is restarted at most [max_restarts] (default
      4) times, with the same body it was started with.

      Stops when no fiber is pending or due to wake, the schedule is
      exhausted, or [max_ops] operations have executed.

      [obs_label] names each operation in the emitted trace (default
      ["op"]); pass e.g. {!Rsim_augmented.Aug.op_name} for readable
      per-operation lanes in [chrome://tracing].

      [probe] is invoked once per scheduling decision, just before the
      schedule is consulted: [step] is the number of decisions made so
      far (a dense 0,1,2,... sequence, unlike the internal clock, which
      fast-forwards across stall/restart waits), [live] the schedulable
      pids in ascending order, and [pending pid] that fiber's waiting
      operation, if any. Returning [`Stop] ends the run at that point as
      if the schedule were exhausted. Exploration engines use this to
      observe reached states and enumerate sibling branches without
      re-executing the prefix. *)
  val run :
    ?max_ops:int ->
    ?control:(pid:int -> nth:int -> M.op -> M.op directive) ->
    ?max_restarts:int ->
    ?obs_label:(M.op -> string) ->
    ?probe:
      (step:int ->
      live:int list ->
      pending:(int -> M.op option) ->
      [ `Continue | `Stop ]) ->
    sched:Rsim_shmem.Schedule.t ->
    apply:(pid:int -> M.op -> M.res) ->
    (int -> unit) list ->
    result
end
