(** Happens-before machinery: per-fiber vector clocks joined on
    shared-location reads and writes, plus control-boundary (fault-plane)
    events.

    The fiber runtime applies base-object operations atomically, one at a
    time, so the trace order is already a linearization. The vector
    clocks refine it to the {e observation} order: a fiber's clock
    advances past another fiber's events only when it reads a location
    the other fiber published, which makes "q observed p's write" a
    pointwise array comparison. {!Rsim_explore.Explore} builds its [race]
    oracle and its sleep-set-prune certification on this module
    (DESIGN §10). *)

(** A vector clock of dimension = number of fibers. *)
type clock = int array

module Clock : sig
  val make : int -> clock
  val copy : clock -> clock

  (** [tick c p] advances [p]'s component — one local event. *)
  val tick : clock -> int -> unit

  (** Pointwise maximum, accumulated into [into]. *)
  val join : into:clock -> clock -> unit

  (** [leq a b]: the event stamped [a] happens-before (or equals) the
      event stamped [b]. *)
  val leq : clock -> clock -> bool

  (** Neither [leq a b] nor [leq b a]: the two events are concurrent. *)
  val concurrent : clock -> clock -> bool

  val show : clock -> string
end

(** Replays an access history and maintains one clock per fiber plus the
    stamp of the last write to each shared location. *)
module Tracker : sig
  type t

  (** [create ~procs ~locs]: [procs] fibers (clock dimension), [locs]
      shared single-writer locations. *)
  val create : procs:int -> locs:int -> t

  val procs : t -> int

  (** A local event: tick only. *)
  val step : t -> pid:int -> unit

  (** A write: tick, then publish the writer's clock on [loc]. *)
  val write : t -> pid:int -> loc:int -> unit

  (** Join [loc]'s last published stamp into [pid]'s clock (no tick). *)
  val read : t -> pid:int -> loc:int -> unit

  (** A full snapshot read: tick, then join every location's last
      published stamp — what an [H.scan] does. *)
  val read_all : t -> pid:int -> unit

  (** A ~control boundary event (crash / restart / stall directive): an
      incarnation edge. Local state may be lost but the fiber's place in
      the happens-before order persists, so this is a local tick. *)
  val boundary : t -> pid:int -> unit

  (** Copy of [pid]'s current clock — the stamp of its latest event. *)
  val stamp : t -> pid:int -> clock
end
