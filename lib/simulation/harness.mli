(** End-to-end revisionist simulation (Theorem 21's construction).

    Wires up the real system of Figure 1: [f] simulators — [f − d]
    covering simulators with the lowest identifiers, each simulating [m]
    processes, and [d] direct simulators, each simulating one process —
    over one [m]-component augmented snapshot, which is itself
    implemented from an [f]-component single-writer snapshot whose every
    operation is a scheduling point.

    Requires [(f − d)·m + d ≤ n]: enough simulated processes to go
    around. Simulated process [p] gets the input of its simulator
    (colorless tasks allow duplicated inputs), so if the simulation is
    wait-free and the protocol solves the task for [n] processes, the
    [f] simulators' outputs solve the task for their own inputs — the
    reduction of Theorem 21. *)

open Rsim_value
open Rsim_shmem

type spec = {
  protocol : int -> Value.t -> Proc.t;
      (** factory: simulated pid, input ↦ initial process *)
  n : int;  (** simulated processes available *)
  m : int;  (** components of the simulated snapshot M *)
  f : int;  (** simulators *)
  d : int;  (** direct simulators (the paper's x); the rest cover *)
  inputs : Value.t list;  (** one input per simulator (length [f]) *)
}

(** A simulator crashed in place by the supervision watchdog. *)
type quarantine = { sim : int; at_op : int; reason : string }

(** What the fault plane and the supervision layer did during the run. *)
type fault_report = {
  events : Rsim_runtime.Fiber.event list;
      (** injected crashes/restarts/stalls/drops, plus watchdog kills *)
  quarantined : quarantine list;
  watchdog_budget : int;  (** per-simulator H-operation budget in force *)
}

type result = {
  outputs : (int * Value.t) list;  (** simulator pid ↦ output *)
  aug : Rsim_augmented.Aug.t;
  trace : Rsim_augmented.Aug.F.trace_entry list;
  journals : Journal.t array;
  partition : int array array;  (** simulator ↦ global simulated pids *)
  statuses : Rsim_runtime.Fiber.status array;
  ops_per_sim : int array;  (** H-operations per simulator *)
  bu_counts : int array;  (** M.Block-Updates applied per simulator *)
  total_ops : int;
  all_done : bool;
  report : fault_report;
}

(** The assignment of simulated processes to simulators: covering
    simulator [i < f−d] gets pids [i·m .. i·m+m−1]; direct simulator
    [f−d+j] gets pid [(f−d)·m + j]. *)
val partition : m:int -> f:int -> d:int -> int array array

(** The default watchdog budget: a generous multiple of Lemma 31's
    per-simulator step bound (the lemma covers all-covering simulations;
    direct simulators can legitimately run past the bare bound), capped
    by [max_ops]. *)
val default_watchdog : f:int -> m:int -> max_ops:int -> int

(** Run the simulation to completion (or until [max_ops] H-operations).
    [local_cap] bounds each hidden local simulation.

    [faults] (default none) is a fault-plane profile applied at the
    simulators' H-operation boundary ({!Rsim_faults.Faults}): crashed
    simulators lose their local state while [H] persists, exactly the
    paper's crash model. [watchdog] (default {!default_watchdog}) is the
    supervision step budget: a simulator that performs that many
    H-operations is diverging and gets quarantined — crashed in place,
    recorded in [result.report.quarantined] — while the run continues
    with the others.

    [probe] is forwarded to the fiber runtime
    ({!Rsim_augmented.Aug.F.run}): called before every scheduling
    decision with the decision index, the live pids, and each fiber's
    pending H-operation; returning [`Stop] ends the run there.
    Exploration engines use it to branch without replaying prefixes. *)
val run :
  ?max_ops:int ->
  ?local_cap:int ->
  ?faults:Rsim_faults.Faults.spec list ->
  ?watchdog:int ->
  ?probe:
    (step:int ->
    live:int list ->
    pending:(int -> Rsim_augmented.Aug.Ops.op option) ->
    [ `Continue | `Stop ]) ->
  sched:Schedule.t ->
  spec ->
  result

(** Why a run's outputs do not validate. [Simulator_crashed] covers
    injected crashes, injected exceptions and watchdog quarantines —
    modeled failures, survivable; [Simulator_raised] is an {e unmodeled}
    exception, i.e. a bug. *)
type invalid =
  | Simulator_raised of { sim : int; exn : string }
  | Simulator_crashed of { sims : int list }
  | Unfinished of { sims : int list }
  | Missing_output of { sims : int list }
  | Invalid_output of { reason : string }

val explain : invalid -> string

(** Check the simulators' outputs against a task, using the simulators'
    inputs.

    By default any crashed/quarantined simulator invalidates the run
    ([Simulator_crashed]). With [~survivors_only:true] the crash-fault
    model applies: crashed simulators are excused, and the task is
    checked over the surviving simulators' outputs against the full
    input set (a crashed simulator's input may have been adopted before
    it died) — task validity among survivors instead of all-or-nothing.
    A simulator that raised an unmodeled exception is never excused. *)
val validate :
  ?survivors_only:bool ->
  spec ->
  result ->
  task:Rsim_tasks.Task.t ->
  (unit, invalid) Stdlib.result

(** ASCII rendering of Figure 1 for this spec. *)
val architecture : spec -> string
