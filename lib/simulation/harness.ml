open Rsim_value
open Rsim_shmem
open Rsim_augmented

module Obs = Rsim_obs.Obs
module Log = Obs.Log

(* Run-level telemetry: how hard each simulation worked, and how close
   the supervision watchdog came to firing (its budget is calibrated
   against Lemma 31's step bound — see {!default_watchdog}). *)
let m_runs = Obs.Metrics.counter "harness.runs"
let m_quarantines = Obs.Metrics.counter "harness.quarantines"
let h_revisions = Obs.Metrics.histogram "harness.sim.revisions"
let h_sim_ops = Obs.Metrics.histogram "harness.sim.hops"
let g_watchdog_margin = Obs.Metrics.gauge "harness.watchdog.margin"

type spec = {
  protocol : int -> Value.t -> Proc.t;
  n : int;
  m : int;
  f : int;
  d : int;
  inputs : Value.t list;
}

type quarantine = { sim : int; at_op : int; reason : string }

type fault_report = {
  events : Rsim_runtime.Fiber.event list;
  quarantined : quarantine list;
  watchdog_budget : int;
}

type result = {
  outputs : (int * Value.t) list;
  aug : Aug.t;
  trace : Aug.F.trace_entry list;
  journals : Journal.t array;
  partition : int array array;
  statuses : Rsim_runtime.Fiber.status array;
  ops_per_sim : int array;
  bu_counts : int array;
  total_ops : int;
  all_done : bool;
  report : fault_report;
}

let partition ~m ~f ~d =
  Array.init f (fun i ->
      if i < f - d then Array.init m (fun g -> (i * m) + g)
      else [| ((f - d) * m) + (i - (f - d)) |])

let check_spec spec =
  if spec.f < 1 then invalid_arg "Harness: f must be >= 1";
  if spec.d < 0 || spec.d > spec.f then invalid_arg "Harness: need 0 <= d <= f";
  if spec.m < 1 then invalid_arg "Harness: m must be >= 1";
  if ((spec.f - spec.d) * spec.m) + spec.d > spec.n then
    invalid_arg
      (Printf.sprintf "Harness: (f-d)*m + d = %d exceeds n = %d"
         (((spec.f - spec.d) * spec.m) + spec.d)
         spec.n);
  if List.length spec.inputs <> spec.f then
    invalid_arg "Harness: need exactly f inputs"

(* Lemma 31's per-simulator step bound on the single-writer snapshot —
   the natural yardstick for the supervision watchdog. The lemma is
   stated for an all-covering simulation; shapes with direct simulators
   can legitimately run past it, so the default budget takes a generous
   multiple (the watchdog only has to be finite to catch divergence, not
   tight). Saturates for large f·m, so cap it by the run's own op
   budget. *)
let default_watchdog ~f ~m ~max_ops =
  let b = Complexity.step_bound ~f ~m in
  if Complexity.is_saturated b || b > (max_ops - 64) / 4 then max_ops
  else (4 * b) + 64

let run ?(max_ops = 2_000_000) ?(local_cap = 100_000) ?(faults = [])
    ?watchdog ?probe ~sched spec =
  check_spec spec;
  let watchdog_budget =
    match watchdog with
    | Some b -> b
    | None -> default_watchdog ~f:spec.f ~m:spec.m ~max_ops
  in
  let aug = Aug.create ~f:spec.f ~m:spec.m () in
  let part = partition ~m:spec.m ~f:spec.f ~d:spec.d in
  let journals = Array.init spec.f (fun _ -> Journal.create ()) in
  let inputs = Array.of_list spec.inputs in
  let covering = Array.make spec.f None in
  let direct = Array.make spec.f None in
  let bodies =
    List.init spec.f (fun i ->
        if i < spec.f - spec.d then begin
          let procs =
            Array.map (fun pid -> spec.protocol pid inputs.(i)) part.(i)
          in
          let sim =
            Covering_sim.make ~aug ~me:i ~procs ~journal:journals.(i) ~local_cap
          in
          covering.(i) <- Some sim;
          Covering_sim.body sim
        end
        else begin
          let pid = part.(i).(0) in
          let sim =
            Direct_sim.make ~aug ~me:i
              ~proc:(spec.protocol pid inputs.(i))
              ~journal:journals.(i)
          in
          direct.(i) <- Some sim;
          Direct_sim.body sim
        end)
  in
  Log.debug (fun k ->
      k "starting simulation: n=%d m=%d f=%d d=%d watchdog=%d" spec.n spec.m
        spec.f spec.d watchdog_budget);
  (* Supervision: injected faults first, then the per-simulator step
     watchdog. A simulator that exceeds Lemma 31's budget is diverging
     (or being starved into unbounded work by a bug); it is quarantined —
     crashed in place — and the run continues with the others. *)
  let plan = Rsim_faults.Faults.plan ~adapter:Aug.fault_adapter faults in
  let quarantined = ref [] in
  let control ~pid ~nth op =
    match Rsim_faults.Faults.control plan ~pid ~nth op with
    | Rsim_runtime.Fiber.Proceed when nth >= watchdog_budget ->
      Log.debug (fun k ->
          k "watchdog: quarantining simulator %d after %d H-operations" pid nth);
      Obs.Metrics.incr m_quarantines;
      Obs.Trace.instant ~name:"watchdog.quarantine" ~pid ~ts:(Aug.clock aug)
        ~args:[ ("budget", Obs.Json.Int watchdog_budget) ]
        ();
      quarantined :=
        {
          sim = pid;
          at_op = nth;
          reason =
            Printf.sprintf "step budget exceeded (%d H-operations >= %d)" nth
              watchdog_budget;
        }
        :: !quarantined;
      Rsim_runtime.Fiber.Crash
    | directive -> directive
  in
  let fr =
    Aug.F.run ~max_ops ~control ~obs_label:Aug.op_name ?probe ~sched
      ~apply:(Aug.apply aug) bodies
  in
  Log.debug (fun k ->
      k "simulation finished: %d H-operations, all_done=%b" fr.Aug.F.total_ops
        (Array.for_all
           (function Rsim_runtime.Fiber.Done -> true | _ -> false)
           fr.Aug.F.statuses));
  Obs.Metrics.incr m_runs;
  let revisions_of j =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Journal.Jrevise _ -> acc + 1
        | Journal.Jscan _ | Journal.Jbu _ | Journal.Jfinal _
        | Journal.Jdecided _ -> acc)
      0 (Journal.events j)
  in
  Array.iter (fun j -> Obs.Metrics.observe h_revisions (revisions_of j)) journals;
  Array.iter (fun n -> Obs.Metrics.observe h_sim_ops n) fr.Aug.F.ops_per_fiber;
  (* Headroom between the busiest simulator and the watchdog's
     Lemma-31-calibrated budget: how far this run was from quarantine. *)
  let busiest = Array.fold_left max 0 fr.Aug.F.ops_per_fiber in
  Obs.Metrics.set g_watchdog_margin (watchdog_budget - busiest);
  let output_of i =
    match (covering.(i), direct.(i)) with
    | Some c, _ -> Covering_sim.output c
    | _, Some d -> Direct_sim.output d
    | None, None -> None
  in
  let bu_of i =
    match (covering.(i), direct.(i)) with
    | Some c, _ -> Covering_sim.bu_count c
    | _, Some d -> Direct_sim.bu_count d
    | None, None -> 0
  in
  let outputs =
    List.filter_map
      (fun i -> Option.map (fun v -> (i, v)) (output_of i))
      (List.init spec.f Fun.id)
  in
  {
    outputs;
    aug;
    trace = fr.Aug.F.trace;
    journals;
    partition = part;
    statuses = fr.Aug.F.statuses;
    ops_per_sim = fr.Aug.F.ops_per_fiber;
    bu_counts = Array.init spec.f bu_of;
    total_ops = fr.Aug.F.total_ops;
    all_done =
      Array.for_all
        (function Rsim_runtime.Fiber.Done -> true | _ -> false)
        fr.Aug.F.statuses;
    report =
      {
        events = fr.Aug.F.events;
        quarantined = List.rev !quarantined;
        watchdog_budget;
      };
  }

type invalid =
  | Simulator_raised of { sim : int; exn : string }
  | Simulator_crashed of { sims : int list }
  | Unfinished of { sims : int list }
  | Missing_output of { sims : int list }
  | Invalid_output of { reason : string }

let explain = function
  | Simulator_raised { sim; exn } ->
    Printf.sprintf "simulator %d raised: %s" sim exn
  | Simulator_crashed { sims } ->
    Printf.sprintf "simulator%s %s crashed (or %s quarantined)"
      (if List.length sims = 1 then "" else "s")
      (String.concat ", " (List.map string_of_int sims))
      (if List.length sims = 1 then "was" else "were")
  | Unfinished { sims } ->
    Printf.sprintf
      "simulation did not complete (simulator%s %s still pending — not \
       wait-free within the budget?)"
      (if List.length sims = 1 then "" else "s")
      (String.concat ", " (List.map string_of_int sims))
  | Missing_output { sims } ->
    Printf.sprintf "simulator%s %s finished without an output"
      (if List.length sims = 1 then "" else "s")
      (String.concat ", " (List.map string_of_int sims))
  | Invalid_output { reason } -> reason

let sims_with result pred =
  Array.to_list result.statuses
  |> List.mapi (fun i s -> (i, s))
  |> List.filter_map (fun (i, s) -> if pred s then Some i else None)

let validate ?(survivors_only = false) spec result ~task =
  (* A [Failed] simulator is a bug unless the exception is a modeled
     fault injection, in which case it is a crash. *)
  let raised =
    sims_with result (function
      | Rsim_runtime.Fiber.Failed e -> not (Rsim_faults.Faults.is_injected e)
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
      | Rsim_runtime.Fiber.Crashed -> false)
  in
  let crashed =
    sims_with result (function
      | Rsim_runtime.Fiber.Crashed -> true
      | Rsim_runtime.Fiber.Failed e -> Rsim_faults.Faults.is_injected e
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending -> false)
  in
  let pending =
    sims_with result (function
      | Rsim_runtime.Fiber.Pending -> true
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Failed _
      | Rsim_runtime.Fiber.Crashed -> false)
  in
  let done_ =
    sims_with result (function
      | Rsim_runtime.Fiber.Done -> true
      | Rsim_runtime.Fiber.Pending | Rsim_runtime.Fiber.Failed _
      | Rsim_runtime.Fiber.Crashed -> false)
  in
  match raised with
  | sim :: _ ->
    let exn =
      match result.statuses.(sim) with
      | Rsim_runtime.Fiber.Failed e -> Printexc.to_string e
      | _ -> assert false
    in
    Error (Simulator_raised { sim; exn })
  | [] ->
    if (not survivors_only) && crashed <> [] then
      Error (Simulator_crashed { sims = crashed })
    else if pending <> [] then Error (Unfinished { sims = pending })
    else begin
      (* Survivors are the simulators that ran to completion. Each must
         have produced an output; the outputs must solve the task against
         the full input set (a crashed simulator participated — its input
         may have been adopted before the crash). With [survivors_only]
         the task is judged on however many outputs the survivors
         produced; with all simulators surviving that is all [f]. *)
      let missing =
        List.filter (fun i -> not (List.mem_assoc i result.outputs)) done_
      in
      if missing <> [] then Error (Missing_output { sims = missing })
      else
        let outputs =
          List.filter_map
            (fun i -> List.assoc_opt i result.outputs)
            done_
        in
        match
          Rsim_tasks.Task.check task ~inputs:spec.inputs ~outputs
        with
        | Ok () -> Ok ()
        | Error reason -> Error (Invalid_output { reason })
    end

let architecture spec =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let covering = spec.f - spec.d in
  add "REAL SYSTEM (f = %d simulators)\n" spec.f;
  add "  q0 .. q%d : covering simulators (%d processes each)\n" (covering - 1)
    spec.m;
  if spec.d > 0 then
    add "  q%d .. q%d : direct simulators (1 process each)\n" covering
      (spec.f - 1);
  add "        |\n";
  add "        | access\n";
  add "        v\n";
  add "  [ %d-component single-writer snapshot H ]\n" spec.f;
  add "        |  used to implement\n";
  add "        v\n";
  add "  [ %d-component augmented snapshot M ]\n" spec.m;
  add "        |  used to simulate block updates to\n";
  add "        v\n";
  add "  [ %d-component multi-writer snapshot M ]\n" spec.m;
  add "        ^\n";
  add "        | accessed by\n";
  add "  SIMULATED SYSTEM (n = %d processes; %d in use)\n" spec.n
    (((spec.f - spec.d) * spec.m) + spec.d);
  let part = partition ~m:spec.m ~f:spec.f ~d:spec.d in
  Array.iteri
    (fun i pids ->
      add "  P%d = {%s}%s\n" i
        (String.concat ","
           (List.map (fun p -> "p" ^ string_of_int p) (Array.to_list pids)))
        (if i < covering then "  (covering)" else "  (direct)"))
    part;
  Buffer.contents b
