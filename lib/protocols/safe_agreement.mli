(** Safe agreement — the BG simulation's building block (for contrast).

    The paper's introduction positions the revisionist simulation
    against the BG simulation [15]: in BG, different steps of a
    simulated process can be performed by different simulators, which
    coordinate each simulated step through {e safe agreement} — an
    object with consensus-grade agreement and validity whose price is a
    {e blocking window}: if a proposer crashes between raising its level
    and settling, readers block forever. That is exactly why BG-based
    approaches cannot "revise the past" and why a crashed simulator
    stalls its simulated processes, whereas the revisionist simulation's
    augmented snapshot stays non-blocking (Theorem 20) and lets a single
    simulator own each simulated process.

    This is the classic Borowsky–Gafni construction from a single-writer
    snapshot: [propose v] publishes the value at level 1, snapshots, and
    settles at level 2 unless it saw someone already settled (then it
    retreats to level 0 and adopts later); [read] spins until no process
    is at level 1, then returns the settled value with the smallest
    index.

    Processes run as fibers; every snapshot operation is a scheduling
    point, so the blocking window is schedulable and testable. *)

open Rsim_value

module Ops : sig
  type op = Sa_scan | Sa_write of Value.t  (** own component *)
  type res = Sa_view of Value.t array | Sa_ack
end

module F : sig
  val op : Ops.op -> Ops.res

  type trace_entry = { idx : int; pid : int; op : Ops.op; res : Ops.res }

  type result = {
    statuses : Rsim_runtime.Fiber.status array;
    trace : trace_entry list;
    ops_per_fiber : int array;
    total_ops : int;
    events : Rsim_runtime.Fiber.event list;
  }

  val run :
    ?max_ops:int ->
    ?control:(pid:int -> nth:int -> Ops.op -> Ops.op Rsim_runtime.Fiber.directive) ->
    ?max_restarts:int ->
    ?obs_label:(Ops.op -> string) ->
    ?probe:
      (step:int ->
      live:int list ->
      pending:(int -> Ops.op option) ->
      [ `Continue | `Stop ]) ->
    sched:Rsim_shmem.Schedule.t ->
    apply:(pid:int -> Ops.op -> Ops.res) ->
    (int -> unit) list ->
    result
end

type t

val create : f:int -> t
val apply : t -> pid:int -> Ops.op -> Ops.res

(** {2 Operations — inside fibers only} *)

(** [propose t ~me v] — wait-free (a constant number of steps). *)
val propose : t -> me:int -> Value.t -> unit

(** [read t ~me] — returns the agreed value. Blocks (keeps re-scanning)
    while any process sits in its unsafe window; [max_spins] bounds the
    wait, returning [None] on timeout so tests can observe the blocking
    behaviour that the revisionist simulation avoids. *)
val read : t -> me:int -> max_spins:int -> Value.t option
