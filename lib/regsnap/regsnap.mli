(** A wait-free single-writer snapshot implemented from registers.

    The paper's real system communicates through an atomic single-writer
    snapshot [H] (§2.1), which it notes is implementable from registers
    [2] (Afek, Attiya, Dolev, Gafni, Merritt, Shavit: "Atomic snapshots
    of shared memory", JACM 1993). This module closes that gap in our
    stack: the classic AADGMS construction, running on the fiber runtime
    so that every {e register} access is a scheduling point, with an
    operation history recorded for linearizability checking.

    Construction: register [i] (written only by process [i]) holds
    [(value, seq, embedded_view)]. An [update] performs an embedded
    [scan] and then writes its new value with an incremented sequence
    number and the scanned view. A [scan] repeatedly collects all [f]
    registers: two identical consecutive collects give a {e direct} scan
    (linearized between them); otherwise any process observed moving
    {e twice} must have completed a whole update — and hence a whole
    embedded scan — inside our interval, so its embedded view is a valid
    {e borrowed} scan.

    Wait-freedom: each collect is [f] reads; a scan does at most [f + 2]
    collects (every retry marks a new mover), so scans take
    [O(f²)] steps and updates [O(f²) + 1]. *)

open Rsim_value

module Ops : sig
  type op = Read of int | Write of int * Value.t
  type res = Got of Value.t | Ack
end

(** The fiber runtime at register granularity. *)
module F : sig
  val op : Ops.op -> Ops.res

  type trace_entry = { idx : int; pid : int; op : Ops.op; res : Ops.res }

  type result = {
    statuses : Rsim_runtime.Fiber.status array;
    trace : trace_entry list;
    ops_per_fiber : int array;
    total_ops : int;
    events : Rsim_runtime.Fiber.event list;
  }

  val run :
    ?max_ops:int ->
    ?control:(pid:int -> nth:int -> Ops.op -> Ops.op Rsim_runtime.Fiber.directive) ->
    ?max_restarts:int ->
    ?obs_label:(Ops.op -> string) ->
    ?probe:
      (step:int ->
      live:int list ->
      pending:(int -> Ops.op option) ->
      [ `Continue | `Stop ]) ->
    sched:Rsim_shmem.Schedule.t ->
    apply:(pid:int -> Ops.op -> Ops.res) ->
    (int -> unit) list ->
    result
end

(** One completed high-level operation, for linearizability checking:
    interval endpoints are register-step indices. *)
type hop =
  | Update_op of {
      proc : int;
      value : Value.t;
      inv : int;
      ret : int;
      n_ops : int;  (** this process's own register steps *)
    }
  | Scan_op of {
      proc : int;
      view : Value.t array;
      inv : int;
      ret : int;
      borrowed : bool;  (** returned another process's embedded view *)
      n_ops : int;
    }

type t

val create : f:int -> t

(** Pass to {!F.run}. *)
val apply : t -> pid:int -> Ops.op -> Ops.res

(** Completed high-level operations, in completion order. *)
val history : t -> hop list

(** Steps a scan may take, for wait-freedom assertions: [(f + 2) · f]
    reads. *)
val scan_step_bound : f:int -> int

(** {2 High-level operations — inside fibers only} *)

(** [update t ~me v] sets this process's component to [v]. *)
val update : t -> me:int -> Value.t -> unit

(** [scan t ~me] returns an atomic view of all [f] components. *)
val scan : t -> me:int -> Value.t array
