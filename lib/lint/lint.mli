(** rsim-lint: the repository's static-analysis plane (DESIGN §10).

    A rule engine over compiler-libs Parsetrees enforcing the
    concurrency and determinism discipline the parallel exploration
    engine relies on:

    - {b R1} no bare mutable state ([ref] / [Hashtbl.create] /
      [Array.make]…) reachable from Domain-spawned code — structure
      level in a [Domain.spawn]ing module, or a [let] whose scope
      spawns — unless it is [Atomic] / [Mutex] / [Condition], or
      annotated [[@rsim.shared "why"]] with a mandatory rationale.
      Mutable record fields declared in spawning modules likewise.
    - {b R2} no direct printing ([Printf.printf] / [print_*] /
      [prerr_*] / [Format.printf]) in [lib/]; diagnostics go through
      {!Rsim_obs.Obs.Log}.
    - {b R3} no ambient nondeterminism ([Random.*],
      [Unix.gettimeofday], [Unix.time], [Sys.time]) in the
      deterministic paths ([lib/runtime], [lib/augmented],
      [lib/explore]).
    - {b R4} no partial functions ([List.hd], [List.tl], [Option.get],
      bare [failwith]) on those same hot paths.
    - {b R5} every [lib/] module has a sibling [.mli].

    Findings are diffed against a committed baseline keyed by
    (rule, file, message) so CI fails only on regressions; the JSON
    report schema ([{tool; files; total; fresh; findings}]) is shared
    with the [--certify-independence] runtime layer. *)

type finding = {
  rule : string;  (** ["R1"]..["R5"], or ["parse"] for unparseable files *)
  file : string;  (** repository-relative path *)
  line : int;
  col : int;
  message : string;
}

type report = { files : int;  (** files scanned *) findings : finding list }

(** Lint one implementation file. [file] is the repository-relative
    path (used for zone classification and in findings); the source is
    read from [root ^ "/" ^ file]. *)
val lint_file : root:string -> file:string -> finding list

(** Lint source text directly (fixture tests). *)
val lint_source : file:string -> string -> finding list

(** The [.ml] files a scan would visit, sorted (default dirs:
    [lib bin bench dev], skipping [_build]-style directories). *)
val files : ?dirs:string list -> root:string -> unit -> string list

(** Walk the workspace and apply every rule, including R5. Findings are
    sorted by (file, line, rule, message). *)
val scan : ?dirs:string list -> root:string -> unit -> report

(** {2 Report + baseline} *)

val finding_to_json : finding -> Rsim_obs.Obs.Json.t

(** The schema shared with the runtime certification layer. *)
val report_to_json :
  tool:string -> fresh:finding list -> report -> Rsim_obs.Obs.Json.t

(** Baseline identity of a finding: line numbers shift too easily, so
    (rule, file, message). *)
val key : finding -> string * string * string

val baseline_to_string : finding list -> string

val baseline_of_string :
  string -> ((string * string * string) list, string) result

(** [Ok []] when the file does not exist. *)
val load_baseline :
  path:string -> ((string * string * string) list, string) result

(** The findings not excused by the baseline. *)
val fresh_against :
  baseline:(string * string * string) list -> finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit
