(* rsim-lint: the repository's static-analysis plane (DESIGN §10).

   A small rule engine over compiler-libs Parsetrees. It does not type
   the program — typing the whole dune workspace from inside a lint
   binary would drag in build context for dubious benefit — so every
   rule is a syntactic/scope-sensitive approximation chosen to have an
   actionable, low-noise meaning:

   R1  shared-mutability: a [let] whose right-hand side allocates bare
       mutable state (ref / Hashtbl.create / Array.make|init / Bytes,
       Buffer, Queue, Stack) is flagged when Domain-spawned code can
       reach it — i.e. the binding is at structure level in a module
       that calls [Domain.spawn], or its [in]-scope contains a
       [Domain.spawn]. Allocations under a lambda inside the RHS are
       per-call state and skipped. [Atomic.make] / [Mutex.create] /
       [Condition.create] / [Semaphore.*] are the sanctioned escape
       hatches and never flagged; a deliberate share is silenced with
       [[@rsim.shared "why"]] (the rationale string is mandatory).
       Mutable record type declarations in spawning modules are flagged
       the same way.

   R2  no direct printing in library code: lib/ must route diagnostics
       through [Obs.Log] (stderr, leveled, quiet by default) so stdout
       stays machine-readable. Matches the printing entrypoints only —
       [Printf.sprintf] and [Format.pp_*] formatters are pure and fine.

   R3  determinism of the model-checked paths: lib/runtime, lib/augmented
       and lib/explore must not read ambient nondeterminism ([Random.*],
       [Unix.gettimeofday], [Unix.time], [Sys.time]); randomness goes
       through the splittable [Prng] and time through logical clocks,
       or replayed artifacts stop reproducing.

   R4  no partial functions on the hot paths: [List.hd] / [List.tl] /
       [Option.get] / bare [failwith] in lib/runtime, lib/augmented,
       lib/explore turn schedule-dependent states into exceptions the
       explorer reports as fiber failures far from the cause. (Unproven
       [Array.get] bounds are out of scope for a Parsetree checker; the
       dev profile's warning set and the exhaustive engine cover that
       dynamically.)

   R5  every library module has an interface: a lib/**. ml without a
       sibling .mli has its whole namespace public, which is how
       internal mutable state leaks across library boundaries.

   Findings are compared against a committed baseline keyed by
   (rule, file, message) — line numbers shift too easily — so CI fails
   only on regressions. The JSON report schema is shared with the
   --certify-independence runtime layer: both emit
   {tool; findings: [{rule; file; line; col; message}]; total; fresh}. *)

module J = Rsim_obs.Obs.Json

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type report = { files : int; findings : finding list }

(* ---------------------------------------------------------------- *)
(* Zones                                                             *)
(* ---------------------------------------------------------------- *)

let hot_prefixes = [ "lib/runtime/"; "lib/augmented/"; "lib/explore/" ]

type zone = { lib : bool; hot : bool }

let zone_of path =
  {
    lib = String.starts_with ~prefix:"lib/" path;
    hot = List.exists (fun p -> String.starts_with ~prefix:p path) hot_prefixes;
  }

(* ---------------------------------------------------------------- *)
(* Parsetree helpers                                                 *)
(* ---------------------------------------------------------------- *)

let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flat l @ [ s ]
  | Longident.Lapply (l, _) -> flat l

let name_of lid = String.concat "." (flat lid)

let shared_attr_name = "rsim.shared"

let rationale_of (a : Parsetree.attribute) =
  match a.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ]
    when String.trim s <> "" ->
    Some s
  | _ -> None

let shared_of attrs =
  List.find_opt
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = shared_attr_name)
    attrs

(* The annotation may sit on the value binding ([@@rsim.shared "..."])
   or on any expression node inside the RHS ([@rsim.shared "..."]) —
   attribute attachment inside applications is fiddly enough that we
   accept it anywhere in the bound expression. *)
let binding_shared (vb : Parsetree.value_binding) =
  let found = ref (shared_of vb.pvb_attributes) in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match (!found, shared_of e.pexp_attributes) with
          | None, (Some _ as a) -> found := a
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it vb.pvb_expr;
  !found

let contains_spawn_expr e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when name_of txt = "Domain.spawn" ->
            found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let contains_spawn_structure str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when name_of txt = "Domain.spawn" ->
            found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure it str;
  !found

let creators =
  [
    "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Bytes.create";
    "Bytes.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
  ]

(* The first mutable-state allocation evaluated when the RHS is —
   allocations under a lambda are per-call state, not a share. *)
let rhs_creator e =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          match ex.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            let n = name_of txt in
            if !found = None && List.mem n creators then
              found := Some (n, ex.pexp_loc);
            Ast_iterator.default_iterator.expr self ex
          | _ -> Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* ---------------------------------------------------------------- *)
(* Rules R1-R4 over one implementation                               *)
(* ---------------------------------------------------------------- *)

let printing_idents =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "print_string";
    "print_bytes";
    "print_char";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_bytes";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_endline";
    "prerr_newline";
  ]

let nondet_ident n =
  String.starts_with ~prefix:"Random." n
  || n = "Unix.gettimeofday" || n = "Unix.time" || n = "Sys.time"

let partial_idents = [ "List.hd"; "List.tl"; "Option.get"; "failwith" ]

let lint_structure ~file ~zone str =
  let findings = ref [] in
  let add ~rule ~(loc : Location.t) message =
    let p = loc.loc_start in
    findings :=
      {
        rule;
        file;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        message;
      }
      :: !findings
  in
  let module_spawns = contains_spawn_structure str in
  let check_binding ~reachable (vb : Parsetree.value_binding) =
    if reachable then
      match rhs_creator vb.pvb_expr with
      | None -> ()
      | Some (creator, loc) -> (
        match binding_shared vb with
        | Some a when rationale_of a <> None -> ()
        | Some _ ->
          add ~rule:"R1" ~loc
            (Printf.sprintf
               "[@rsim.shared] on this %s needs a rationale string" creator)
        | None ->
          add ~rule:"R1" ~loc
            (Printf.sprintf
               "bare mutable state (%s) reachable from Domain-spawned code; \
                use Atomic/Mutex or annotate [@rsim.shared \"why\"]"
               creator))
  in
  let check_type (td : Parsetree.type_declaration) =
    if module_spawns then
      match td.ptype_kind with
      | Ptype_record labels ->
        let mut =
          List.find_opt
            (fun (l : Parsetree.label_declaration) ->
              l.pld_mutable = Asttypes.Mutable
              && shared_of (l.pld_attributes @ td.ptype_attributes) = None)
            labels
        in
        Option.iter
          (fun (l : Parsetree.label_declaration) ->
            add ~rule:"R1" ~loc:l.pld_loc
              (Printf.sprintf
                 "mutable field %s.%s in a Domain-spawning module; use \
                  Atomic/Mutex or annotate [@rsim.shared \"why\"]"
                 td.ptype_name.txt l.pld_name.txt))
          mut
      | _ -> ()
  in
  let check_ident ~loc n =
    if zone.lib && List.mem n printing_idents then
      add ~rule:"R2" ~loc
        (Printf.sprintf "%s in library code; route through Obs.Log" n);
    if zone.hot && nondet_ident n then
      add ~rule:"R3" ~loc
        (Printf.sprintf
           "%s in a deterministic path; use Prng / logical clocks" n);
    if zone.hot && List.mem n partial_idents then
      add ~rule:"R4" ~loc
        (Printf.sprintf "partial function %s on a hot path" n)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident ~loc (name_of txt)
          | Pexp_let (_, vbs, body) ->
            let reachable = contains_spawn_expr body in
            List.iter (check_binding ~reachable) vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter (check_binding ~reachable:module_spawns) vbs
          | Pstr_type (_, tds) -> List.iter check_type tds
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
    }
  in
  it.structure it str;
  List.rev !findings

(* ---------------------------------------------------------------- *)
(* Per-file driver                                                   *)
(* ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_source ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> lint_structure ~file ~zone:(zone_of file) str
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        ( e.main.loc,
          Format.asprintf "%t" (fun ppf -> e.main.txt ppf) )
      | _ -> (Location.none, Printexc.to_string exn)
    in
    let p = loc.Location.loc_start in
    [
      {
        rule = "parse";
        file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        message = "does not parse: " ^ msg;
      };
    ]

let lint_file ~root ~file =
  let src = read_file (Filename.concat root file) in
  lint_source ~file src

(* ---------------------------------------------------------------- *)
(* Workspace walking + R5                                            *)
(* ---------------------------------------------------------------- *)

let default_dirs = [ "lib"; "bin"; "bench"; "dev" ]

let rec walk root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  if not (Sys.file_exists abs) then acc
  else if Sys.is_directory abs then
    let base = Filename.basename abs in
    if String.length base > 0 && (base.[0] = '_' || base.[0] = '.') then acc
    else
      Array.fold_left
        (fun acc entry ->
          walk root
            (if rel = "" then entry else Filename.concat rel entry)
            acc)
        acc (Sys.readdir abs)
  else if Filename.check_suffix rel ".ml" then rel :: acc
  else acc

let files ?(dirs = default_dirs) ~root () =
  List.sort compare
    (List.concat_map (fun d -> walk root d []) dirs)

let compare_finding a b =
  match compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with
    | 0 -> compare (a.rule, a.message) (b.rule, b.message)
    | c -> c)
  | c -> c

let scan ?dirs ~root () =
  let fs = files ?dirs ~root () in
  let findings =
    List.concat_map
      (fun file ->
        let fs = lint_file ~root ~file in
        (* R5: library modules must publish an interface. *)
        if
          (zone_of file).lib
          && not (Sys.file_exists (Filename.concat root (file ^ "i")))
        then
          {
            rule = "R5";
            file;
            line = 1;
            col = 0;
            message = "library module has no .mli interface";
          }
          :: fs
        else fs)
      fs
  in
  { files = List.length fs; findings = List.sort compare_finding findings }

(* ---------------------------------------------------------------- *)
(* JSON report + baseline                                            *)
(* ---------------------------------------------------------------- *)

let finding_to_json f =
  J.Obj
    [
      ("rule", J.Str f.rule);
      ("file", J.Str f.file);
      ("line", J.Int f.line);
      ("col", J.Int f.col);
      ("message", J.Str f.message);
    ]

let report_to_json ~tool ~fresh r =
  J.Obj
    [
      ("tool", J.Str tool);
      ("files", J.Int r.files);
      ("total", J.Int (List.length r.findings));
      ("fresh", J.Int (List.length fresh));
      ("findings", J.Arr (List.map finding_to_json r.findings));
      ("fresh_findings", J.Arr (List.map finding_to_json fresh));
    ]

let key f = (f.rule, f.file, f.message)

let baseline_to_string findings =
  J.to_string_pretty
    (J.Obj
       [
         ( "findings",
           J.Arr
             (List.map
                (fun f ->
                  J.Obj
                    [
                      ("rule", J.Str f.rule);
                      ("file", J.Str f.file);
                      ("message", J.Str f.message);
                    ])
                findings) );
       ])
  ^ "\n"

let baseline_of_string s =
  match J.parse s with
  | Error e -> Error ("baseline: " ^ e)
  | Ok j -> (
    match J.member "findings" j with
    | Some (J.Arr items) ->
      let keys =
        List.filter_map
          (fun item ->
            match
              ( J.member "rule" item,
                J.member "file" item,
                J.member "message" item )
            with
            | Some (J.Str r), Some (J.Str f), Some (J.Str m) -> Some (r, f, m)
            | _ -> None)
          items
      in
      if List.length keys = List.length items then Ok keys
      else Error "baseline: malformed finding entry"
    | _ -> Error "baseline: missing findings array")

let load_baseline ~path =
  if not (Sys.file_exists path) then Ok []
  else baseline_of_string (read_file path)

let fresh_against ~baseline findings =
  List.filter (fun f -> not (List.mem (key f) baseline)) findings

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
