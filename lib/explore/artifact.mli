(** Persisted counterexamples: replayable JSON schedule scripts.

    When an exploration engine ({!Explore.exhaustive} or
    {!Explore.sweep}) finds a violating execution, the shrunk schedule is
    saved as a small JSON document carrying everything needed to rebuild
    the workload and re-run the exact execution later ([rsim replay]):

    {v
    {
      "version": 2,
      "workload": "bu-conflict",
      "params": {"f": 2, "m": 2},
      "inject": "yield-on-higher",
      "faults": "crash@1:3",
      "max_steps": 12,
      "errors": ["theorem20: process 0 yielded (ts [0;1])"],
      "original": [1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1],
      "script": [1, 0, 0, 0, 0, 0, 1, 1, 1, 1]
    }
    v}

    The schema is versioned: v1 artifacts (with or without the "version"
    field) lack "faults" and keep reading fine; artifacts from a {e
    newer} schema than this build understands are rejected with a
    distinct error, so [rsim replay] can exit 2 (unreadable) rather than
    1 (violation reproduced).

    Serialization goes through the observability plane's dependency-free
    {!Rsim_obs.Obs.Json}. {!load} never raises: unreadable paths —
    including directories and permission-denied files — come back as
    [Error], which the CLI maps to exit code 2. *)

(** The newest schema this build writes and reads (2). *)
val current_version : int

type t = {
  version : int;  (** schema version; {!of_violation} stamps the newest *)
  workload : string;  (** a {!Explore.Aug_target.builtin} name or ["racing"] *)
  params : (string * int) list;
  inject : string option;  (** seeded bug *)
  faults : string option;  (** fault-plane profile (v2+) *)
  max_steps : int;
  errors : string list;
  original : int list;
  script : int list;
}

val of_violation :
  workload:Explore.workload -> max_steps:int -> Explore.violation -> t

(** Rebuild the workload this artifact was produced from — including its
    fault profile, so the replay faults the same ops of the same pids.
    Fails on an unknown workload name, unparseable bug or fault profile,
    or missing parameters. *)
val to_workload : t -> (Explore.workload, string) result

val to_json : t -> string
val of_json : string -> (t, string) result
val save : path:string -> t -> unit
val load : path:string -> (t, string) result
