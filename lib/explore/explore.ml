open Rsim_value
open Rsim_shmem
module Aug = Rsim_augmented.Aug
module Aug_spec = Rsim_augmented.Aug_spec
module Hrep = Rsim_augmented.Hrep
module Vts = Rsim_augmented.Vts
module Harness = Rsim_simulation.Harness
module Analysis = Rsim_simulation.Analysis
module Faults = Rsim_faults.Faults
module Task = Rsim_tasks.Task
module Racing = Rsim_protocols.Racing
module Obs = Rsim_obs.Obs
module Hb = Rsim_runtime.Hb

(* Engine telemetry, shared by all engines and safe under parallel
   domains (atomic counters). Schedules/sec is the caller's division of
   [explore.executions] by wall time. *)
let m_execs = Obs.Metrics.counter "explore.executions"
let m_viols = Obs.Metrics.counter "explore.violations"
let m_shrink = Obs.Metrics.counter "explore.shrink.attempts"
let h_preempt = Obs.Metrics.histogram "explore.preemptions"

(* Parallel-frontier telemetry: tasks processed, tasks popped by a
   domain other than the one that pushed them, state-fingerprint dedup
   hits, sleep-set prunes, and the live frontier size. *)
let m_tasks = Obs.Metrics.counter "explore.tasks"
let m_steals = Obs.Metrics.counter "explore.steals"
let m_dedup = Obs.Metrics.counter "explore.dedup.hits"
let m_sleep = Obs.Metrics.counter "explore.sleep.prunes"
let g_frontier = Obs.Metrics.gauge "explore.frontier.depth"

(* Independence certification (--certify-independence): commuting claims
   behind sleep-set prunes that were validated against the executed
   operations' real footprints, and the ones that turned out to be wrong
   — i.e. pruned pairs with a happens-before edge after all. *)
let m_cert_checks = Obs.Metrics.counter "explore.certify.checks"
let m_cert_viols = Obs.Metrics.counter "explore.certify.violations"

(* Context switches away from a pid that appears again later — the
   preemption depth of an executed schedule. *)
let preemptions_of script =
  let rec go last acc = function
    | [] -> acc
    | pid :: rest ->
      if last >= 0 && pid <> last then go pid (acc + 1) rest
      else go pid acc rest
  in
  go (-1) 0 script

(* ---------------------------------------------------------------- *)
(* Workloads                                                         *)
(* ---------------------------------------------------------------- *)

(* What the exploration engine sees at every scheduling decision of a
   probed execution (see {!Rsim_runtime.Fiber.run}'s [probe]). *)
type probe_view = {
  step : int;
  live : int list;
  fingerprint : (int * int) option;
  indep : int -> int -> bool;
  claim : int -> int -> unit;
}

type probe = probe_view -> [ `Continue | `Stop ]

type outcome = {
  script : int list;
  live : int list;
  steps : int;
  errors : string list;
  judge : unit -> string list;
}

type workload = {
  name : string;
  n_procs : int;
  params : (string * int) list;
  inject : string option;
  faults : string option;
  exec :
    probe:probe option ->
    certify:bool ->
    sched:Schedule.t ->
    max_ops:int ->
    check:bool ->
    outcome;
}

type violation = {
  script : int list;
  original : int list;
  errors : string list;
}

module Oracle = struct
  type 'exec t = {
    name : string;
    on_truncated : bool;
    check : 'exec -> string list;
  }
end

(* Verdict counters are registered once per workload build (metric
   registration takes a lock), then bumped on every judged execution. *)
let oracle_counters oracles =
  List.map
    (fun (o : _ Oracle.t) ->
      ( o,
        Obs.Metrics.counter ("explore.oracle." ^ o.Oracle.name ^ ".pass"),
        Obs.Metrics.counter ("explore.oracle." ^ o.Oracle.name ^ ".fail") ))
    oracles

let judge ocs ~complete ex =
  List.concat_map
    (fun ((o : _ Oracle.t), cpass, cfail) ->
      if complete || o.Oracle.on_truncated then begin
        let errs = o.Oracle.check ex in
        (match errs with
        | [] -> Obs.Metrics.incr cpass
        | _ :: _ -> Obs.Metrics.incr cfail);
        List.map (fun e -> o.Oracle.name ^ ": " ^ e) errs
      end
      else [])
    ocs

let fault_to_string = function
  | Aug.Skip_yield_check -> "skip-yield-check"
  | Aug.Yield_on_higher -> "yield-on-higher"
  | Aug.Spin_on_yield -> "spin-on-yield"

let fault_of_string = function
  | "skip-yield-check" -> Some Aug.Skip_yield_check
  | "yield-on-higher" -> Some Aug.Yield_on_higher
  | "spin-on-yield" -> Some Aug.Spin_on_yield
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Replay and shrinking                                              *)
(* ---------------------------------------------------------------- *)

let replay w ~max_steps ~script =
  Obs.Metrics.incr m_execs;
  w.exec ~probe:None ~certify:false ~sched:(Schedule.script script)
    ~max_ops:max_steps ~check:true

let failing w ~max_steps script =
  Obs.Metrics.incr m_shrink;
  (replay w ~max_steps ~script).errors <> []

(* Greedy step removal: delete any single step whose removal keeps the
   script failing, to fixpoint. *)
let rec remove_pass w ~max_steps s =
  let n = List.length s in
  let rec try_i i =
    if i >= n then None
    else
      let cand = List.filteri (fun j _ -> j <> i) s in
      if failing w ~max_steps cand then Some cand else try_i (i + 1)
  in
  match try_i 0 with Some s' -> remove_pass w ~max_steps s' | None -> s

(* Preemption merging: move a later contiguous block of some pid to sit
   directly after an earlier block of the same pid, removing two context
   switches, whenever the script still fails. *)
let merge_pass w ~max_steps s =
  let arr = Array.of_list s in
  let n = Array.length arr in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && arr.(!j) = arr.(!i) do
      incr j
    done;
    blocks := (arr.(!i), !i, !j - !i) :: !blocks;
    i := !j
  done;
  let blocks = List.rev !blocks in
  let candidate (_, s1, l1) (p2, s2, l2) =
    let pre = Array.to_list (Array.sub arr 0 (s1 + l1)) in
    let mid = Array.to_list (Array.sub arr (s1 + l1) (s2 - s1 - l1)) in
    let post = Array.to_list (Array.sub arr (s2 + l2) (n - s2 - l2)) in
    pre @ List.init l2 (fun _ -> p2) @ mid @ post
  in
  let rec pairs = function
    | [] -> None
    | ((p1, _, _) as b1) :: rest ->
      let rec inner = function
        | [] -> pairs rest
        | ((p2, _, _) as b2) :: more ->
          if p1 = p2 then begin
            let cand = candidate b1 b2 in
            if failing w ~max_steps cand then Some cand else inner more
          end
          else inner more
      in
      inner rest
  in
  pairs blocks

let shrink w ~max_steps ~script =
  if not (failing w ~max_steps script) then script
  else begin
    let rec fix s =
      let s' = remove_pass w ~max_steps s in
      match merge_pass w ~max_steps s' with
      | Some s'' -> fix s''
      | None -> s'
    in
    fix script
  end

let record_violation w ~max_steps acc ~script ~errors =
  let shrunk = shrink w ~max_steps ~script in
  if List.exists (fun (v : violation) -> v.script = shrunk) acc then acc
  else begin
    Obs.Metrics.incr m_viols;
    let errs = (replay w ~max_steps ~script:shrunk).errors in
    {
      script = shrunk;
      original = script;
      errors = (if errs = [] then errors else errs);
    }
    :: acc
  end

(* ---------------------------------------------------------------- *)
(* Exhaustive enumeration                                            *)
(* ---------------------------------------------------------------- *)

type exhaustive_report = {
  complete : int;
  truncated : int;
  prefixes : int;
  executions : int;
  dedup_hits : int;
  pruned : int;
  domains : int;
  certify_checks : int;
  certify_violations : int;
  violations : violation list;
}

(* The pre-parallel engine, kept verbatim as the measurement baseline
   for [bench --explore-only]: a single-domain DFS that re-executes
   every schedule prefix from scratch (effect continuations are
   one-shot) — O(L²) executions per leaf — and re-executes each leaf a
   second time to judge it. Prefix accumulation is reverse-consed (one
   [List.rev] per execution) instead of the former O(n) [@ [pid]]. *)
let exhaustive_naive ?(max_steps = 64) ?preemption_bound ?(max_violations = 1)
    w =
  let complete = ref 0 in
  let truncated = ref 0 in
  let prefixes = ref 0 in
  let executions = ref 0 in
  let violations = ref [] in
  let stop = ref false in
  let leaf ~cut script =
    if cut then incr truncated else incr complete;
    Obs.Metrics.observe h_preempt (preemptions_of script);
    incr executions;
    let out = replay w ~max_steps ~script in
    if out.errors <> [] then begin
      violations :=
        record_violation w ~max_steps !violations ~script:out.script
          ~errors:out.errors;
      if List.length !violations >= max_violations then stop := true
    end
  in
  (* DFS over schedule prefixes. [last] is the pid of the previous step,
     [preempts] the context switches away from a still-live fiber so
     far. *)
  let rec go rev_script nsteps preempts last =
    if not !stop then begin
      incr prefixes;
      incr executions;
      Obs.Metrics.incr m_execs;
      let script = List.rev rev_script in
      let out =
        w.exec ~probe:None ~certify:false ~sched:(Schedule.script script)
          ~max_ops:max_steps ~check:false
      in
      if out.live = [] then leaf ~cut:false script
      else if nsteps >= max_steps then leaf ~cut:true script
      else begin
        let choices =
          match preemption_bound with
          | Some b when preempts >= b && last >= 0 && List.mem last out.live ->
            [ last ]
          | _ -> out.live
        in
        List.iter
          (fun pid ->
            let preempts' =
              if last >= 0 && pid <> last && List.mem last out.live then
                preempts + 1
              else preempts
            in
            go (pid :: rev_script) (nsteps + 1) preempts' pid)
          choices
      end
    end
  in
  go [] 0 0 (-1);
  {
    complete = !complete;
    truncated = !truncated;
    prefixes = !prefixes;
    executions = !executions;
    dedup_hits = 0;
    pruned = 0;
    domains = 1;
    certify_checks = 0;
    certify_violations = 0;
    violations = List.rev !violations;
  }

(* A frontier entry: a schedule prefix (reverse-consed decisions) to
   re-execute and expand. [sleep] are the pids this branch must not
   schedule at its first fresh decision (Godefroid sleep sets); [origin]
   is the pushing domain, for steal accounting. *)
type frontier_task = {
  rev_prefix : int list;
  depth : int;
  preempts : int;
  last : int;
  sleep : int list;
  origin : int;
}

let sleep_mask = List.fold_left (fun acc p -> acc lor (1 lsl p)) 0

(* The parallel prefix-sharing engine. Each frontier task executes its
   prefix exactly once; from the prefix's end onward the execution
   continues greedily down the lowest-pid branch while the probe emits
   one frontier task per sibling branch — so every tree edge is executed
   exactly once (the old engine re-executed the whole prefix for every
   node below it) and the leaf is judged in the same execution via the
   outcome's lazy [judge] (the old engine re-executed every leaf to
   judge it).

   Determinism: state claims are atomic, and equal (fingerprint, depth,
   sleep, bound-state) keys have equal futures, so all counts — and,
   when no early stop cuts the run short, the violation set after the
   sorted merge — are reproducible regardless of the number of domains
   or of which racing task wins a claim. *)
let exhaustive ?(max_steps = 64) ?preemption_bound ?(max_violations = 1)
    ?domains ?(dedup = true) ?(independence = true) ?(certify = false) w =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (min 4 (Domain.recommended_domain_count () - 1))
  in
  (* Injected faults give reached states clock-dependent components
     (stall windows, restart delays) the fingerprint cannot see, so
     pruning is unsound there and switches itself off. Independence is
     additionally disabled under a preemption bound: sleeping a branch
     changes which schedules spend the budget. *)
  let dedup = dedup && w.faults = None in
  let independence = independence && w.faults = None && preemption_bound = None in
  (* Certification only has claims to validate while sleep sets are
     active; the baseline counter values turn the global metrics into
     per-run deltas for the report. *)
  let certify = certify && independence in
  let cert_checks0 = Obs.Metrics.counter_value m_cert_checks in
  let cert_viols0 = Obs.Metrics.counter_value m_cert_viols in
  (* Sharded claim table: a state key is claimed by exactly one task;
     everyone else is pruned. *)
  let shards =
    (Array.init 64 (fun _ -> (Mutex.create (), Hashtbl.create 251))
    [@rsim.shared "each shard's table is only touched under its mutex"])
  in
  let claim key =
    let mu, tbl = shards.(Hashtbl.hash key land 63) in
    Mutex.lock mu;
    let fresh = not (Hashtbl.mem tbl key) in
    if fresh then Hashtbl.add tbl key ();
    Mutex.unlock mu;
    fresh
  in
  (* Shared LIFO frontier: a mutex-and-condition chunked queue. [pop]
     blocks while tasks are in flight (they may push children); the last
     domain to drain it broadcasts termination. *)
  let fmu = Mutex.create () in
  let fcv = Condition.create () in
  let stack = (ref [] [@rsim.shared "guarded by fmu"]) in
  let fsize = (ref 0 [@rsim.shared "guarded by fmu"]) in
  let in_flight = (ref 0 [@rsim.shared "guarded by fmu"]) in
  let finished = (ref false [@rsim.shared "guarded by fmu"]) in
  let stop = Atomic.make false in
  let push ts =
    if ts <> [] then begin
      Mutex.lock fmu;
      stack := List.rev_append ts !stack;
      fsize := !fsize + List.length ts;
      Obs.Metrics.set g_frontier !fsize;
      Condition.broadcast fcv;
      Mutex.unlock fmu
    end
  in
  let pop d =
    Mutex.lock fmu;
    let rec wait () =
      if !finished then begin
        Mutex.unlock fmu;
        None
      end
      else
        match !stack with
        | t :: rest ->
          stack := rest;
          decr fsize;
          incr in_flight;
          Obs.Metrics.set g_frontier !fsize;
          Mutex.unlock fmu;
          if t.origin <> d then Obs.Metrics.incr m_steals;
          Some t
        | [] ->
          if !in_flight = 0 then begin
            finished := true;
            Condition.broadcast fcv;
            Mutex.unlock fmu;
            None
          end
          else begin
            Condition.wait fcv fmu;
            wait ()
          end
    in
    wait ()
  in
  let task_done () =
    Mutex.lock fmu;
    decr in_flight;
    if !in_flight = 0 && !stack = [] then begin
      finished := true;
      Condition.broadcast fcv
    end;
    Mutex.unlock fmu
  in
  let halt () =
    Atomic.set stop true;
    Mutex.lock fmu;
    finished := true;
    Condition.broadcast fcv;
    Mutex.unlock fmu
  in
  let n_complete = Atomic.make 0 in
  let n_trunc = Atomic.make 0 in
  let n_nodes = Atomic.make 0 in
  let n_exec = Atomic.make 0 in
  let n_dedup = Atomic.make 0 in
  let n_pruned = Atomic.make 0 in
  (* Raw (unshrunk) violations; merged deterministically after the
     join. The early stop is atomic but advisory — in-flight tasks may
     report a few extra raw violations, which the sorted merge then
     truncates identically on every run that was not stopped early. *)
  let vmu = Mutex.create () in
  let raw = (ref [] [@rsim.shared "guarded by vmu"]) in
  let nraw = (ref 0 [@rsim.shared "guarded by vmu"]) in
  let report_raw script errors =
    Mutex.lock vmu;
    raw := (script, errors) :: !raw;
    incr nraw;
    let enough = !nraw >= max_violations in
    Mutex.unlock vmu;
    if enough then halt ()
  in
  let process d (t : frontier_task) =
    Atomic.incr n_exec;
    Obs.Metrics.incr m_execs;
    Obs.Metrics.incr m_tasks;
    let prefix = Array.of_list (List.rev t.rev_prefix) in
    let plen = Array.length prefix in
    let rev_path = ref t.rev_prefix in
    let preempts = ref t.preempts in
    let last = ref t.last in
    let sleep = ref t.sleep in
    let next_pick = ref (-1) in
    let children = ref [] in
    let aborted = ref false in
    let cut_off = ref false in
    let probe (pv : probe_view) =
      if Atomic.get stop then begin
        aborted := true;
        `Stop
      end
      else if pv.step < plen then begin
        (* Replaying the task's own prefix: the states along it were
           claimed when their siblings were emitted, so just dictate the
           recorded decision. *)
        next_pick := prefix.(pv.step);
        `Continue
      end
      else begin
        let fresh =
          (not dedup)
          ||
          match pv.fingerprint with
          | None -> true
          | Some (f1, f2) ->
            let benc =
              match preemption_bound with
              | None -> -1
              | Some _ -> (!preempts * 64) + !last + 1
            in
            if claim (f1, f2, pv.step, sleep_mask !sleep, benc) then true
            else begin
              Atomic.incr n_dedup;
              Obs.Metrics.incr m_dedup;
              false
            end
        in
        if not fresh then begin
          cut_off := true;
          `Stop
        end
        else if pv.step >= max_steps then
          (* Truncated leaf: counted post-run, like the complete case —
             normally the fiber op cap ends the run before the probe
             even fires here. *)
          `Stop
        else begin
          Atomic.incr n_nodes;
          begin
            let choices =
              match preemption_bound with
              | Some b
                when !preempts >= b && !last >= 0 && List.mem !last pv.live ->
                [ !last ]
              | _ -> pv.live
            in
            let explorable =
              if not independence then choices
              else List.filter (fun p -> not (List.mem p !sleep)) choices
            in
            match explorable with
            | [] ->
              (* Every enabled branch is asleep: some commuted ordering
                 of these steps is explored elsewhere. *)
              Atomic.incr n_pruned;
              Obs.Metrics.incr m_sleep;
              cut_off := true;
              `Stop
            | chosen :: rest ->
              let preempts_of_child pid =
                if !last >= 0 && pid <> !last && List.mem !last pv.live then
                  !preempts + 1
                else !preempts
              in
              (* Godefroid sleep sets: sibling c_i sleeps on every
                 member of Z ∪ {c_1..c_{i-1}} independent of c_i. *)
              if rest <> [] then begin
                let earlier = ref [ chosen ] in
                List.iter
                  (fun c ->
                    let zsleep =
                      if not independence then []
                      else
                        List.filter
                          (fun z -> pv.indep z c)
                          (List.sort_uniq compare (!sleep @ !earlier))
                    in
                    (* --certify-independence: every pair whose claimed
                       commutation justifies putting [c] to sleep on [z]
                       is validated once both operations actually
                       execute (the workload checks their real
                       footprints are disjoint). *)
                    if certify then List.iter (fun z -> pv.claim z c) zsleep;
                    children :=
                      {
                        rev_prefix = c :: !rev_path;
                        depth = pv.step + 1;
                        preempts = preempts_of_child c;
                        last = c;
                        sleep = zsleep;
                        origin = d;
                      }
                      :: !children;
                    earlier := c :: !earlier)
                  rest
              end;
              sleep :=
                (if independence then
                   List.filter
                     (fun z ->
                       let ok = pv.indep z chosen in
                       if ok && certify then pv.claim z chosen;
                       ok)
                     !sleep
                 else []);
              preempts := preempts_of_child chosen;
              last := chosen;
              rev_path := chosen :: !rev_path;
              next_pick := chosen;
              `Continue
          end
        end
      end
    in
    let out =
      w.exec ~probe:(Some probe) ~certify
        ~sched:(Schedule.fn (fun ~step:_ ~live:_ -> Some !next_pick))
        ~max_ops:max_steps ~check:false
    in
    if not (!aborted || !cut_off) then begin
      let script = List.rev !rev_path in
      Obs.Metrics.observe h_preempt (preemptions_of script);
      (* Leaf states are counted here, not in the probe: the probe only
         fires while some fiber is live, and a truncated run is ended by
         the fiber op cap before the probe reaches the depth cut. *)
      Atomic.incr n_nodes;
      if out.live = [] then Atomic.incr n_complete else Atomic.incr n_trunc;
      let errors = out.judge () in
      if errors <> [] then report_raw script errors
    end;
    push !children;
    task_done ()
  in
  let worker d =
    let rec go () =
      match pop d with
      | None -> ()
      | Some t ->
        process d t;
        go ()
    in
    go ()
  in
  push
    [
      {
        rev_prefix = [];
        depth = 0;
        preempts = 0;
        last = -1;
        sleep = [];
        origin = 0;
      };
    ];
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  (* Deterministic merge: shortest raw script first, ties broken
     lexicographically, then shrink-and-dedup up to [max_violations]. *)
  let ordered =
    List.sort_uniq
      (fun (s1, _) (s2, _) ->
        match compare (List.length s1) (List.length s2) with
        | 0 -> compare s1 s2
        | c -> c)
      !raw
  in
  let violations =
    List.fold_left
      (fun acc (script, errors) ->
        if List.length acc >= max_violations then acc
        else record_violation w ~max_steps acc ~script ~errors)
      [] ordered
  in
  {
    complete = Atomic.get n_complete;
    truncated = Atomic.get n_trunc;
    prefixes = Atomic.get n_nodes;
    executions = Atomic.get n_exec;
    dedup_hits = Atomic.get n_dedup;
    pruned = Atomic.get n_pruned;
    domains;
    certify_checks = Obs.Metrics.counter_value m_cert_checks - cert_checks0;
    certify_violations = Obs.Metrics.counter_value m_cert_viols - cert_viols0;
    violations = List.rev violations;
  }

(* ---------------------------------------------------------------- *)
(* Parallel randomized sweeps                                        *)
(* ---------------------------------------------------------------- *)

type sweep_report = {
  executions : int;
  domains : int;
  violations : violation list;
}

(* One of five adversary families, drawn deterministically from the
   per-execution seed. *)
let gen_sched ~n_procs ~max_steps ~seed =
  let g = Prng.make seed in
  let kind, g = Prng.int g 5 in
  let sub_seed, g = Prng.int g 0x3FFFFFFF in
  match kind with
  | 0 -> Schedule.random ~seed:sub_seed
  | 1 ->
    (* crash a random subset of processes after a few steps each *)
    let crashes, _ =
      List.fold_left
        (fun (acc, g) pid ->
          let b, g = Prng.bool g in
          if b then
            let steps, g = Prng.int g 8 in
            ((pid, 1 + steps) :: acc, g)
          else (acc, g))
        ([], g)
        (List.init n_procs Fun.id)
    in
    Schedule.with_crashes crashes (Schedule.random ~seed:sub_seed)
  | 2 ->
    (* an x-obstruction suffix: only a random non-empty subset runs *)
    let procs, _ =
      List.fold_left
        (fun (acc, g) pid ->
          let b, g = Prng.bool g in
          if b then (pid :: acc, g) else (acc, g))
        ([], g)
        (List.init n_procs Fun.id)
    in
    let procs = if procs = [] then [ 0 ] else procs in
    Schedule.among ~procs ~seed:sub_seed
  | 3 ->
    (* starvation: a random victim is hidden from the scheduler for an
       opening stretch, then everyone runs free — the adversary that a
       non-blocking object must shrug off *)
    let victim, g = Prng.int g n_procs in
    let len, _ = Prng.int g (max 1 (max_steps / 4)) in
    let procs =
      List.filter (fun p -> p <> victim) (List.init n_procs Fun.id)
    in
    let procs = if procs = [] then [ victim ] else procs in
    Schedule.phased ~prefix_len:(4 + len)
      ~prefix:(Schedule.among ~procs ~seed:sub_seed)
      ~suffix:(Schedule.random ~seed:(sub_seed lxor 0x5555))
  | _ ->
    let rec gen g k acc =
      if k = 0 then List.rev acc
      else
        let pid, g = Prng.int g n_procs in
        gen g (k - 1) (pid :: acc)
    in
    Schedule.script (gen g (2 * max_steps) [])

let sweep ?domains ?(max_steps = 200) ?(max_violations = 1) ~budget ~seed w =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (min 4 (Domain.recommended_domain_count () - 1))
  in
  (* No point spawning domains that would get an empty seed range. *)
  let domains = min domains (max 1 budget) in
  let found = Atomic.make 0 in
  let worker lo hi =
    let count = ref 0 in
    let raw = ref [] in
    let k = ref lo in
    while !k < hi && Atomic.get found < max_violations do
      let sched = gen_sched ~n_procs:w.n_procs ~max_steps ~seed:(seed + !k) in
      Obs.Metrics.incr m_execs;
      let out =
        w.exec ~probe:None ~certify:false ~sched ~max_ops:max_steps
          ~check:true
      in
      Obs.Metrics.observe h_preempt (preemptions_of out.script);
      incr count;
      if out.errors <> [] then begin
        Atomic.incr found;
        raw := out :: !raw
      end;
      incr k
    done;
    (!count, List.rev !raw)
  in
  let per = max 1 (budget / domains) in
  let ranges =
    List.init domains (fun d ->
        let lo = d * per in
        let hi = if d = domains - 1 then budget else min budget ((d + 1) * per) in
        (lo, max lo hi))
  in
  let spawned =
    match ranges with
    | [] -> []
    | _ :: rest ->
      List.map
        (fun (lo, hi) -> Domain.spawn (fun () -> worker lo hi))
        rest
  in
  let first = match ranges with [] -> (0, []) | (lo, hi) :: _ -> worker lo hi in
  let all = first :: List.map Domain.join spawned in
  let executions = List.fold_left (fun acc (c, _) -> acc + c) 0 all in
  let raw = List.concat_map snd all in
  let violations =
    List.fold_left
      (fun acc (out : outcome) ->
        if List.length acc >= max_violations then acc
        else record_violation w ~max_steps acc ~script:out.script
               ~errors:out.errors)
      [] raw
  in
  { executions; domains; violations = List.rev violations }

(* ---------------------------------------------------------------- *)
(* The M-operation history (for the Wing-Gong oracle)                *)
(* ---------------------------------------------------------------- *)

type snap_op = [ `U of (int * Value.t) list | `S ]

let snapshot_spec m : (Value.t array, snap_op) Linearize.spec =
  {
    init = Array.make m Value.Bot;
    apply =
      (fun st op ->
        match op with
        | `U updates ->
          let st' = Array.copy st in
          List.iter (fun (j, v) -> st'.(j) <- v) updates;
          (st', Value.Bot)
        | `S -> (st, Value.List (Array.to_list st)));
  }

let mop_history aug (trace : Aug.F.trace_entry list) =
  let completed = Hashtbl.create 16 in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; _ } ->
        Hashtbl.replace completed (proc, Vts.to_array ts) ()
      | Aug.Scan_op _ -> ())
    (Aug.log aug);
  let entries = ref [] in
  List.iter
    (function
      | Aug.Scan_op { proc; start_idx; end_idx; view; _ } ->
        entries :=
          Linearize.entry ~proc ~op:`S ~inv:start_idx ~ret:end_idx
            ~res:(Value.List (Array.to_list view))
            ()
          :: !entries
      | Aug.Bu_op { proc; updates; start_idx; end_idx; result; _ } -> (
        match result with
        | Aug.Atomic _ ->
          (* Lemma 11: the whole block linearizes at one point. *)
          entries :=
            Linearize.entry ~proc ~op:(`U updates) ~inv:start_idx ~ret:end_idx
              ()
            :: !entries
        | Aug.Yield ->
          (* Lemma 12: each Update linearizes somewhere inside the
             interval, not necessarily together. *)
          List.iter
            (fun (j, v) ->
              entries :=
                Linearize.entry ~proc ~op:(`U [ (j, v) ]) ~inv:start_idx
                  ~ret:end_idx ()
                :: !entries)
            updates))
    (Aug.log aug);
  (* Incomplete Block-Updates: triples were appended but the M-operation
     never returned — pending Updates, which may take effect or not. The
     pid's immediately preceding H.scan is its Line-2 scan, i.e. the
     invocation point. *)
  let last_scan = Hashtbl.create 8 in
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match e.op with
      | Aug.Ops.Hscan -> Hashtbl.replace last_scan e.pid e.idx
      | Aug.Ops.Happend_triples (({ Hrep.ts; _ } :: _) as triples)
        when not (Hashtbl.mem completed (e.pid, Vts.to_array ts)) ->
        let inv =
          Option.value ~default:e.idx (Hashtbl.find_opt last_scan e.pid)
        in
        List.iter
          (fun (tr : Hrep.triple) ->
            entries :=
              Linearize.entry ~proc:e.pid ~op:(`U [ (tr.comp, tr.value) ])
                ~inv ()
              :: !entries)
          triples
      | Aug.Ops.Happend_triples _ | Aug.Ops.Happend_lrecords _ -> ())
    trace;
  (snapshot_spec (Aug.m aug), List.rev !entries)

(* ---------------------------------------------------------------- *)
(* Augmented-snapshot workloads                                      *)
(* ---------------------------------------------------------------- *)

(* Two independent integer mixers; a fingerprint is a pair of digests,
   one per mixer, so a chance collision needs to happen in both. *)
let mix1 h x = ((h lxor x) * 0x100000001B3) land max_int
let mix2 h x = ((h lxor (x * 0x9E3779B1)) * 0x27D4EB2F) land max_int

module Aug_target = struct
  type exec = { aug : Aug.t; result : Aug.F.result; complete : bool }

  let no_failure : exec Oracle.t =
    {
      Oracle.name = "no-failure";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let errs = ref [] in
          Array.iteri
            (fun pid st ->
              match st with
              | Rsim_runtime.Fiber.Failed e when not (Faults.is_injected e) ->
                errs :=
                  Printf.sprintf "fiber %d raised %s" pid
                    (Printexc.to_string e)
                  :: !errs
              | Rsim_runtime.Fiber.Failed _ (* modeled fault: a crash *)
              | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
              | Rsim_runtime.Fiber.Crashed -> ())
            result.Aug.F.statuses;
          List.rev !errs);
    }

  let spec : exec Oracle.t =
    {
      Oracle.name = "aug-spec";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let r = Aug_spec.check aug result.Aug.F.trace in
          if r.Aug_spec.ok then [] else r.Aug_spec.errors);
    }

  let theorem20 : exec Oracle.t =
    {
      Oracle.name = "theorem20";
      on_truncated = true;
      check =
        (fun { aug; _ } ->
          List.filter_map
            (function
              | Aug.Bu_op { proc = 0; result = Aug.Yield; ts; _ } ->
                Some
                  (Printf.sprintf "process 0 yielded (ts %s)" (Vts.show ts))
              | Aug.Bu_op _ | Aug.Scan_op _ -> None)
            (Aug.log aug));
    }

  let linearizable : exec Oracle.t =
    {
      Oracle.name = "linearizable";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let spec, entries = mop_history aug result.Aug.F.trace in
          if List.length entries > 16 then [] (* Wing-Gong is exponential *)
          else if Linearize.check spec entries then []
          else [ "no linearization of the M-operation history (Wing-Gong)" ]);
    }

  (* The non-blocking guarantee (Theorem 20's machinery): while any
     process is still pending, some M-operation must keep completing.
     A truncated run whose final [window] H-operations contain no
     M-operation completion is a progress violation — the detector for
     blocking bugs (e.g. [Spin_on_yield]) that every safety oracle is
     blind to. *)
  let progress ?(window = 48) () : exec Oracle.t =
    {
      Oracle.name = "progress";
      on_truncated = true;
      check =
        (fun { aug; result; complete } ->
          let steps = result.Aug.F.total_ops in
          if complete || steps < window then []
          else
            let horizon = steps - window in
            let recent =
              List.exists
                (fun mop ->
                  (match mop with
                  | Aug.Scan_op { end_idx; _ } | Aug.Bu_op { end_idx; _ } ->
                    end_idx)
                  >= horizon)
                (Aug.log aug)
            in
            if recent then []
            else
              [
                Printf.sprintf
                  "no M-operation completed in the final %d of %d steps while \
                   a process was still pending (blocking)"
                  window steps;
              ]);
    }

  (* Crash-robustness: when the run contains injected crashes, the
     surviving history must still satisfy the augmented-snapshot spec and
     stay linearizable with the crashed processes' updates pending. *)
  let crash_robust : exec Oracle.t =
    {
      Oracle.name = "crash-robust";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let crashed =
            Array.exists
              (function
                | Rsim_runtime.Fiber.Crashed -> true
                | Rsim_runtime.Fiber.Failed e -> Faults.is_injected e
                | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending ->
                  false)
              result.Aug.F.statuses
          in
          if not crashed then []
          else
            let r = Aug_spec.check aug result.Aug.F.trace in
            let spec_errs = if r.Aug_spec.ok then [] else r.Aug_spec.errors in
            let lin_errs =
              let spec, entries = mop_history aug result.Aug.F.trace in
              if List.length entries > 16 then []
              else if Linearize.check spec entries then []
              else
                [
                  "crashed history not linearizable with the crashed \
                   processes' updates pending";
                ]
            in
            spec_errs @ lin_errs);
    }

  (* Happens-before race oracle (DESIGN §10). Replay the trace through
     an [Hb.Tracker]: H is single-writer, so location = component =
     pid; an append publishes the issuer's clock, an H.scan joins every
     published clock, and fault-plane events are incarnation
     boundaries. The Line-9 yield discipline then has a clock-checkable
     shadow: a Block-Update by [q] that returns [Atomic] must have
     observed, at its Line-2 scan, every M-conflicting triple-append by
     a lower-identifier process linearized before its own Line-4 X
     append — the single point the whole block linearizes at (Lemma
     11). Appends landing after [x_idx] serialize after the block and
     are harmless even when they precede the trailing Line-8/Line-12
     scans. The clean object satisfies this structurally (a lower-id
     append before the yield-check scan forces a yield, and [x_idx]
     precedes that scan); [Skip_yield_check] and [Yield_on_higher]
     break exactly this invariant. *)
  let race_errors aug (result : Aug.F.result) =
    let f = Array.length result.Aug.F.statuses in
    let t = Hb.Tracker.create ~procs:f ~locs:f in
    (* Fault events, grouped by the operation count at which they
       fired: ticked just before the trace entry with that index. *)
    let boundaries = Hashtbl.create 8 in
    List.iter
      (fun ev ->
        let pid, at =
          match ev with
          | Rsim_runtime.Fiber.Ev_crash { pid; at; _ }
          | Rsim_runtime.Fiber.Ev_restart { pid; at; _ }
          | Rsim_runtime.Fiber.Ev_stall { pid; at; _ }
          | Rsim_runtime.Fiber.Ev_replace { pid; at }
          | Rsim_runtime.Fiber.Ev_raise { pid; at } -> (pid, at)
        in
        Hashtbl.add boundaries at pid)
      result.Aug.F.events;
    let stamps = Hashtbl.create 64 in
    List.iter
      (fun (e : Aug.F.trace_entry) ->
        List.iter
          (fun pid -> Hb.Tracker.boundary t ~pid)
          (Hashtbl.find_all boundaries e.idx);
        (match e.op with
        | Aug.Ops.Hscan -> Hb.Tracker.read_all t ~pid:e.pid
        | Aug.Ops.Happend_triples _ | Aug.Ops.Happend_lrecords _ ->
          Hb.Tracker.write t ~pid:e.pid ~loc:e.pid);
        Hashtbl.replace stamps e.idx (Hb.Tracker.stamp t ~pid:e.pid))
      result.Aug.F.trace;
    let appends =
      List.filter_map
        (fun (e : Aug.F.trace_entry) ->
          match e.op with
          | Aug.Ops.Happend_triples ts ->
            Some
              ( e.idx,
                e.pid,
                List.map (fun (tr : Hrep.triple) -> tr.Hrep.comp) ts )
          | Aug.Ops.Hscan | Aug.Ops.Happend_lrecords _ -> None)
        result.Aug.F.trace
    in
    let errs = ref [] in
    List.iter
      (function
        | Aug.Scan_op _ | Aug.Bu_op { result = Aug.Yield; _ } -> ()
        | Aug.Bu_op
            {
              proc = q;
              updates;
              start_idx;
              x_idx;
              result = Aug.Atomic _;
              _;
            } -> (
          let qcomps = List.map fst updates in
          match Hashtbl.find_opt stamps start_idx with
          | None -> ()
          | Some scan_stamp ->
            List.iter
              (fun (idx, p, comps) ->
                if
                  p < q && idx < x_idx
                  && List.exists (fun c -> List.mem c qcomps) comps
                  && not (Hb.Clock.leq (Hashtbl.find stamps idx) scan_stamp)
                then
                  errs :=
                    Printf.sprintf
                      "race: atomic Block-Update by %d over [%d,%d] did not \
                       observe conflicting append by %d at %d (%s not <= %s)"
                      q start_idx x_idx p idx
                      (Hb.Clock.show (Hashtbl.find stamps idx))
                      (Hb.Clock.show scan_stamp)
                    :: !errs)
              appends))
      (Aug.log aug);
    List.rev !errs

  let race : exec Oracle.t =
    {
      Oracle.name = "race";
      on_truncated = true;
      check = (fun { aug; result; _ } -> race_errors aug result);
    }

  let default_oracles = [ no_failure; spec; theorem20; progress () ]

  let live_of statuses =
    let live = ref [] in
    Array.iteri
      (fun pid st ->
        match st with
        | Rsim_runtime.Fiber.Pending -> live := pid :: !live
        | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Failed _
        | Rsim_runtime.Fiber.Crashed -> ())
      statuses;
    List.rev !live

  let workload ?(oracles = default_oracles) ?inject ?(faults = [])
      ?(unsound_indep = false) ~name ~f ~m ~bodies () =
    let ocs = oracle_counters oracles in
    let exec ~probe ~certify ~sched ~max_ops ~check =
      let aug = Aug.create ?inject ~f ~m () in
      (* --certify-independence bookkeeping. A claim names a pair of
         fibers whose *next* operations the engine treated as
         commuting; we key each side by (pid, applied-op ordinal) —
         the pending operation at claim time is exactly the pid's next
         applied one — and validate the pair once both footprints are
         known: sound only if both sides are triple-appends on
         disjoint M-components (single-writer H). *)
      let napplied = Array.make f 0 in
      let footprints = Hashtbl.create (if certify then 64 else 1) in
      let claimed = Hashtbl.create (if certify then 64 else 1) in
      let cert_claim =
        if not certify then fun _ _ -> ()
        else fun a b ->
          let ka = (a, napplied.(a)) and kb = (b, napplied.(b)) in
          let key = if ka <= kb then (ka, kb) else (kb, ka) in
          if not (Hashtbl.mem claimed key) then Hashtbl.replace claimed key ()
      in
      let footprint_of = function
        | Aug.Ops.Hscan -> `Scan
        | Aug.Ops.Happend_triples ts ->
          `Appends (List.map (fun (tr : Hrep.triple) -> tr.Hrep.comp) ts)
        | Aug.Ops.Happend_lrecords _ -> `Helping
      in
      (* A plan is single-run (fire-once state), so compile it afresh for
         every execution: replays see the identical fault environment. *)
      let plan = Faults.plan ~adapter:Aug.fault_adapter faults in
      let control = Faults.control plan in
      (* Rolling state digests for the engine's fingerprint: one pair of
         accumulators per fiber folding its (operation, result) history
         — bodies are deterministic, so this pins down the fiber's whole
         local state — and one pair per single-writer H component
         folding, for each append, the issuer's fiber digest at issue
         time (append contents are a function of the issuer's history,
         so the payload itself, which contains recursive snapshots,
         never needs hashing). A scan's result hash is the combined
         H-component digest at scan time. *)
      let fib1 = Array.make f 0x1505 in
      let fib2 = Array.make f 0x9747 in
      let comp1 = Array.make f 0x1505 in
      let comp2 = Array.make f 0x9747 in
      let apply ~pid op =
        if certify then begin
          (* [op] is the post-fault-adapted operation — the one that
             actually hits shared memory, so the one whose footprint
             the commutation claim is about. *)
          Hashtbl.replace footprints (pid, napplied.(pid)) (footprint_of op);
          napplied.(pid) <- napplied.(pid) + 1
        end;
        let res = Aug.apply aug ~pid op in
        let tag =
          match op with
          | Aug.Ops.Hscan -> 1
          | Aug.Ops.Happend_triples _ -> 2
          | Aug.Ops.Happend_lrecords _ -> 3
        in
        (match op with
        | Aug.Ops.Hscan -> ()
        | Aug.Ops.Happend_triples _ | Aug.Ops.Happend_lrecords _ ->
          comp1.(pid) <- mix1 (mix1 comp1.(pid) fib1.(pid)) tag;
          comp2.(pid) <- mix2 (mix2 comp2.(pid) fib2.(pid)) tag);
        let r1, r2 =
          match res with
          | Aug.Ops.Ack -> (17, 17)
          | Aug.Ops.Snap _ ->
            (Array.fold_left mix1 5 comp1, Array.fold_left mix2 5 comp2)
        in
        fib1.(pid) <- mix1 (mix1 fib1.(pid) tag) r1;
        fib2.(pid) <- mix2 (mix2 fib2.(pid) tag) r2;
        res
      in
      let fingerprint live =
        let fold mixf a b =
          let h = ref 0 in
          Array.iter (fun d -> h := mixf !h d) a;
          Array.iter (fun d -> h := mixf !h d) b;
          List.iter (fun p -> h := mixf !h (p + 1)) live;
          !h
        in
        (fold mix1 fib1 comp1, fold mix2 fib2 comp2)
      in
      (* Two pending Block-Update appends targeting disjoint
         M-components commute for every oracle we run (single-writer H:
         each writes only its own H component); anything involving a
         scan or a helping write does not. *)
      let indep pending a b =
        if unsound_indep then a <> b
        else
          match (pending a, pending b) with
          | Some (Aug.Ops.Happend_triples ta), Some (Aug.Ops.Happend_triples tb)
            ->
            List.for_all
              (fun (t : Hrep.triple) ->
                not
                  (List.exists
                     (fun (u : Hrep.triple) -> u.Hrep.comp = t.Hrep.comp)
                     tb))
              ta
          | _ -> false
      in
      let fprobe =
        Option.map
          (fun p ~step ~live ~pending ->
            p
              {
                step;
                live;
                fingerprint = Some (fingerprint live);
                indep = indep pending;
                claim = cert_claim;
              })
          probe
      in
      let result =
        Aug.F.run ~max_ops ~control ~obs_label:Aug.op_name ?probe:fprobe
          ~sched ~apply (bodies aug)
      in
      if certify then
        Hashtbl.iter
          (fun (ka, kb) () ->
            match
              (Hashtbl.find_opt footprints ka, Hashtbl.find_opt footprints kb)
            with
            | Some fa, Some fb ->
              Obs.Metrics.incr m_cert_checks;
              let disjoint =
                match (fa, fb) with
                | `Appends ca, `Appends cb ->
                  List.for_all (fun c -> not (List.mem c cb)) ca
                | _ -> false
              in
              if not disjoint then Obs.Metrics.incr m_cert_viols
            | _ ->
              (* One side never executed (truncated run): the pruned
                 ordering was not realizable here, nothing to check. *)
              ())
          claimed;
      let live = live_of result.Aug.F.statuses in
      let complete = live = [] in
      let judge_now () = judge ocs ~complete { aug; result; complete } in
      {
        script =
          List.map (fun (e : Aug.F.trace_entry) -> e.pid) result.Aug.F.trace;
        live;
        steps = result.Aug.F.total_ops;
        errors = (if check then judge_now () else []);
        judge = judge_now;
      }
    in
    {
      name;
      n_procs = f;
      params = [ ("f", f); ("m", m) ];
      inject = Option.map fault_to_string inject;
      faults = (if faults = [] then None else Some (Faults.to_string faults));
      exec;
    }

  (* Deterministic pseudo-random bodies keyed on (f, m, pid): the same
     workload name + params always produces the same programs, so scripts
     persisted in artifacts stay replayable. *)
  let mixed_bodies ~f ~m aug =
    List.init f (fun pid _ ->
        let g = ref (Prng.make (0x6d78 + (97 * pid) + (13 * f) + m)) in
        let draw n =
          let k, g' = Prng.int !g n in
          g := g';
          k
        in
        for _ = 1 to 3 do
          if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
          else begin
            let r = 1 + draw (min m 2) in
            let comps = ref [] in
            while List.length !comps < r do
              let j = draw m in
              if not (List.mem j !comps) then comps := j :: !comps
            done;
            ignore
              (Aug.block_update aug ~me:pid
                 (List.map (fun j -> (j, Value.Int (draw 50))) !comps))
          end
        done)

  let builtin_names = [ "bu-conflict"; "bu-scan"; "bu-then-scan"; "mixed" ]

  let builtin ?inject ?faults ?oracles ?unsound_indep ~name ~f ~m () =
    let mk bodies =
      Some
        (workload ?oracles ?inject ?faults ?unsound_indep ~name ~f ~m ~bodies
           ())
    in
    match name with
    | "bu-conflict" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              ignore (Aug.block_update aug ~me:pid [ (0, Value.Int (pid + 1)) ])))
    | "bu-scan" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              if pid = 0 then
                ignore
                  (Aug.block_update aug ~me:0
                     (if m >= 2 then [ (0, Value.Int 1); (m - 1, Value.Int 2) ]
                      else [ (0, Value.Int 1) ]))
              else ignore (Aug.scan aug ~me:pid)))
    | "bu-then-scan" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              ignore
                (Aug.block_update aug ~me:pid
                   [ (pid mod m, Value.Int (pid + 1)) ]);
              ignore (Aug.scan aug ~me:pid)))
    | "mixed" -> mk (mixed_bodies ~f ~m)
    | _ -> None
end

(* ---------------------------------------------------------------- *)
(* Full-simulation workloads                                         *)
(* ---------------------------------------------------------------- *)

module Harness_target = struct
  type exec = { hspec : Harness.spec; result : Harness.result; complete : bool }

  let no_failure : exec Oracle.t =
    {
      Oracle.name = "no-failure";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let errs = ref [] in
          Array.iteri
            (fun pid st ->
              match st with
              | Rsim_runtime.Fiber.Failed e when not (Faults.is_injected e) ->
                errs :=
                  Printf.sprintf "simulator %d raised %s" pid
                    (Printexc.to_string e)
                  :: !errs
              | Rsim_runtime.Fiber.Failed _ (* modeled fault: a crash *)
              | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
              | Rsim_runtime.Fiber.Crashed -> ())
            result.Harness.statuses;
          List.rev !errs);
    }

  let aug_spec : exec Oracle.t =
    {
      Oracle.name = "aug-spec";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let r = Aug_spec.check result.Harness.aug result.Harness.trace in
          if r.Aug_spec.ok then [] else r.Aug_spec.errors);
    }

  let analysis : exec Oracle.t =
    {
      Oracle.name = "lemma26-replay";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          let r = Analysis.check hspec result in
          if r.Analysis.ok then [] else r.Analysis.errors);
    }

  let consensus : exec Oracle.t =
    {
      Oracle.name = "consensus";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          match Harness.validate hspec result ~task:Task.consensus with
          | Ok () -> []
          | Error e -> [ Harness.explain e ]);
    }

  (* Crash-fault validation: crashed/quarantined simulators are excused;
     the survivors must still solve the task. *)
  let consensus_survivors : exec Oracle.t =
    {
      Oracle.name = "consensus-survivors";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          match
            Harness.validate ~survivors_only:true hspec result
              ~task:Task.consensus
          with
          | Ok () -> []
          | Error e -> [ Harness.explain e ]);
    }

  (* Harness-level non-blocking detector, over the simulation's M. *)
  let progress ?(window = 48) () : exec Oracle.t =
    {
      Oracle.name = "progress";
      on_truncated = true;
      check =
        (fun { result; complete; _ } ->
          let steps = result.Harness.total_ops in
          if complete || steps < window then []
          else
            let horizon = steps - window in
            let recent =
              List.exists
                (fun mop ->
                  (match mop with
                  | Aug.Scan_op { end_idx; _ } | Aug.Bu_op { end_idx; _ } ->
                    end_idx)
                  >= horizon)
                (Aug.log result.Harness.aug)
            in
            if recent then []
            else
              [
                Printf.sprintf
                  "no M-operation completed in the final %d of %d steps while \
                   a simulator was still pending (blocking)"
                  window steps;
              ]);
    }

  let default_oracles = [ no_failure; aug_spec; analysis; consensus ]

  (* With faults on, strict all-done validation and the Lemma 26 replay
     no longer apply (crashed simulators leave partial journals): switch
     to survivor validation plus the progress detector. *)
  let fault_oracles = [ no_failure; aug_spec; progress (); consensus_survivors ]

  let racing ?oracles ?(faults = []) ?watchdog ~n ~m ~f ~d () =
    let oracles =
      match oracles with
      | Some os -> os
      | None -> if faults = [] then default_oracles else fault_oracles
    in
    let ocs = oracle_counters oracles in
    let exec ~probe ~certify:_ ~sched ~max_ops ~check =
      let hspec =
        {
          Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
          n;
          m;
          f;
          d;
          inputs = List.init f (fun p -> Value.Int (p + 1));
        }
      in
      (* No state fingerprint for simulation runs: simulator local state
         is too rich to digest soundly at this boundary, so the engine
         still shares prefixes but never dedups or sleeps branches. *)
      let fprobe =
        Option.map
          (fun p ~step ~live ~pending:_ ->
            p
              {
                step;
                live;
                fingerprint = None;
                indep = (fun _ _ -> false);
                (* never sleeps branches, so never claims *)
                claim = (fun _ _ -> ());
              })
          probe
      in
      let result =
        Harness.run ~max_ops ~faults ?watchdog ?probe:fprobe ~sched hspec
      in
      let live = ref [] in
      Array.iteri
        (fun pid st ->
          match st with
          | Rsim_runtime.Fiber.Pending -> live := pid :: !live
          | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Failed _
          | Rsim_runtime.Fiber.Crashed -> ())
        result.Harness.statuses;
      let live = List.rev !live in
      let complete = live = [] in
      let judge_now () = judge ocs ~complete { hspec; result; complete } in
      {
        script =
          List.map
            (fun (e : Rsim_augmented.Aug.F.trace_entry) -> e.pid)
            result.Harness.trace;
        live;
        steps = result.Harness.total_ops;
        errors = (if check then judge_now () else []);
        judge = judge_now;
      }
    in
    {
      name = "racing";
      n_procs = f;
      params = [ ("n", n); ("m", m); ("f", f); ("d", d) ];
      inject = None;
      faults = (if faults = [] then None else Some (Faults.to_string faults));
      exec;
    }
end
