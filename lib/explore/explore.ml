open Rsim_value
open Rsim_shmem
module Aug = Rsim_augmented.Aug
module Aug_spec = Rsim_augmented.Aug_spec
module Hrep = Rsim_augmented.Hrep
module Vts = Rsim_augmented.Vts
module Harness = Rsim_simulation.Harness
module Analysis = Rsim_simulation.Analysis
module Faults = Rsim_faults.Faults
module Task = Rsim_tasks.Task
module Racing = Rsim_protocols.Racing
module Obs = Rsim_obs.Obs

(* Engine telemetry, shared by both engines and safe under the sweep's
   parallel domains (atomic counters). Schedules/sec is the caller's
   division of [explore.executions] by wall time. *)
let m_execs = Obs.Metrics.counter "explore.executions"
let m_viols = Obs.Metrics.counter "explore.violations"
let m_shrink = Obs.Metrics.counter "explore.shrink.attempts"
let h_preempt = Obs.Metrics.histogram "explore.preemptions"

(* Context switches away from a pid that appears again later — the
   preemption depth of an executed schedule. *)
let preemptions_of script =
  let rec go last acc = function
    | [] -> acc
    | pid :: rest ->
      if last >= 0 && pid <> last then go pid (acc + 1) rest
      else go pid acc rest
  in
  go (-1) 0 script

(* ---------------------------------------------------------------- *)
(* Workloads                                                         *)
(* ---------------------------------------------------------------- *)

type outcome = {
  script : int list;
  live : int list;
  steps : int;
  errors : string list;
}

type workload = {
  name : string;
  n_procs : int;
  params : (string * int) list;
  inject : string option;
  faults : string option;
  exec : sched:Schedule.t -> max_ops:int -> check:bool -> outcome;
}

type violation = {
  script : int list;
  original : int list;
  errors : string list;
}

module Oracle = struct
  type 'exec t = {
    name : string;
    on_truncated : bool;
    check : 'exec -> string list;
  }
end

(* Verdict counters are registered once per workload build (metric
   registration takes a lock), then bumped on every judged execution. *)
let oracle_counters oracles =
  List.map
    (fun (o : _ Oracle.t) ->
      ( o,
        Obs.Metrics.counter ("explore.oracle." ^ o.Oracle.name ^ ".pass"),
        Obs.Metrics.counter ("explore.oracle." ^ o.Oracle.name ^ ".fail") ))
    oracles

let judge ocs ~complete ex =
  List.concat_map
    (fun ((o : _ Oracle.t), cpass, cfail) ->
      if complete || o.Oracle.on_truncated then begin
        let errs = o.Oracle.check ex in
        (match errs with
        | [] -> Obs.Metrics.incr cpass
        | _ :: _ -> Obs.Metrics.incr cfail);
        List.map (fun e -> o.Oracle.name ^ ": " ^ e) errs
      end
      else [])
    ocs

let fault_to_string = function
  | Aug.Skip_yield_check -> "skip-yield-check"
  | Aug.Yield_on_higher -> "yield-on-higher"
  | Aug.Spin_on_yield -> "spin-on-yield"

let fault_of_string = function
  | "skip-yield-check" -> Some Aug.Skip_yield_check
  | "yield-on-higher" -> Some Aug.Yield_on_higher
  | "spin-on-yield" -> Some Aug.Spin_on_yield
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Replay and shrinking                                              *)
(* ---------------------------------------------------------------- *)

let replay w ~max_steps ~script =
  Obs.Metrics.incr m_execs;
  w.exec ~sched:(Schedule.script script) ~max_ops:max_steps ~check:true

let failing w ~max_steps script =
  Obs.Metrics.incr m_shrink;
  (replay w ~max_steps ~script).errors <> []

(* Greedy step removal: delete any single step whose removal keeps the
   script failing, to fixpoint. *)
let rec remove_pass w ~max_steps s =
  let n = List.length s in
  let rec try_i i =
    if i >= n then None
    else
      let cand = List.filteri (fun j _ -> j <> i) s in
      if failing w ~max_steps cand then Some cand else try_i (i + 1)
  in
  match try_i 0 with Some s' -> remove_pass w ~max_steps s' | None -> s

(* Preemption merging: move a later contiguous block of some pid to sit
   directly after an earlier block of the same pid, removing two context
   switches, whenever the script still fails. *)
let merge_pass w ~max_steps s =
  let arr = Array.of_list s in
  let n = Array.length arr in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && arr.(!j) = arr.(!i) do
      incr j
    done;
    blocks := (arr.(!i), !i, !j - !i) :: !blocks;
    i := !j
  done;
  let blocks = List.rev !blocks in
  let candidate (_, s1, l1) (p2, s2, l2) =
    let pre = Array.to_list (Array.sub arr 0 (s1 + l1)) in
    let mid = Array.to_list (Array.sub arr (s1 + l1) (s2 - s1 - l1)) in
    let post = Array.to_list (Array.sub arr (s2 + l2) (n - s2 - l2)) in
    pre @ List.init l2 (fun _ -> p2) @ mid @ post
  in
  let rec pairs = function
    | [] -> None
    | ((p1, _, _) as b1) :: rest ->
      let rec inner = function
        | [] -> pairs rest
        | ((p2, _, _) as b2) :: more ->
          if p1 = p2 then begin
            let cand = candidate b1 b2 in
            if failing w ~max_steps cand then Some cand else inner more
          end
          else inner more
      in
      inner rest
  in
  pairs blocks

let shrink w ~max_steps ~script =
  if not (failing w ~max_steps script) then script
  else begin
    let rec fix s =
      let s' = remove_pass w ~max_steps s in
      match merge_pass w ~max_steps s' with
      | Some s'' -> fix s''
      | None -> s'
    in
    fix script
  end

let record_violation w ~max_steps acc (out : outcome) =
  let shrunk = shrink w ~max_steps ~script:out.script in
  if List.exists (fun (v : violation) -> v.script = shrunk) acc then acc
  else begin
    Obs.Metrics.incr m_viols;
    let errs = (replay w ~max_steps ~script:shrunk).errors in
    {
      script = shrunk;
      original = out.script;
      errors = (if errs = [] then out.errors else errs);
    }
    :: acc
  end

(* ---------------------------------------------------------------- *)
(* Exhaustive enumeration                                            *)
(* ---------------------------------------------------------------- *)

type exhaustive_report = {
  complete : int;
  truncated : int;
  prefixes : int;
  violations : violation list;
}

let exhaustive ?(max_steps = 64) ?preemption_bound ?(max_violations = 1) w =
  let complete = ref 0 in
  let truncated = ref 0 in
  let prefixes = ref 0 in
  let violations = ref [] in
  let stop = ref false in
  let leaf ~cut script =
    if cut then incr truncated else incr complete;
    Obs.Metrics.observe h_preempt (preemptions_of script);
    let out = replay w ~max_steps ~script in
    if out.errors <> [] then begin
      violations := record_violation w ~max_steps !violations out;
      if List.length !violations >= max_violations then stop := true
    end
  in
  (* DFS over schedule prefixes. The fiber continuations are one-shot, so
     each prefix is replayed from scratch; workloads are small by
     construction. [last] is the pid of the previous step, [preempts] the
     context switches away from a still-live fiber so far. *)
  let rec go script nsteps preempts last =
    if not !stop then begin
      incr prefixes;
      Obs.Metrics.incr m_execs;
      let out =
        w.exec ~sched:(Schedule.script script) ~max_ops:max_steps ~check:false
      in
      if out.live = [] then leaf ~cut:false script
      else if nsteps >= max_steps then leaf ~cut:true script
      else begin
        let choices =
          match preemption_bound with
          | Some b when preempts >= b && last >= 0 && List.mem last out.live ->
            [ last ]
          | _ -> out.live
        in
        List.iter
          (fun pid ->
            let preempts' =
              if last >= 0 && pid <> last && List.mem last out.live then
                preempts + 1
              else preempts
            in
            go (script @ [ pid ]) (nsteps + 1) preempts' pid)
          choices
      end
    end
  in
  go [] 0 0 (-1);
  {
    complete = !complete;
    truncated = !truncated;
    prefixes = !prefixes;
    violations = List.rev !violations;
  }

(* ---------------------------------------------------------------- *)
(* Parallel randomized sweeps                                        *)
(* ---------------------------------------------------------------- *)

type sweep_report = {
  executions : int;
  domains : int;
  violations : violation list;
}

(* One of five adversary families, drawn deterministically from the
   per-execution seed. *)
let gen_sched ~n_procs ~max_steps ~seed =
  let g = Prng.make seed in
  let kind, g = Prng.int g 5 in
  let sub_seed, g = Prng.int g 0x3FFFFFFF in
  match kind with
  | 0 -> Schedule.random ~seed:sub_seed
  | 1 ->
    (* crash a random subset of processes after a few steps each *)
    let crashes, _ =
      List.fold_left
        (fun (acc, g) pid ->
          let b, g = Prng.bool g in
          if b then
            let steps, g = Prng.int g 8 in
            ((pid, 1 + steps) :: acc, g)
          else (acc, g))
        ([], g)
        (List.init n_procs Fun.id)
    in
    Schedule.with_crashes crashes (Schedule.random ~seed:sub_seed)
  | 2 ->
    (* an x-obstruction suffix: only a random non-empty subset runs *)
    let procs, _ =
      List.fold_left
        (fun (acc, g) pid ->
          let b, g = Prng.bool g in
          if b then (pid :: acc, g) else (acc, g))
        ([], g)
        (List.init n_procs Fun.id)
    in
    let procs = if procs = [] then [ 0 ] else procs in
    Schedule.among ~procs ~seed:sub_seed
  | 3 ->
    (* starvation: a random victim is hidden from the scheduler for an
       opening stretch, then everyone runs free — the adversary that a
       non-blocking object must shrug off *)
    let victim, g = Prng.int g n_procs in
    let len, _ = Prng.int g (max 1 (max_steps / 4)) in
    let procs =
      List.filter (fun p -> p <> victim) (List.init n_procs Fun.id)
    in
    let procs = if procs = [] then [ victim ] else procs in
    Schedule.phased ~prefix_len:(4 + len)
      ~prefix:(Schedule.among ~procs ~seed:sub_seed)
      ~suffix:(Schedule.random ~seed:(sub_seed lxor 0x5555))
  | _ ->
    let rec gen g k acc =
      if k = 0 then List.rev acc
      else
        let pid, g = Prng.int g n_procs in
        gen g (k - 1) (pid :: acc)
    in
    Schedule.script (gen g (2 * max_steps) [])

let sweep ?domains ?(max_steps = 200) ?(max_violations = 1) ~budget ~seed w =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (min 4 (Domain.recommended_domain_count () - 1))
  in
  let found = Atomic.make 0 in
  let worker lo hi =
    let count = ref 0 in
    let raw = ref [] in
    let k = ref lo in
    while !k < hi && Atomic.get found < max_violations do
      let sched = gen_sched ~n_procs:w.n_procs ~max_steps ~seed:(seed + !k) in
      Obs.Metrics.incr m_execs;
      let out = w.exec ~sched ~max_ops:max_steps ~check:true in
      Obs.Metrics.observe h_preempt (preemptions_of out.script);
      incr count;
      if out.errors <> [] then begin
        Atomic.incr found;
        raw := out :: !raw
      end;
      incr k
    done;
    (!count, List.rev !raw)
  in
  let per = max 1 (budget / domains) in
  let ranges =
    List.init domains (fun d ->
        let lo = d * per in
        let hi = if d = domains - 1 then budget else min budget ((d + 1) * per) in
        (lo, max lo hi))
  in
  let spawned =
    match ranges with
    | [] -> []
    | _ :: rest ->
      List.map
        (fun (lo, hi) -> Domain.spawn (fun () -> worker lo hi))
        rest
  in
  let first = match ranges with [] -> (0, []) | (lo, hi) :: _ -> worker lo hi in
  let all = first :: List.map Domain.join spawned in
  let executions = List.fold_left (fun acc (c, _) -> acc + c) 0 all in
  let raw = List.concat_map snd all in
  let violations =
    List.fold_left
      (fun acc out ->
        if List.length acc >= max_violations then acc
        else record_violation w ~max_steps acc out)
      [] raw
  in
  { executions; domains; violations = List.rev violations }

(* ---------------------------------------------------------------- *)
(* The M-operation history (for the Wing-Gong oracle)                *)
(* ---------------------------------------------------------------- *)

type snap_op = [ `U of (int * Value.t) list | `S ]

let snapshot_spec m : (Value.t array, snap_op) Linearize.spec =
  {
    init = Array.make m Value.Bot;
    apply =
      (fun st op ->
        match op with
        | `U updates ->
          let st' = Array.copy st in
          List.iter (fun (j, v) -> st'.(j) <- v) updates;
          (st', Value.Bot)
        | `S -> (st, Value.List (Array.to_list st)));
  }

let mop_history aug (trace : Aug.F.trace_entry list) =
  let completed = Hashtbl.create 16 in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; _ } ->
        Hashtbl.replace completed (proc, Vts.to_array ts) ()
      | Aug.Scan_op _ -> ())
    (Aug.log aug);
  let entries = ref [] in
  List.iter
    (function
      | Aug.Scan_op { proc; start_idx; end_idx; view; _ } ->
        entries :=
          Linearize.entry ~proc ~op:`S ~inv:start_idx ~ret:end_idx
            ~res:(Value.List (Array.to_list view))
            ()
          :: !entries
      | Aug.Bu_op { proc; updates; start_idx; end_idx; result; _ } -> (
        match result with
        | Aug.Atomic _ ->
          (* Lemma 11: the whole block linearizes at one point. *)
          entries :=
            Linearize.entry ~proc ~op:(`U updates) ~inv:start_idx ~ret:end_idx
              ()
            :: !entries
        | Aug.Yield ->
          (* Lemma 12: each Update linearizes somewhere inside the
             interval, not necessarily together. *)
          List.iter
            (fun (j, v) ->
              entries :=
                Linearize.entry ~proc ~op:(`U [ (j, v) ]) ~inv:start_idx
                  ~ret:end_idx ()
                :: !entries)
            updates))
    (Aug.log aug);
  (* Incomplete Block-Updates: triples were appended but the M-operation
     never returned — pending Updates, which may take effect or not. The
     pid's immediately preceding H.scan is its Line-2 scan, i.e. the
     invocation point. *)
  let last_scan = Hashtbl.create 8 in
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match e.op with
      | Aug.Ops.Hscan -> Hashtbl.replace last_scan e.pid e.idx
      | Aug.Ops.Happend_triples (({ Hrep.ts; _ } :: _) as triples)
        when not (Hashtbl.mem completed (e.pid, Vts.to_array ts)) ->
        let inv =
          Option.value ~default:e.idx (Hashtbl.find_opt last_scan e.pid)
        in
        List.iter
          (fun (tr : Hrep.triple) ->
            entries :=
              Linearize.entry ~proc:e.pid ~op:(`U [ (tr.comp, tr.value) ])
                ~inv ()
              :: !entries)
          triples
      | Aug.Ops.Happend_triples _ | Aug.Ops.Happend_lrecords _ -> ())
    trace;
  (snapshot_spec (Aug.m aug), List.rev !entries)

(* ---------------------------------------------------------------- *)
(* Augmented-snapshot workloads                                      *)
(* ---------------------------------------------------------------- *)

module Aug_target = struct
  type exec = { aug : Aug.t; result : Aug.F.result; complete : bool }

  let no_failure : exec Oracle.t =
    {
      Oracle.name = "no-failure";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let errs = ref [] in
          Array.iteri
            (fun pid st ->
              match st with
              | Rsim_runtime.Fiber.Failed e when not (Faults.is_injected e) ->
                errs :=
                  Printf.sprintf "fiber %d raised %s" pid
                    (Printexc.to_string e)
                  :: !errs
              | Rsim_runtime.Fiber.Failed _ (* modeled fault: a crash *)
              | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
              | Rsim_runtime.Fiber.Crashed -> ())
            result.Aug.F.statuses;
          List.rev !errs);
    }

  let spec : exec Oracle.t =
    {
      Oracle.name = "aug-spec";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let r = Aug_spec.check aug result.Aug.F.trace in
          if r.Aug_spec.ok then [] else r.Aug_spec.errors);
    }

  let theorem20 : exec Oracle.t =
    {
      Oracle.name = "theorem20";
      on_truncated = true;
      check =
        (fun { aug; _ } ->
          List.filter_map
            (function
              | Aug.Bu_op { proc = 0; result = Aug.Yield; ts; _ } ->
                Some
                  (Printf.sprintf "process 0 yielded (ts %s)" (Vts.show ts))
              | Aug.Bu_op _ | Aug.Scan_op _ -> None)
            (Aug.log aug));
    }

  let linearizable : exec Oracle.t =
    {
      Oracle.name = "linearizable";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let spec, entries = mop_history aug result.Aug.F.trace in
          if List.length entries > 16 then [] (* Wing-Gong is exponential *)
          else if Linearize.check spec entries then []
          else [ "no linearization of the M-operation history (Wing-Gong)" ]);
    }

  (* The non-blocking guarantee (Theorem 20's machinery): while any
     process is still pending, some M-operation must keep completing.
     A truncated run whose final [window] H-operations contain no
     M-operation completion is a progress violation — the detector for
     blocking bugs (e.g. [Spin_on_yield]) that every safety oracle is
     blind to. *)
  let progress ?(window = 48) () : exec Oracle.t =
    {
      Oracle.name = "progress";
      on_truncated = true;
      check =
        (fun { aug; result; complete } ->
          let steps = result.Aug.F.total_ops in
          if complete || steps < window then []
          else
            let horizon = steps - window in
            let recent =
              List.exists
                (fun mop ->
                  (match mop with
                  | Aug.Scan_op { end_idx; _ } | Aug.Bu_op { end_idx; _ } ->
                    end_idx)
                  >= horizon)
                (Aug.log aug)
            in
            if recent then []
            else
              [
                Printf.sprintf
                  "no M-operation completed in the final %d of %d steps while \
                   a process was still pending (blocking)"
                  window steps;
              ]);
    }

  (* Crash-robustness: when the run contains injected crashes, the
     surviving history must still satisfy the augmented-snapshot spec and
     stay linearizable with the crashed processes' updates pending. *)
  let crash_robust : exec Oracle.t =
    {
      Oracle.name = "crash-robust";
      on_truncated = true;
      check =
        (fun { aug; result; _ } ->
          let crashed =
            Array.exists
              (function
                | Rsim_runtime.Fiber.Crashed -> true
                | Rsim_runtime.Fiber.Failed e -> Faults.is_injected e
                | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending ->
                  false)
              result.Aug.F.statuses
          in
          if not crashed then []
          else
            let r = Aug_spec.check aug result.Aug.F.trace in
            let spec_errs = if r.Aug_spec.ok then [] else r.Aug_spec.errors in
            let lin_errs =
              let spec, entries = mop_history aug result.Aug.F.trace in
              if List.length entries > 16 then []
              else if Linearize.check spec entries then []
              else
                [
                  "crashed history not linearizable with the crashed \
                   processes' updates pending";
                ]
            in
            spec_errs @ lin_errs);
    }

  let default_oracles = [ no_failure; spec; theorem20; progress () ]

  let live_of statuses =
    let live = ref [] in
    Array.iteri
      (fun pid st ->
        match st with
        | Rsim_runtime.Fiber.Pending -> live := pid :: !live
        | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Failed _
        | Rsim_runtime.Fiber.Crashed -> ())
      statuses;
    List.rev !live

  let workload ?(oracles = default_oracles) ?inject ?(faults = []) ~name ~f ~m
      ~bodies () =
    let ocs = oracle_counters oracles in
    let exec ~sched ~max_ops ~check =
      let aug = Aug.create ?inject ~f ~m () in
      (* A plan is single-run (fire-once state), so compile it afresh for
         every execution: replays see the identical fault environment. *)
      let plan = Faults.plan ~adapter:Aug.fault_adapter faults in
      let control = Faults.control plan in
      let result =
        Aug.F.run ~max_ops ~control ~obs_label:Aug.op_name ~sched
          ~apply:(Aug.apply aug) (bodies aug)
      in
      let live = live_of result.Aug.F.statuses in
      let complete = live = [] in
      let errors =
        if not check then [] else judge ocs ~complete { aug; result; complete }
      in
      {
        script =
          List.map (fun (e : Aug.F.trace_entry) -> e.pid) result.Aug.F.trace;
        live;
        steps = result.Aug.F.total_ops;
        errors;
      }
    in
    {
      name;
      n_procs = f;
      params = [ ("f", f); ("m", m) ];
      inject = Option.map fault_to_string inject;
      faults = (if faults = [] then None else Some (Faults.to_string faults));
      exec;
    }

  (* Deterministic pseudo-random bodies keyed on (f, m, pid): the same
     workload name + params always produces the same programs, so scripts
     persisted in artifacts stay replayable. *)
  let mixed_bodies ~f ~m aug =
    List.init f (fun pid _ ->
        let g = ref (Prng.make (0x6d78 + (97 * pid) + (13 * f) + m)) in
        let draw n =
          let k, g' = Prng.int !g n in
          g := g';
          k
        in
        for _ = 1 to 3 do
          if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
          else begin
            let r = 1 + draw (min m 2) in
            let comps = ref [] in
            while List.length !comps < r do
              let j = draw m in
              if not (List.mem j !comps) then comps := j :: !comps
            done;
            ignore
              (Aug.block_update aug ~me:pid
                 (List.map (fun j -> (j, Value.Int (draw 50))) !comps))
          end
        done)

  let builtin_names = [ "bu-conflict"; "bu-scan"; "bu-then-scan"; "mixed" ]

  let builtin ?inject ?faults ?oracles ~name ~f ~m () =
    let mk bodies =
      Some (workload ?oracles ?inject ?faults ~name ~f ~m ~bodies ())
    in
    match name with
    | "bu-conflict" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              ignore (Aug.block_update aug ~me:pid [ (0, Value.Int (pid + 1)) ])))
    | "bu-scan" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              if pid = 0 then
                ignore
                  (Aug.block_update aug ~me:0
                     (if m >= 2 then [ (0, Value.Int 1); (m - 1, Value.Int 2) ]
                      else [ (0, Value.Int 1) ]))
              else ignore (Aug.scan aug ~me:pid)))
    | "bu-then-scan" ->
      mk (fun aug ->
          List.init f (fun pid _ ->
              ignore
                (Aug.block_update aug ~me:pid
                   [ (pid mod m, Value.Int (pid + 1)) ]);
              ignore (Aug.scan aug ~me:pid)))
    | "mixed" -> mk (mixed_bodies ~f ~m)
    | _ -> None
end

(* ---------------------------------------------------------------- *)
(* Full-simulation workloads                                         *)
(* ---------------------------------------------------------------- *)

module Harness_target = struct
  type exec = { hspec : Harness.spec; result : Harness.result; complete : bool }

  let no_failure : exec Oracle.t =
    {
      Oracle.name = "no-failure";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let errs = ref [] in
          Array.iteri
            (fun pid st ->
              match st with
              | Rsim_runtime.Fiber.Failed e when not (Faults.is_injected e) ->
                errs :=
                  Printf.sprintf "simulator %d raised %s" pid
                    (Printexc.to_string e)
                  :: !errs
              | Rsim_runtime.Fiber.Failed _ (* modeled fault: a crash *)
              | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
              | Rsim_runtime.Fiber.Crashed -> ())
            result.Harness.statuses;
          List.rev !errs);
    }

  let aug_spec : exec Oracle.t =
    {
      Oracle.name = "aug-spec";
      on_truncated = true;
      check =
        (fun { result; _ } ->
          let r = Aug_spec.check result.Harness.aug result.Harness.trace in
          if r.Aug_spec.ok then [] else r.Aug_spec.errors);
    }

  let analysis : exec Oracle.t =
    {
      Oracle.name = "lemma26-replay";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          let r = Analysis.check hspec result in
          if r.Analysis.ok then [] else r.Analysis.errors);
    }

  let consensus : exec Oracle.t =
    {
      Oracle.name = "consensus";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          match Harness.validate hspec result ~task:Task.consensus with
          | Ok () -> []
          | Error e -> [ Harness.explain e ]);
    }

  (* Crash-fault validation: crashed/quarantined simulators are excused;
     the survivors must still solve the task. *)
  let consensus_survivors : exec Oracle.t =
    {
      Oracle.name = "consensus-survivors";
      on_truncated = false;
      check =
        (fun { hspec; result; _ } ->
          match
            Harness.validate ~survivors_only:true hspec result
              ~task:Task.consensus
          with
          | Ok () -> []
          | Error e -> [ Harness.explain e ]);
    }

  (* Harness-level non-blocking detector, over the simulation's M. *)
  let progress ?(window = 48) () : exec Oracle.t =
    {
      Oracle.name = "progress";
      on_truncated = true;
      check =
        (fun { result; complete; _ } ->
          let steps = result.Harness.total_ops in
          if complete || steps < window then []
          else
            let horizon = steps - window in
            let recent =
              List.exists
                (fun mop ->
                  (match mop with
                  | Aug.Scan_op { end_idx; _ } | Aug.Bu_op { end_idx; _ } ->
                    end_idx)
                  >= horizon)
                (Aug.log result.Harness.aug)
            in
            if recent then []
            else
              [
                Printf.sprintf
                  "no M-operation completed in the final %d of %d steps while \
                   a simulator was still pending (blocking)"
                  window steps;
              ]);
    }

  let default_oracles = [ no_failure; aug_spec; analysis; consensus ]

  (* With faults on, strict all-done validation and the Lemma 26 replay
     no longer apply (crashed simulators leave partial journals): switch
     to survivor validation plus the progress detector. *)
  let fault_oracles = [ no_failure; aug_spec; progress (); consensus_survivors ]

  let racing ?oracles ?(faults = []) ?watchdog ~n ~m ~f ~d () =
    let oracles =
      match oracles with
      | Some os -> os
      | None -> if faults = [] then default_oracles else fault_oracles
    in
    let ocs = oracle_counters oracles in
    let exec ~sched ~max_ops ~check =
      let hspec =
        {
          Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
          n;
          m;
          f;
          d;
          inputs = List.init f (fun p -> Value.Int (p + 1));
        }
      in
      let result = Harness.run ~max_ops ~faults ?watchdog ~sched hspec in
      let live = ref [] in
      Array.iteri
        (fun pid st ->
          match st with
          | Rsim_runtime.Fiber.Pending -> live := pid :: !live
          | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Failed _
          | Rsim_runtime.Fiber.Crashed -> ())
        result.Harness.statuses;
      let live = List.rev !live in
      let complete = live = [] in
      let errors =
        if not check then []
        else judge ocs ~complete { hspec; result; complete }
      in
      {
        script =
          List.map
            (fun (e : Rsim_augmented.Aug.F.trace_entry) -> e.pid)
            result.Harness.trace;
        live;
        steps = result.Harness.total_ops;
        errors;
      }
    in
    {
      name = "racing";
      n_procs = f;
      params = [ ("n", n); ("m", m); ("f", f); ("d", d) ];
      inject = None;
      faults = (if faults = [] then None else Some (Faults.to_string faults));
      exec;
    }
end
