(** Schedule exploration: systematic and parallel randomized model
    checking of fiber workloads.

    Every test and experiment elsewhere in this repository runs a
    hand-picked or fixed-seed schedule through {!Rsim_runtime.Fiber.run}.
    But the paper's claims (Lemmas 2-19, Theorem 20, Lemmas 26-32) are
    statements over {e all} interleavings, so this module supplies the
    missing quantifier. A {!workload} packages "build a fresh instance,
    run its fibers under a given schedule, judge the execution with
    oracles"; two engines drive workloads:

    - {!exhaustive} enumerates every schedule up to a step bound with a
      parallel prefix-sharing frontier: each schedule prefix is executed
      {e once} (the fiber runtime's probe hook enumerates sibling
      branches mid-run — effect continuations are one-shot, so branching
      still costs one execution per tree edge, but never a replay per
      node), states already reached by an equivalent interleaving are
      pruned by fingerprint, commuting Block-Updates are pruned by sleep
      sets, and the frontier is shared work-stealing-style across
      [Domain]s with a deterministic merge;
    - {!sweep} runs seeded randomized schedules — uniform, crashy
      ({!Rsim_shmem.Schedule.with_crashes}), x-obstruction
      ({!Rsim_shmem.Schedule.among}) and scripted adversaries — in
      parallel across [Domain]s.

    Any violating execution is shrunk to a (locally) minimal failing
    schedule by greedy step removal and preemption merging, ready to be
    persisted as a replayable JSON artifact ({!Artifact}) and re-run with
    the [rsim replay] CLI subcommand. *)

open Rsim_value
open Rsim_shmem

(** {2 Workloads and outcomes} *)

(** What the exploration engine observes at one scheduling decision of a
    probed execution: the decision index, the schedulable pids, a
    canonical state fingerprint (two independently-mixed digests of the
    shared state and every fiber's operation/result history; [None] when
    the workload cannot fingerprint soundly), the independence relation
    between two live pids' pending operations (true only when executing
    them in either order is equivalent for every oracle the workload
    runs), and a certification callback: under [--certify-independence]
    the engine calls [claim a b] for every pair whose claimed
    commutation justified a sleep-set prune, and the workload validates
    the pair's real footprints once both operations execute (a no-op
    when certification is off). *)
type probe_view = {
  step : int;
  live : int list;
  fingerprint : (int * int) option;
  indep : int -> int -> bool;
  claim : int -> int -> unit;
}

(** Returning [`Stop] ends the execution at that decision point. *)
type probe = probe_view -> [ `Continue | `Stop ]

(** The result of driving one execution under one schedule. *)
type outcome = {
  script : int list;
      (** the pids actually scheduled, in order — a deterministic replay
          script for {!Rsim_shmem.Schedule.script} *)
  live : int list;  (** pids still pending when the run stopped *)
  steps : int;  (** base-object operations executed *)
  errors : string list;  (** oracle violations; [[]] if passing or unchecked *)
  judge : unit -> string list;
      (** judge this execution now — lets an engine run with [check]
          false and pay for oracles only on executions that are real
          leaves (not pruned mid-run) *)
}

(** How to build a fresh instance, run its fibers, and judge the result.
    [exec] must be re-entrant (fresh state on every call): both engines
    call it concurrently from several [Domain]s. When [check] is false
    the engine only needs [script]/[live]/[steps] and judges lazily via
    [judge]. [probe], if given, is called before every scheduling
    decision with the reached state's {!probe_view}. *)
type workload = {
  name : string;
  n_procs : int;
  params : (string * int) list;
      (** enough to rebuild the workload when replaying an artifact *)
  inject : string option;  (** seeded bug, if any (see {!Aug_target}) *)
  faults : string option;
      (** fault-plane profile ({!Rsim_faults.Faults.to_string}), if any *)
  exec :
    probe:probe option ->
    certify:bool ->
    sched:Schedule.t ->
    max_ops:int ->
    check:bool ->
    outcome;
}

type violation = {
  script : int list;  (** minimal failing schedule, after shrinking *)
  original : int list;  (** the schedule as first caught *)
  errors : string list;
}

(** {2 Engines} *)

type exhaustive_report = {
  complete : int;  (** executions in which every fiber finished *)
  truncated : int;  (** executions cut off by the step bound *)
  prefixes : int;  (** tree nodes expanded (schedule prefixes visited) *)
  executions : int;  (** workload executions actually run *)
  dedup_hits : int;  (** branches cut at an already-claimed state *)
  pruned : int;  (** branches cut by the sleep-set independence rule *)
  domains : int;  (** parallel workers used *)
  certify_checks : int;
      (** sleep-set commutation claims validated under
          [--certify-independence] (0 when certification is off) *)
  certify_violations : int;
      (** validated claims whose real footprints were {e not} disjoint
          triple-appends — each one is an unsound prune *)
  violations : violation list;
}

(** [exhaustive w] explores every schedule of [w] whose length is at most
    [max_steps] (default 64) with the parallel prefix-sharing engine.
    Oracles run on every maximal execution — complete or truncated
    (subject to each oracle's [on_truncated]).

    [preemption_bound], if given, only explores schedules with at most
    that many preemptions (a context switch away from a fiber that could
    still run); bound 0 explores exactly the non-preemptive schedules.
    [domains] (default [min 4 (recommended_domain_count - 1)], at least
    1) sets the number of parallel workers. [dedup] (default true) prunes
    prefixes reaching a state already claimed by an equivalent
    interleaving; [independence] (default true) additionally sleeps
    commuting sibling branches (Block-Update appends to disjoint
    components). Both pruning modes switch themselves off when the
    workload has a fault profile (reached states then depend on wake-up
    clocks the fingerprint cannot see), and [independence] also under a
    preemption bound.

    Counts and — absent an early stop — the violation set are
    deterministic functions of the workload and the pruning flags,
    regardless of [domains]: state claims are atomic and equal state
    keys have equal futures, so the merged report does not depend on
    which racing task wins a claim. Stops early (atomically, across all
    domains) after [max_violations] (default 1) raw violations; the raw
    set is then merged deterministically (shortest script first),
    shrunk, and deduplicated.

    [certify] (default false) turns PR 4's commutativity assumption into
    a runtime-checked invariant: every sleep-set prune's operation pair
    is claimed to the workload, which validates — once both operations
    actually execute — that their real shared-memory footprints are
    disjoint-component triple-appends. Checks and violations are counted
    in the [explore.certify.*] metrics and reported as per-run deltas in
    [certify_checks]/[certify_violations]; a non-zero violation count
    means some explored-elsewhere ordering was pruned unsoundly. Only
    meaningful while sleep sets are active, so it switches itself off
    whenever [independence] does. *)
val exhaustive :
  ?max_steps:int ->
  ?preemption_bound:int ->
  ?max_violations:int ->
  ?domains:int ->
  ?dedup:bool ->
  ?independence:bool ->
  ?certify:bool ->
  workload ->
  exhaustive_report

(** The pre-parallel engine, kept as the measurement baseline for
    [bench --explore-only]: a single-domain DFS that re-executes every
    schedule prefix from scratch (O(L²) executions per leaf) and
    re-executes each leaf once more to judge it. Same report shape, with
    [dedup_hits]/[pruned] 0 and [domains] 1. *)
val exhaustive_naive :
  ?max_steps:int ->
  ?preemption_bound:int ->
  ?max_violations:int ->
  workload ->
  exhaustive_report

type sweep_report = {
  executions : int;  (** schedules actually executed *)
  domains : int;  (** parallel workers used *)
  violations : violation list;
}

(** [sweep ~budget ~seed w] runs [budget] seeded randomized schedules
    split across [domains] parallel [Domain]s (default:
    [min 4 (recommended_domain_count - 1)], at least 1, and never more
    than [budget] — tiny budgets do not spawn idle domains). Schedule
    families are drawn deterministically from the per-execution seed:
    uniform random, random-with-crashes, x-obstruction suffixes
    ([Schedule.among]) and random scripts. Executions are capped at
    [max_steps] (default 200) operations. Violations are shrunk and
    deduplicated in the calling domain; workers stop early once
    [max_violations] (default 1) have been found. *)
val sweep :
  ?domains:int ->
  ?max_steps:int ->
  ?max_violations:int ->
  budget:int ->
  seed:int ->
  workload ->
  sweep_report

(** Re-run one schedule script deterministically, with oracles on. *)
val replay : workload -> max_steps:int -> script:int list -> outcome

(** Greedy shrinking: repeatedly delete single steps, then merge separated
    same-pid blocks (removing preemptions), as long as the script keeps
    failing. Returns the input unchanged if it does not fail. *)
val shrink : workload -> max_steps:int -> script:int list -> int list

(** {2 Oracles} *)

module Oracle : sig
  type 'exec t = {
    name : string;
    on_truncated : bool;
        (** also judge executions in which some fiber never finished *)
    check : 'exec -> string list;  (** [[]] = pass *)
  }
end

(** Seeded-bug names, as persisted in artifacts: ["skip-yield-check"],
    ["yield-on-higher"] and ["spin-on-yield"]. *)
val fault_to_string : Rsim_augmented.Aug.fault -> string

val fault_of_string : string -> Rsim_augmented.Aug.fault option

(** {2 Augmented-snapshot workloads} *)

module Aug_target : sig
  type exec = {
    aug : Rsim_augmented.Aug.t;
    result : Rsim_augmented.Aug.F.result;
    complete : bool;  (** no fiber was still pending *)
  }

  (** No fiber raised. *)
  val no_failure : exec Oracle.t

  (** The full §3 executable specification, {!Rsim_augmented.Aug_spec.check}. *)
  val spec : exec Oracle.t

  (** Theorem 20's headline consequence: process 0 never yields. *)
  val theorem20 : exec Oracle.t

  (** Wing-Gong linearizability ({!Rsim_shmem.Linearize.check}) of the
      M-operation history against a sequential [m]-component snapshot:
      atomic Block-Updates as one multi-component update, yielding ones
      as independent single-component updates, Updates of incomplete
      Block-Updates as pending operations (they may take effect or be
      dropped). Skipped for histories longer than 16 operations (the
      search is exponential). *)
  val linearizable : exec Oracle.t

  (** The non-blocking detector: fails a truncated execution whose final
      [window] (default 48) base-object operations contain no
      M-operation completion while some process is still pending. This is
      the only oracle that catches {e blocking} bugs — a process spinning
      instead of yielding violates no safety property. *)
  val progress : ?window:int -> unit -> exec Oracle.t

  (** When the execution contains injected crashes
      ({!Rsim_faults.Faults}), re-checks the §3 spec and Wing-Gong
      linearizability of the surviving history, with the crashed
      processes' incomplete Block-Updates as pending operations. Passes
      vacuously on crash-free executions. *)
  val crash_robust : exec Oracle.t

  (** The happens-before race oracle (DESIGN §10): replays the trace
      through {!Rsim_runtime.Hb.Tracker} vector clocks — H is
      single-writer, so an append publishes the issuer's clock, an
      H.scan joins every published clock, fault-plane events are
      incarnation boundaries — and flags every Block-Update that
      returned [Atomic] without having observed, at its Line-2 scan,
      some M-conflicting triple-append by a lower-identifier process
      linearized before the block's own Line-4 X append — the single
      point the block linearizes at (Lemma 11); appends after that
      point serialize after the block and are harmless. Clean on the
      unfaulted object (the Line-9 yield rule forbids exactly this);
      catches [Skip_yield_check] and [Yield_on_higher]. *)
  val race : exec Oracle.t

  (** [[no_failure; spec; theorem20; progress ()]]. *)
  val default_oracles : exec Oracle.t list

  (** Build a workload over a fresh augmented snapshot per execution.
      [bodies aug] must build fresh fiber bodies (one per pid, [f] of
      them) on every call. [faults] is a fault-plane profile compiled
      afresh (fire-once state and all) on every execution, so replays are
      deterministic. Executions maintain rolling state digests, so the
      exploration engine's probe always gets a fingerprint and the
      disjoint-component Block-Update independence relation.

      [unsound_indep] (default false, tests only) replaces the
      independence relation with the deliberately wrong "any two
      distinct pids commute" — the engine then prunes unsoundly and
      [certify] must catch it. *)
  val workload :
    ?oracles:exec Oracle.t list ->
    ?inject:Rsim_augmented.Aug.fault ->
    ?faults:Rsim_faults.Faults.spec list ->
    ?unsound_indep:bool ->
    name:string ->
    f:int ->
    m:int ->
    bodies:(Rsim_augmented.Aug.t -> (int -> unit) list) ->
    unit ->
    workload

  (** Named workloads, usable from the CLI and rebuildable from
      artifacts: ["bu-conflict"] (every process Block-Updates component
      0), ["bu-scan"] (process 0 Block-Updates, the rest Scan),
      ["bu-then-scan"] (every process Block-Updates then Scans), and
      ["mixed"] (a deterministic pseudo-random mix keyed on [f], [m]).
      Returns [None] for an unknown name. *)
  val builtin :
    ?inject:Rsim_augmented.Aug.fault ->
    ?faults:Rsim_faults.Faults.spec list ->
    ?oracles:exec Oracle.t list ->
    ?unsound_indep:bool ->
    name:string ->
    f:int ->
    m:int ->
    unit ->
    workload option

  val builtin_names : string list
end

(** {2 Full-simulation workloads} *)

module Harness_target : sig
  type exec = {
    hspec : Rsim_simulation.Harness.spec;
    result : Rsim_simulation.Harness.result;
    complete : bool;
  }

  val no_failure : exec Oracle.t

  (** {!Rsim_augmented.Aug_spec.check} on the run's augmented snapshot. *)
  val aug_spec : exec Oracle.t

  (** The Lemma 26 replay, {!Rsim_simulation.Analysis.check}
      (complete runs only). *)
  val analysis : exec Oracle.t

  (** Simulators' outputs solve consensus (complete runs only). *)
  val consensus : exec Oracle.t

  (** Crash-fault validation
      ({!Rsim_simulation.Harness.validate}[ ~survivors_only:true]):
      crashed and quarantined simulators are excused, the survivors'
      outputs must still solve consensus (complete runs only). *)
  val consensus_survivors : exec Oracle.t

  (** The harness-level non-blocking detector — same contract as
      {!Aug_target.progress}, over the simulation's augmented snapshot. *)
  val progress : ?window:int -> unit -> exec Oracle.t

  (** [[no_failure; aug_spec; analysis; consensus]]. *)
  val default_oracles : exec Oracle.t list

  (** [[no_failure; aug_spec; progress (); consensus_survivors]] — the
      default when a fault profile is in force (crashed simulators leave
      partial journals, so strict validation and the Lemma 26 replay do
      not apply). *)
  val fault_oracles : exec Oracle.t list

  (** The racing-consensus simulation of Theorem 21, explorable: [f]
      simulators ([d] of them direct) over an [m]-component augmented
      snapshot, simulating [n] processes. Workload name ["racing"].
      [faults]/[watchdog] are passed to every
      {!Rsim_simulation.Harness.run}; with a non-empty [faults] the
      default oracles switch to {!fault_oracles}. Probed executions get
      no state fingerprint (simulator local state is too rich to digest
      soundly), so the engine shares prefixes but never prunes. *)
  val racing :
    ?oracles:exec Oracle.t list ->
    ?faults:Rsim_faults.Faults.spec list ->
    ?watchdog:int ->
    n:int ->
    m:int ->
    f:int ->
    d:int ->
    unit ->
    workload
end

(**/**)

(** Exposed for the crash-fault tests: the Wing-Gong history of
    M-operations of an execution, including pending entries for
    incomplete Block-Updates. *)
val mop_history :
  Rsim_augmented.Aug.t ->
  Rsim_augmented.Aug.F.trace_entry list ->
  (Value.t array, [ `U of (int * Value.t) list | `S ]) Linearize.spec
  * [ `U of (int * Value.t) list | `S ] Linearize.entry list
