(* Schema history:
   v1 — workload/params/inject/max_steps/errors/original/script;
   v2 — adds "faults" (a fault-plane profile in the
        {!Rsim_faults.Faults.of_string} grammar, or null).
   Readers accept any version up to [current_version]; a missing
   "version" means v1 (the first writer already stamped one, but the
   first reader ignored it). *)
let current_version = 2

type t = {
  version : int;
  workload : string;
  params : (string * int) list;
  inject : string option;
  faults : string option;
  max_steps : int;
  errors : string list;
  original : int list;
  script : int list;
}

let of_violation ~(workload : Explore.workload) ~max_steps
    (v : Explore.violation) =
  {
    version = current_version;
    workload = workload.Explore.name;
    params = workload.Explore.params;
    inject = workload.Explore.inject;
    faults = workload.Explore.faults;
    max_steps;
    errors = v.Explore.errors;
    original = v.Explore.original;
    script = v.Explore.script;
  }

let to_workload t =
  let p k = List.assoc_opt k t.params in
  let faults =
    match t.faults with
    | None -> Ok []
    | Some s -> Rsim_faults.Faults.of_string s
  in
  match faults with
  | Error e -> Error ("artifact: bad fault profile: " ^ e)
  | Ok faults -> (
    match t.workload with
    | "racing" -> (
      if t.inject <> None then
        Error "racing workloads do not support seeded bugs"
      else
        match (p "n", p "m", p "f", p "d") with
        | Some n, Some m, Some f, Some d ->
          Ok (Explore.Harness_target.racing ~faults ~n ~m ~f ~d ())
        | _ -> Error "racing artifact is missing one of n/m/f/d")
    | name -> (
      match (p "f", p "m") with
      | Some f, Some m -> (
        let inject =
          match t.inject with
          | None -> Ok None
          | Some s -> (
            match Explore.fault_of_string s with
            | Some fault -> Ok (Some fault)
            | None -> Error ("unknown injected fault: " ^ s))
        in
        match inject with
        | Error e -> Error e
        | Ok inject -> (
          match Explore.Aug_target.builtin ?inject ~faults ~name ~f ~m () with
          | Some w -> Ok w
          | None -> Error ("unknown workload: " ^ name)))
      | _ -> Error "artifact is missing f/m parameters"))

(* ---------------------------------------------------------------- *)
(* Writing                                                           *)
(* ---------------------------------------------------------------- *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ints l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"

let strs l =
  "[" ^ String.concat ", " (List.map (fun s -> "\"" ^ esc s ^ "\"") l) ^ "]"

let opt_str = function None -> "null" | Some s -> "\"" ^ esc s ^ "\""

let to_json t =
  Printf.sprintf
    "{\n\
    \  \"version\": %d,\n\
    \  \"workload\": \"%s\",\n\
    \  \"params\": {%s},\n\
    \  \"inject\": %s,\n\
    \  \"faults\": %s,\n\
    \  \"max_steps\": %d,\n\
    \  \"errors\": %s,\n\
    \  \"original\": %s,\n\
    \  \"script\": %s\n\
     }\n"
    t.version (esc t.workload)
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %d" (esc k) v)
          t.params))
    (opt_str t.inject) (opt_str t.faults) t.max_steps (strs t.errors)
    (ints t.original) (ints t.script)

(* ---------------------------------------------------------------- *)
(* Reading (minimal JSON subset)                                     *)
(* ---------------------------------------------------------------- *)

type json =
  | Null
  | Jint of int
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some c -> Buffer.add_char b c);
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected an integer";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some k -> k
    | None -> fail "invalid integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (elems [])
      end
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else fail "expected null"
    | Some ('-' | '0' .. '9') -> Jint (parse_int ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let ( let* ) = Result.bind

let of_json str =
  match parse str with
  | exception Parse msg -> Error ("invalid artifact: " ^ msg)
  | Jobj fields ->
    let find k = List.assoc_opt k fields in
    let str_field k =
      match find k with
      | Some (Jstr s) -> Ok s
      | _ -> Error ("artifact: missing string field " ^ k)
    in
    let int_field k =
      match find k with
      | Some (Jint i) -> Ok i
      | _ -> Error ("artifact: missing integer field " ^ k)
    in
    let int_list k =
      match find k with
      | Some (Jarr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | Jint i -> Ok (i :: acc)
            | _ -> Error ("artifact: non-integer in " ^ k))
          (Ok []) xs
        |> Result.map List.rev
      | _ -> Error ("artifact: missing integer list " ^ k)
    in
    let str_list k =
      match find k with
      | Some (Jarr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | Jstr s -> Ok (s :: acc)
            | _ -> Error ("artifact: non-string in " ^ k))
          (Ok []) xs
        |> Result.map List.rev
      | _ -> Error ("artifact: missing string list " ^ k)
    in
    let* version =
      match find "version" with
      | None -> Ok 1 (* pre-versioned artifacts *)
      | Some (Jint v) when v >= 1 && v <= current_version -> Ok v
      | Some (Jint v) ->
        Error
          (Printf.sprintf
             "artifact: unsupported artifact version %d (this build reads up \
              to %d)"
             v current_version)
      | Some _ -> Error "artifact: version must be an integer"
    in
    let* workload = str_field "workload" in
    let* params =
      match find "params" with
      | Some (Jobj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Jint i -> Ok ((k, i) :: acc)
            | _ -> Error "artifact: non-integer parameter")
          (Ok []) kvs
        |> Result.map List.rev
      | _ -> Error "artifact: missing params object"
    in
    let opt_str_field k =
      match find k with
      | Some Null | None -> Ok None
      | Some (Jstr s) -> Ok (Some s)
      | Some _ -> Error ("artifact: " ^ k ^ " must be a string or null")
    in
    let* inject = opt_str_field "inject" in
    let* faults = opt_str_field "faults" in
    let* max_steps = int_field "max_steps" in
    let* errors = str_list "errors" in
    let* original = int_list "original" in
    let* script = int_list "script" in
    Ok
      {
        version;
        workload;
        params;
        inject;
        faults;
        max_steps;
        errors;
        original;
        script;
      }
  | _ -> Error "invalid artifact: expected a JSON object"

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    of_json contents
