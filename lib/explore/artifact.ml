(* Schema history:
   v1 — workload/params/inject/max_steps/errors/original/script;
   v2 — adds "faults" (a fault-plane profile in the
        {!Rsim_faults.Faults.of_string} grammar, or null).
   Readers accept any version up to [current_version]; a missing
   "version" means v1 (the first writer already stamped one, but the
   first reader ignored it). *)
let current_version = 2

type t = {
  version : int;
  workload : string;
  params : (string * int) list;
  inject : string option;
  faults : string option;
  max_steps : int;
  errors : string list;
  original : int list;
  script : int list;
}

let of_violation ~(workload : Explore.workload) ~max_steps
    (v : Explore.violation) =
  {
    version = current_version;
    workload = workload.Explore.name;
    params = workload.Explore.params;
    inject = workload.Explore.inject;
    faults = workload.Explore.faults;
    max_steps;
    errors = v.Explore.errors;
    original = v.Explore.original;
    script = v.Explore.script;
  }

let to_workload t =
  let p k = List.assoc_opt k t.params in
  let faults =
    match t.faults with
    | None -> Ok []
    | Some s -> Rsim_faults.Faults.of_string s
  in
  match faults with
  | Error e -> Error ("artifact: bad fault profile: " ^ e)
  | Ok faults -> (
    match t.workload with
    | "racing" -> (
      if t.inject <> None then
        Error "racing workloads do not support seeded bugs"
      else
        match (p "n", p "m", p "f", p "d") with
        | Some n, Some m, Some f, Some d ->
          Ok (Explore.Harness_target.racing ~faults ~n ~m ~f ~d ())
        | _ -> Error "racing artifact is missing one of n/m/f/d")
    | name -> (
      match (p "f", p "m") with
      | Some f, Some m -> (
        let inject =
          match t.inject with
          | None -> Ok None
          | Some s -> (
            match Explore.fault_of_string s with
            | Some fault -> Ok (Some fault)
            | None -> Error ("unknown injected fault: " ^ s))
        in
        match inject with
        | Error e -> Error e
        | Ok inject -> (
          match Explore.Aug_target.builtin ?inject ~faults ~name ~f ~m () with
          | Some w -> Ok w
          | None -> Error ("unknown workload: " ^ name)))
      | _ -> Error "artifact is missing f/m parameters"))

(* ---------------------------------------------------------------- *)
(* Serialization (via the observability plane's JSON)                *)
(* ---------------------------------------------------------------- *)

module J = Rsim_obs.Obs.Json

let opt_str = function None -> J.Null | Some s -> J.Str s

let to_json t =
  J.to_string_pretty
    (J.Obj
       [
         ("version", J.Int t.version);
         ("workload", J.Str t.workload);
         ("params", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) t.params));
         ("inject", opt_str t.inject);
         ("faults", opt_str t.faults);
         ("max_steps", J.Int t.max_steps);
         ("errors", J.Arr (List.map (fun e -> J.Str e) t.errors));
         ("original", J.Arr (List.map (fun i -> J.Int i) t.original));
         ("script", J.Arr (List.map (fun i -> J.Int i) t.script));
       ])
  ^ "\n"

let ( let* ) = Result.bind

let of_json str =
  match J.parse str with
  | Error msg -> Error ("invalid artifact: " ^ msg)
  | Ok (J.Obj fields) ->
    let find k = List.assoc_opt k fields in
    let str_field k =
      match find k with
      | Some (J.Str s) -> Ok s
      | _ -> Error ("artifact: missing string field " ^ k)
    in
    let int_field k =
      match find k with
      | Some (J.Int i) -> Ok i
      | _ -> Error ("artifact: missing integer field " ^ k)
    in
    let int_list k =
      match find k with
      | Some (J.Arr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | J.Int i -> Ok (i :: acc)
            | _ -> Error ("artifact: non-integer in " ^ k))
          (Ok []) xs
        |> Result.map List.rev
      | _ -> Error ("artifact: missing integer list " ^ k)
    in
    let str_list k =
      match find k with
      | Some (J.Arr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | J.Str s -> Ok (s :: acc)
            | _ -> Error ("artifact: non-string in " ^ k))
          (Ok []) xs
        |> Result.map List.rev
      | _ -> Error ("artifact: missing string list " ^ k)
    in
    let* version =
      match find "version" with
      | None -> Ok 1 (* pre-versioned artifacts *)
      | Some (J.Int v) when v >= 1 && v <= current_version -> Ok v
      | Some (J.Int v) ->
        Error
          (Printf.sprintf
             "artifact: unsupported artifact version %d (this build reads up \
              to %d)"
             v current_version)
      | Some _ -> Error "artifact: version must be an integer"
    in
    let* workload = str_field "workload" in
    let* params =
      match find "params" with
      | Some (J.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | J.Int i -> Ok ((k, i) :: acc)
            | _ -> Error "artifact: non-integer parameter")
          (Ok []) kvs
        |> Result.map List.rev
      | _ -> Error "artifact: missing params object"
    in
    let opt_str_field k =
      match find k with
      | Some J.Null | None -> Ok None
      | Some (J.Str s) -> Ok (Some s)
      | Some _ -> Error ("artifact: " ^ k ^ " must be a string or null")
    in
    let* inject = opt_str_field "inject" in
    let* faults = opt_str_field "faults" in
    let* max_steps = int_field "max_steps" in
    let* errors = str_list "errors" in
    let* original = int_list "original" in
    let* script = int_list "script" in
    Ok
      {
        version;
        workload;
        params;
        inject;
        faults;
        max_steps;
        errors;
        original;
        script;
      }
  | Ok _ -> Error "invalid artifact: expected a JSON object"

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))

(* Robust against every filesystem-shaped failure — [rsim replay] and
   [rsim stats] turn any [Error] into exit code 2, so a directory, a
   permission-denied file, or a file truncated mid-read must all land
   here rather than escape as an exception. *)
let load ~path =
  match
    if Sys.is_directory path then Error (path ^ ": is a directory")
    else begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    end
  with
  | Ok contents -> of_json contents
  | Error e -> Error e
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated read")
