open Rsim_value

type action =
  | Crash
  | Restart of { delay : int }
  | Stall of { steps : int }
  | Drop
  | Corrupt of { seed : int }
  | Raise_exn

type spec = { pid : int; at_op : int; action : action }

exception Injected of int * int

let () =
  Printexc.register_printer (function
    | Injected (pid, at_op) ->
      Some (Printf.sprintf "Faults.Injected(pid %d, op %d)" pid at_op)
    | _ -> None)

let is_injected = function Injected _ -> true | _ -> false

(* ---------------------------------------------------------------- *)
(* Spec grammar                                                      *)
(* ---------------------------------------------------------------- *)

let spec_to_string { pid; at_op; action } =
  match action with
  | Crash -> Printf.sprintf "crash@%d:%d" pid at_op
  | Restart { delay } -> Printf.sprintf "restart@%d:%d+%d" pid at_op delay
  | Stall { steps } -> Printf.sprintf "stall@%d:%d*%d" pid at_op steps
  | Drop -> Printf.sprintf "drop@%d:%d" pid at_op
  | Corrupt { seed } -> Printf.sprintf "corrupt@%d:%d#%d" pid at_op seed
  | Raise_exn -> Printf.sprintf "raise@%d:%d" pid at_op

let to_string = function
  | [] -> "none"
  | specs -> String.concat "," (List.map spec_to_string specs)

let ( let* ) = Result.bind

let int_of s =
  match int_of_string_opt s with
  | Some k when k >= 0 -> Ok k
  | Some _ | None -> Error (Printf.sprintf "expected a non-negative integer, got %S" s)

(* kind@PID:AT[+DELAY|*STEPS|#SEED] *)
let spec_of_string s =
  let fail () = Error (Printf.sprintf "bad fault spec %S" s) in
  match String.index_opt s '@' with
  | None -> fail ()
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest ':' with
    | None -> fail ()
    | Some j ->
      let* pid = int_of (String.sub rest 0 j) in
      let loc = String.sub rest (j + 1) (String.length rest - j - 1) in
      let split c =
        match String.index_opt loc c with
        | None -> Error (Printf.sprintf "fault spec %S is missing '%c'" s c)
        | Some k ->
          let* a = int_of (String.sub loc 0 k) in
          let* b = int_of (String.sub loc (k + 1) (String.length loc - k - 1)) in
          Ok (a, b)
      in
      (match kind with
      | "crash" ->
        let* at_op = int_of loc in
        Ok { pid; at_op; action = Crash }
      | "restart" ->
        let* at_op, delay = split '+' in
        Ok { pid; at_op; action = Restart { delay } }
      | "stall" ->
        let* at_op, steps = split '*' in
        Ok { pid; at_op; action = Stall { steps } }
      | "drop" ->
        let* at_op = int_of loc in
        Ok { pid; at_op; action = Drop }
      | "corrupt" ->
        let* at_op, seed = split '#' in
        Ok { pid; at_op; action = Corrupt { seed } }
      | "raise" ->
        let* at_op = int_of loc in
        Ok { pid; at_op; action = Raise_exn }
      | _ -> Error (Printf.sprintf "unknown fault kind %S in %S" kind s)))

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left
         (fun acc part ->
           let* acc = acc in
           let* spec = spec_of_string part in
           Ok (spec :: acc))
         (Ok [])
    |> Result.map List.rev

(* ---------------------------------------------------------------- *)
(* Named seeded profiles                                             *)
(* ---------------------------------------------------------------- *)

let names = [ "crashy"; "stally"; "restarting"; "chaos" ]

(* Each family is deterministic in (n_procs, seed). They only use the
   benign fault kinds (crash / restart / stall) — the ones the
   non-blocking guarantees must survive — never drops or corruption. *)
let gen_family ~kinds ~n_procs ~seed =
  let g = ref (Prng.make (0x5fa17 + seed)) in
  let draw n =
    let k, g' = Prng.int !g n in
    g := g';
    k
  in
  List.filter_map
    (fun pid ->
      if draw 3 = 0 then None (* this process runs fault-free *)
      else
        let at_op = draw 8 in
        let action =
          match List.nth kinds (draw (List.length kinds)) with
          | `Crash -> Crash
          | `Restart -> Restart { delay = 1 + draw 6 }
          | `Stall -> Stall { steps = 1 + draw 6 }
        in
        Some { pid; at_op; action })
    (List.init n_procs Fun.id)

let named name ~n_procs ~seed =
  match name with
  | "crashy" -> Some (gen_family ~kinds:[ `Crash ] ~n_procs ~seed)
  | "stally" -> Some (gen_family ~kinds:[ `Stall ] ~n_procs ~seed)
  | "restarting" -> Some (gen_family ~kinds:[ `Restart ] ~n_procs ~seed)
  | "chaos" -> Some (gen_family ~kinds:[ `Crash; `Restart; `Stall ] ~n_procs ~seed)
  | _ -> None

let resolve ~n_procs ~seed s =
  match named (String.trim s) ~n_procs ~seed with
  | Some specs -> Ok specs
  | None -> (
    match of_string s with
    | Ok specs -> Ok specs
    | Error e ->
      Error
        (Printf.sprintf "%s (or use a named profile: %s)" e
           (String.concat ", " names)))

(* ---------------------------------------------------------------- *)
(* Compiling a profile into a fiber control hook                     *)
(* ---------------------------------------------------------------- *)

type 'op adapter = {
  drop : 'op -> 'op option;
  corrupt : Prng.t -> 'op -> 'op option;
}

let null_adapter = { drop = (fun _ -> None); corrupt = (fun _ _ -> None) }

type 'op plan = {
  adapter : 'op adapter;
  slots : (spec * bool ref) list;  (** each spec fires at most once *)
}

let plan ~adapter specs =
  { adapter; slots = List.map (fun s -> (s, ref false)) specs }

let fired t =
  List.filter_map (fun (s, f) -> if !f then Some s else None) t.slots

let control t ~pid ~nth op : _ Rsim_runtime.Fiber.directive =
  match
    List.find_opt
      (fun ((s : spec), f) -> (not !f) && s.pid = pid && s.at_op = nth)
      t.slots
  with
  | None -> Rsim_runtime.Fiber.Proceed
  | Some (spec, f) -> (
    f := true;
    match spec.action with
    | Crash -> Rsim_runtime.Fiber.Crash
    | Restart { delay } -> Rsim_runtime.Fiber.Crash_restart { delay }
    | Stall { steps } -> Rsim_runtime.Fiber.Stall { steps }
    | Raise_exn -> Rsim_runtime.Fiber.Raise (Injected (spec.pid, spec.at_op))
    | Drop -> (
      match t.adapter.drop op with
      | Some op' -> Rsim_runtime.Fiber.Replace op'
      | None -> Rsim_runtime.Fiber.Proceed)
    | Corrupt { seed } -> (
      match t.adapter.corrupt (Prng.make seed) op with
      | Some op' -> Rsim_runtime.Fiber.Replace op'
      | None -> Rsim_runtime.Fiber.Proceed))
