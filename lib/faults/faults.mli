(** The fault plane: declarative, seed-deterministic fault injection at
    the fiber apply boundary.

    The augmented snapshot's headline guarantee (Theorem 20) is
    {e non-blocking under any schedule and any crash pattern}: some
    [Scan]/[Block-Update] always completes. Model checking that claim
    needs a real adversary, not just schedule truncation. A fault
    {!spec} names a victim process, the index of the victim operation
    (the process's [at_op]-th base-object operation, 0-based, cumulative
    across restarts) and an {!action}; a list of specs — a {e profile} —
    is compiled by {!plan}/{!control} into the [control] hook of
    {!Rsim_runtime.Fiber.Make.run}, so {e every} fiber workload
    (augmented snapshot, register snapshot, full simulations, explorer
    workloads) can be faulted through one mechanism, without per-module
    hooks.

    Crash, restart and stall are op-agnostic and handled entirely by the
    fiber runtime. Dropped and corrupted writes must know the workload's
    operation type, so a profile is compiled together with an {!adapter}
    that says how to drop or corrupt an operation (e.g.
    {!Rsim_augmented.Aug.fault_adapter}); faults that the adapter cannot
    express are skipped.

    Profiles round-trip through a compact string grammar
    ({!to_string}/{!of_string}), so artifacts can persist the exact fault
    environment of a counterexample:

    {v
    spec    ::= "crash@"P":"K        crash P at its K-th op
              | "restart@"P":"K"+"D  crash, restart after D decisions
              | "stall@"P":"K"*"S    hide P from the scheduler for S decisions
              | "drop@"P":"K         the write at op K is silently lost
              | "corrupt@"P":"K"#"R  the write's value is mutated (seed R)
              | "raise@"P":"K        P's body is unwound with Injected
    profile ::= "" | "none" | spec ("," spec)*
    v} *)

type action =
  | Crash
  | Restart of { delay : int }
  | Stall of { steps : int }
  | Drop
  | Corrupt of { seed : int }
  | Raise_exn

type spec = { pid : int; at_op : int; action : action }

(** The exception delivered by [raise@P:K] faults, carrying [(pid,
    at_op)]. Oracles that tolerate modeled faults should treat a fiber
    [Failed (Injected _)] as a crash, not a bug ({!is_injected}). *)
exception Injected of int * int

val is_injected : exn -> bool

(** {2 The profile grammar} *)

val spec_to_string : spec -> string
val to_string : spec list -> string

(** Parses the grammar above. [""] and ["none"] are the empty profile. *)
val of_string : string -> (spec list, string) result

(** {2 Named seeded families}

    Deterministic profiles drawn from [(n_procs, seed)], restricted to
    the benign kinds (crash / restart / stall) that the non-blocking
    guarantees must survive: ["crashy"], ["stally"], ["restarting"],
    ["chaos"]. *)

val names : string list

val named : string -> n_procs:int -> seed:int -> spec list option

(** [resolve ~n_procs ~seed s]: [s] is either a named family or a literal
    profile in the grammar. *)
val resolve : n_procs:int -> seed:int -> string -> (spec list, string) result

(** {2 Compilation to a fiber control hook} *)

(** How to express value-plane faults on a concrete operation type.
    [drop op] is the write-nothing form of [op] ([None] if [op] is not a
    write); [corrupt g op] mutates the written value(s) using PRNG [g]. *)
type 'op adapter = {
  drop : 'op -> 'op option;
  corrupt : Rsim_value.Prng.t -> 'op -> 'op option;
}

(** Never drops or corrupts anything (crash/restart/stall/raise still
    work — they are op-agnostic). *)
val null_adapter : 'op adapter

(** A compiled profile with its firing state. Mutable and single-run:
    build a fresh plan per execution (each spec fires at most once). *)
type 'op plan

val plan : adapter:'op adapter -> spec list -> 'op plan

(** The specs that actually fired so far, in profile order. *)
val fired : 'op plan -> spec list

(** The control hook to pass to {!Rsim_runtime.Fiber.Make.run}. *)
val control :
  'op plan -> pid:int -> nth:int -> 'op -> 'op Rsim_runtime.Fiber.directive
