(* The observability plane. Stdlib only: everything else in the
   repository links against this, so it must sit at the bottom of the
   dependency graph. *)

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Non-finite floats have no JSON representation; "%.12g" may print
     "1" for 1.0, which is still a valid JSON number. *)
  let float_repr f =
    if not (Float.is_finite f) then "null" else Printf.sprintf "%.12g" f

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          emit b x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b v)
        kvs;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    emit b t;
    Buffer.contents b

  let rec emit_pretty b indent = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as v -> emit b v
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
      let pad = String.make indent ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_string b "  ";
          emit_pretty b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      let pad = String.make indent ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_string b "  \"";
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit_pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'

  let to_string_pretty t =
    let b = Buffer.create 256 in
    emit_pretty b 0 t;
    Buffer.contents b

  exception Fail of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      (match peek () with
      | Some '"' -> advance ()
      | _ -> fail "expected '\"'");
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
            (* keep the code point as UTF-8 for the BMP subset we emit *)
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some cp when cp < 0x80 -> Buffer.add_char b (Char.chr cp)
            | Some cp when cp < 0x800 ->
              Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
            | Some cp ->
              Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))));
            pos := !pos + 4
          | Some c -> Buffer.add_char b c);
          advance ();
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elems (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            (match peek () with
            | Some ':' -> advance ()
            | _ -> fail "expected ':'");
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | _ -> fail "unexpected character"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input";
      v
    with
    | v -> Ok v
    | exception Fail msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None
end

(* ---------------------------------------------------------------- *)
(* Leveled logging                                                   *)
(* ---------------------------------------------------------------- *)

module Log = struct
  type level = Error | Warn | Info | Debug

  let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
  let current : level option ref = ref (Some Error)
  let set_level l = current := l
  let level () = !current

  let enabled l =
    match !current with
    | None -> false
    | Some threshold -> severity l <= severity threshold

  let init_from_env () =
    match Sys.getenv_opt "RSIM_LOG" with
    | Some "debug" -> current := Some Debug
    | Some "info" -> current := Some Info
    | Some ("warn" | "warning") -> current := Some Warn
    | Some "error" -> current := Some Error
    | Some "quiet" -> current := None
    | Some _ | None -> ()

  let () = init_from_env ()

  type 'a msgf = (('a, out_channel, unit) format -> 'a) -> unit

  let tag = function
    | Error -> "error"
    | Warn -> "warn"
    | Info -> "info"
    | Debug -> "debug"

  let log l (msgf : 'a msgf) =
    if enabled l then
      msgf (fun fmt ->
          Printf.eprintf ("rsim: [%s] " ^^ fmt ^^ "\n%!") (tag l))

  let err m = log Error m
  let warn m = log Warn m
  let info m = log Info m
  let debug m = log Debug m
end

(* ---------------------------------------------------------------- *)
(* Metrics                                                           *)
(* ---------------------------------------------------------------- *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = int Atomic.t

  type histogram = { counts : int Atomic.t array; sum : int Atomic.t }

  type metric = Mcounter of counter | Mgauge of gauge | Mhist of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
  let registry_lock = Mutex.create ()

  let with_lock f =
    Mutex.lock registry_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

  (* Buckets 0..30 hold values <= 2^i; bucket 31 is the overflow. *)
  let n_buckets = 32

  (* Top-level recursion (not a local [let rec] capturing [v]) so the
     call allocates no closure: [observe] must stay allocation-free. *)
  let rec bucket_search v i bound =
    if bound >= v then i
    else if i >= 30 then 31
    else bucket_search v (i + 1) (bound * 2)

  let bucket_index v = if v <= 1 then 0 else bucket_search v 0 1

  let bucket_upper_bound i =
    if i < 0 || i >= n_buckets then invalid_arg "Obs.Metrics.bucket_upper_bound"
    else if i = n_buckets - 1 then None
    else Some (1 lsl i)

  let counter name =
    with_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Mcounter c) -> c
        | Some (Mgauge _ | Mhist _) ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S is already registered as another kind" name)
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.replace registry name (Mcounter c);
          c)

  let incr c = Atomic.incr c
  let add c k = ignore (Atomic.fetch_and_add c k)
  let counter_value c = Atomic.get c

  let gauge name =
    with_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Mgauge g) -> g
        | Some (Mcounter _ | Mhist _) ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S is already registered as another kind" name)
        | None ->
          let g = Atomic.make 0 in
          Hashtbl.replace registry name (Mgauge g);
          g)

  let set g v = Atomic.set g v
  let gauge_value g = Atomic.get g

  let histogram name =
    with_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Mhist h) -> h
        | Some (Mcounter _ | Mgauge _) ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S is already registered as another kind" name)
        | None ->
          let h =
            {
              counts = Array.init n_buckets (fun _ -> Atomic.make 0);
              sum = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name (Mhist h);
          h)

  let observe h v =
    Atomic.incr h.counts.(bucket_index v);
    ignore (Atomic.fetch_and_add h.sum v)

  let histogram_count h =
    let total = ref 0 in
    Array.iter (fun c -> total := !total + Atomic.get c) h.counts;
    !total

  let histogram_sum h = Atomic.get h.sum
  let histogram_counts h = Array.map Atomic.get h.counts

  let reset () =
    with_lock (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | Mcounter c | Mgauge c -> Atomic.set c 0
            | Mhist h ->
              Array.iter (fun c -> Atomic.set c 0) h.counts;
              Atomic.set h.sum 0)
          registry)

  let sorted_metrics () =
    with_lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let hist_json h =
    let buckets = ref [] in
    let counts = histogram_counts h in
    Array.iteri
      (fun i c ->
        if c > 0 then
          let ub = match bucket_upper_bound i with Some b -> b | None -> -1 in
          buckets := Json.Arr [ Json.Int ub; Json.Int c ] :: !buckets)
      counts;
    Json.Obj
      [
        ("count", Json.Int (histogram_count h));
        ("sum", Json.Int (histogram_sum h));
        ("buckets", Json.Arr (List.rev !buckets));
      ]

  let to_json () =
    let counters = ref [] and gauges = ref [] and hists = ref [] in
    List.iter
      (fun (name, m) ->
        match m with
        | Mcounter c -> counters := (name, Json.Int (Atomic.get c)) :: !counters
        | Mgauge g -> gauges := (name, Json.Int (Atomic.get g)) :: !gauges
        | Mhist h -> hists := (name, hist_json h) :: !hists)
      (sorted_metrics ());
    Json.Obj
      [
        ("counters", Json.Obj (List.rev !counters));
        ("gauges", Json.Obj (List.rev !gauges));
        ("histograms", Json.Obj (List.rev !hists));
      ]

  let pp fmt () =
    let metrics = sorted_metrics () in
    let nonzero =
      List.filter
        (fun (_, m) ->
          match m with
          | Mcounter c | Mgauge c -> Atomic.get c <> 0
          | Mhist h -> histogram_count h > 0)
        metrics
    in
    if nonzero = [] then Format.fprintf fmt "(no metrics recorded)@."
    else
      List.iter
        (fun (name, m) ->
          match m with
          | Mcounter c ->
            Format.fprintf fmt "%-44s %10d@." name (Atomic.get c)
          | Mgauge g -> Format.fprintf fmt "%-44s %10d@." name (Atomic.get g)
          | Mhist h ->
            Format.fprintf fmt "%-44s count=%d sum=%d@." name
              (histogram_count h) (histogram_sum h);
            Array.iteri
              (fun i c ->
                if c > 0 then
                  match bucket_upper_bound i with
                  | Some ub -> Format.fprintf fmt "    <= %-10d %10d@." ub c
                  | None -> Format.fprintf fmt "    >  %-10d %10d@." (1 lsl 30) c)
              (histogram_counts h))
        nonzero
end

(* ---------------------------------------------------------------- *)
(* Tracing                                                           *)
(* ---------------------------------------------------------------- *)

module Trace = struct
  type ev = {
    name : string;
    ph : string;
    dom : int;  (* Chrome pid: the OCaml domain that recorded the event *)
    tid : int;  (* Chrome tid: the in-run process (fiber) id *)
    ts : int;
    dur : int;  (* < 0 means "no dur field" *)
    value : int option;  (* counter events *)
    args : (string * Json.t) list;
  }

  let on = Atomic.make false
  let sample_every = Atomic.make 1
  let tick = Atomic.make 0
  let buf : ev list ref = ref []
  let buf_lock = Mutex.create ()

  let enabled () = Atomic.get on

  let push e =
    Mutex.lock buf_lock;
    buf := e :: !buf;
    Mutex.unlock buf_lock

  let clear () =
    Mutex.lock buf_lock;
    buf := [];
    Mutex.unlock buf_lock

  let start ?(sample = 1) () =
    clear ();
    Atomic.set sample_every (max 1 sample);
    Atomic.set tick 0;
    Atomic.set on true

  let stop () = Atomic.set on false

  let length () =
    Mutex.lock buf_lock;
    let n = List.length !buf in
    Mutex.unlock buf_lock;
    n

  let dom_id () = (Domain.self () :> int)

  let instant ?(args = []) ~name ~pid ~ts () =
    if enabled () then
      push
        {
          name;
          ph = "i";
          dom = dom_id ();
          tid = pid;
          ts;
          dur = -1;
          value = None;
          args;
        }

  let complete ?(args = []) ~name ~pid ~ts ~dur () =
    if enabled () then
      push
        {
          name;
          ph = "X";
          dom = dom_id ();
          tid = pid;
          ts;
          dur = max 0 dur;
          value = None;
          args;
        }

  let sampled_complete ?(args = []) ~name ~pid ~ts ~dur () =
    if enabled () then begin
      let s = Atomic.get sample_every in
      if s <= 1 || Atomic.fetch_and_add tick 1 mod s = 0 then
        push
          {
            name;
            ph = "X";
            dom = dom_id ();
            tid = pid;
            ts;
            dur = max 0 dur;
            value = None;
            args;
          }
    end

  let counter ~name ~pid ~ts ~value =
    if enabled () then
      push
        {
          name;
          ph = "C";
          dom = dom_id ();
          tid = pid;
          ts;
          dur = -1;
          value = Some value;
          args = [];
        }

  let ev_json e =
    let base =
      [
        ("name", Json.Str e.name);
        ("ph", Json.Str e.ph);
        ("pid", Json.Int e.dom);
        ("tid", Json.Int e.tid);
        ("ts", Json.Int e.ts);
      ]
    in
    let base = if e.dur >= 0 then base @ [ ("dur", Json.Int e.dur) ] else base in
    let args =
      match e.value with
      | Some v -> [ ("value", Json.Int v) ]
      | None -> e.args
    in
    let base =
      if args = [] && e.ph <> "C" then base
      else base @ [ ("args", Json.Obj args) ]
    in
    Json.Obj base

  let events_in_order () =
    Mutex.lock buf_lock;
    let evs = List.rev !buf in
    Mutex.unlock buf_lock;
    evs

  let to_chrome () =
    Json.Obj
      [
        ( "traceEvents",
          Json.Arr (List.map ev_json (events_in_order ())) );
        ("displayTimeUnit", Json.Str "ms");
      ]

  let to_jsonl () =
    let b = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string b (Json.to_string (ev_json e));
        Buffer.add_char b '\n')
      (events_in_order ());
    Buffer.contents b

  let write ~path () =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        if Filename.check_suffix path ".jsonl" then
          output_string oc (to_jsonl ())
        else output_string oc (Json.to_string_pretty (to_chrome ()) ^ "\n"))
end
