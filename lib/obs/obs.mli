(** The observability plane: structured logging, a metrics registry, and
    a span/event tracer shared by the fiber runtime, the augmented
    snapshot, the revisionist-simulation harness, and the schedule
    explorer.

    Zero dependencies (stdlib only) so every library in the repository
    can sit on top of it. Designed around two constraints:

    - {b Off is (nearly) free.} Counter increments and histogram
      observations are single atomic read-modify-writes with no
      allocation, so they stay on permanently. Trace emission is guarded
      by {!Trace.enabled} (one atomic load when off) and optionally
      sampled when on.
    - {b Domain-safe.} The explorer sweeps run workloads from several
      [Domain]s concurrently; counters and histograms are [Atomic]-based
      and the trace buffer is mutex-protected, so telemetry from parallel
      runs aggregates correctly. *)

(** {1 JSON} *)

(** A small JSON value type with a printer and parser, used for metric
    dumps, trace files, artifacts, and the benchmark snapshot. Integers
    are kept distinct from floats so artifact scripts round-trip
    exactly. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** Compact single-line rendering. Non-finite floats are emitted as
      [null] (JSON has no representation for them). *)
  val to_string : t -> string

  (** Multi-line rendering with two-space indentation. *)
  val to_string_pretty : t -> string

  val parse : string -> (t, string) result

  (** [member k j] is the value of field [k] if [j] is an object that
      has it. *)
  val member : string -> t -> t option
end

(** {1 Leveled logging} *)

(** The single diagnostics facade for the whole repository: quiet by
    default, enabled with [RSIM_LOG=debug|info|warn|error|quiet] (or
    {!Log.set_level}), always writing to [stderr] so machine-readable
    stdout (metrics dumps, artifacts) stays clean. The [msgf] style
    ([Log.debug (fun k -> k "fmt" ...)]) means disabled levels never
    format their arguments. *)
module Log : sig
  type level = Error | Warn | Info | Debug

  (** [None] = quiet: nothing is printed, not even errors. *)
  val set_level : level option -> unit

  val level : unit -> level option
  val enabled : level -> bool

  (** Re-read [RSIM_LOG]. Called automatically at module
      initialization; call again if the environment changed. *)
  val init_from_env : unit -> unit

  type 'a msgf = (('a, out_channel, unit) format -> 'a) -> unit

  val err : 'a msgf -> unit
  val warn : 'a msgf -> unit
  val info : 'a msgf -> unit
  val debug : 'a msgf -> unit
end

(** {1 Metrics} *)

module Metrics : sig
  (** A monotonically increasing event count. *)
  type counter

  (** A last-value-wins integer measurement. *)
  type gauge

  (** A distribution over non-negative integers with fixed log-spaced
      (power-of-two) buckets. *)
  type histogram

  (** [counter name] registers (or retrieves — registration is
      idempotent by name) the counter [name]. Raises [Invalid_argument]
      if [name] is already registered as a different metric kind. *)
  val counter : string -> counter

  val incr : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> int -> unit
  val gauge_value : gauge -> int

  val histogram : string -> histogram

  (** [observe h v] records [v] in the bucket whose upper bound is the
      smallest power of two [>= v] (values [<= 1] land in bucket 0,
      values above [2^30] in the overflow bucket). No allocation. *)
  val observe : histogram -> int -> unit

  val histogram_count : histogram -> int
  val histogram_sum : histogram -> int

  (** Per-bucket counts, in bucket order; length {!n_buckets}. *)
  val histogram_counts : histogram -> int array

  (** 32: buckets with upper bounds [2^0 .. 2^30] plus one overflow
      bucket. *)
  val n_buckets : int

  (** [bucket_index v] is the bucket [observe] files [v] under. *)
  val bucket_index : int -> int

  (** [bucket_upper_bound i] is bucket [i]'s inclusive upper bound, or
      [None] for the overflow bucket. *)
  val bucket_upper_bound : int -> int option

  (** Zero every registered metric (the registry itself is kept). Used
      for per-run telemetry snapshots ([rsim stats]). *)
  val reset : unit -> unit

  (** All registered metrics:
      [{"counters": {name: int, ...},
        "gauges": {name: int, ...},
        "histograms": {name: {"count": int, "sum": int,
                              "buckets": [[upper_bound, count], ...]}}}]
      Histogram buckets list only non-empty buckets; the overflow
      bucket's upper bound is [-1]. Keys are sorted. *)
  val to_json : unit -> Json.t

  (** Human-readable dump of every non-zero metric. *)
  val pp : Format.formatter -> unit -> unit
end

(** {1 Tracing} *)

(** An in-memory event tracer in Chrome [trace_event] format (load the
    output in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    with a JSONL fallback. Timestamps are {e logical}: instrumentation
    passes the runtime's operation index as [ts], so traces are
    deterministic and replay-stable. The Chrome [tid] is the in-run
    process (fiber) id; the Chrome [pid] is the OCaml domain that
    recorded the event, which separates the explorer's parallel sweep
    lanes. *)
module Trace : sig
  (** One atomic load; the guard for every emission site. *)
  val enabled : unit -> bool

  (** [start ?sample ()] clears the buffer and begins collecting.
      [sample] (default 1 = keep everything) keeps one in every [sample]
      {e sampled} events — the per-operation firehose emitted through
      {!sampled_complete}; structural events ({!instant}, {!complete},
      {!counter}) are always kept while tracing is on. *)
  val start : ?sample:int -> unit -> unit

  val stop : unit -> unit
  val clear : unit -> unit

  (** Number of buffered events. *)
  val length : unit -> int

  (** A point event ([ph = "i"]). [pid] is the in-run process id. *)
  val instant :
    ?args:(string * Json.t) list -> name:string -> pid:int -> ts:int ->
    unit -> unit

  (** A span ([ph = "X"]) covering [ts .. ts + dur]. *)
  val complete :
    ?args:(string * Json.t) list -> name:string -> pid:int -> ts:int ->
    dur:int -> unit -> unit

  (** Like {!complete}, but subject to the sampling rate — for
      per-operation events on hot paths. *)
  val sampled_complete :
    ?args:(string * Json.t) list -> name:string -> pid:int -> ts:int ->
    dur:int -> unit -> unit

  (** A counter track ([ph = "C"]). *)
  val counter : name:string -> pid:int -> ts:int -> value:int -> unit

  (** The full buffer as a Chrome [trace_event] JSON object
      ([{"traceEvents": [...]}]), events in recording order. *)
  val to_chrome : unit -> Json.t

  (** The buffer as compact JSONL: one event object per line. *)
  val to_jsonl : unit -> string

  (** Write the buffer to [path]: JSONL if [path] ends in [.jsonl],
      Chrome JSON otherwise. *)
  val write : path:string -> unit -> unit
end
