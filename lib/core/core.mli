(** Revisionist Simulations — public umbrella API.

    One module per concept, re-exported from the substrate libraries.
    The layering mirrors the paper (and Figure 1):

    {ul
    {- {b Simulated system} (§2.1): {!Value}, {!Proc}, {!Snapshot},
       {!Objects}, {!Schedule}, {!Run}, {!Linearize}.}
    {- {b Real system}: {!Fiber} (single-step-scheduled cooperative
       fibers) and its happens-before machinery {!Hb}.}
    {- {b Augmented snapshot} (§3): {!Vts}, {!Hrep}, {!Aug}, and its
       executable specification {!Aug_spec}.}
    {- {b Tasks and protocols}: {!Task}, {!Racing}, {!Adopt2},
       {!Committee}, {!Approx_agreement}, {!Pathological}.}
    {- {b The revisionist simulation} (§4): {!Journal}, {!Complexity},
       {!Covering_sim}, {!Direct_sim}, {!Harness}, {!Analysis}.}
    {- {b Derandomization} (§5): {!Ndproto}, {!Solo_path},
       {!Derandomize}, {!Mrun}, {!Aba}, {!Nd_examples}.}
    {- {b Bounds}: {!Lower}, {!Upper}, {!Tables}.}} *)

val version : string

module Obs = Rsim_obs.Obs
module Value = Rsim_value.Value
module Prng = Rsim_value.Prng
module Proc = Rsim_shmem.Proc
module Snapshot = Rsim_shmem.Snapshot
module Objects = Rsim_shmem.Objects
module Schedule = Rsim_shmem.Schedule
module Run = Rsim_shmem.Run
module Linearize = Rsim_shmem.Linearize
module Fiber = Rsim_runtime.Fiber
module Hb = Rsim_runtime.Hb
module Faults = Rsim_faults.Faults
module Vts = Rsim_augmented.Vts
module Hrep = Rsim_augmented.Hrep
module Aug = Rsim_augmented.Aug
module Aug_spec = Rsim_augmented.Aug_spec
module Task = Rsim_tasks.Task
module Racing = Rsim_protocols.Racing
module Adopt2 = Rsim_protocols.Adopt2
module Committee = Rsim_protocols.Committee
module Approx_agreement = Rsim_protocols.Approx_agreement
module Pathological = Rsim_protocols.Pathological
module Safe_agreement = Rsim_protocols.Safe_agreement
module Journal = Rsim_simulation.Journal
module Complexity = Rsim_simulation.Complexity
module Covering_sim = Rsim_simulation.Covering_sim
module Direct_sim = Rsim_simulation.Direct_sim
module Harness = Rsim_simulation.Harness
module Analysis = Rsim_simulation.Analysis
module Covering_witness = Rsim_simulation.Covering_witness
module Trace_pp = Rsim_simulation.Trace_pp
module Ndproto = Rsim_solo.Ndproto
module Solo_path = Rsim_solo.Solo_path
module Derandomize = Rsim_solo.Derandomize
module Mrun = Rsim_solo.Mrun
module Aba = Rsim_solo.Aba
module Nd_examples = Rsim_solo.Nd_examples
module Explore = Rsim_explore.Explore
module Artifact = Rsim_explore.Artifact
module Regsnap = Rsim_regsnap.Regsnap
module Sperner = Rsim_topology.Sperner
module Lower = Rsim_bounds.Lower
module Upper = Rsim_bounds.Upper
module Tables = Rsim_bounds.Tables
