(** The m-component augmented snapshot object (§3, Algorithms 3 and 4).

    Shared by [f] real processes [q_0 .. q_{f-1}] (the paper's
    [q_1 .. q_f]; we 0-index, so [q_0] is the lowest identifier and its
    Block-Updates are always atomic). Implemented from a single-writer
    snapshot [H] ({!Hrep}) on top of the fiber runtime: every [H.scan] /
    [H.update] is a scheduling point.

    [Block-Update] is wait-free (exactly 6 steps when atomic, 5 when it
    yields — Lemma 2); [Scan] is non-blocking (at most [2k+3] steps,
    where [k] is the number of concurrent triple-appending updates).

    Line 9 of Algorithm 4 ("h' contains new Block-Update") is implemented
    as [∃ j < i, #h'_j > #h_j]: a Block-Update yields only when a
    {e lower}-identifier process appended triples during its interval.
    The paper's surrounding prose says "higher identifier", but Lemma 10,
    Lemma 13 and Theorem 20 — which the simulation relies on — are all
    stated and proved for lower identifiers; we follow the lemmas. *)

open Rsim_value

(** Operations on the underlying single-writer snapshot [H]. *)
module Ops : sig
  type op =
    | Hscan
    | Happend_triples of Hrep.triple list
        (** Line 4 of Algorithm 4: append one Block-Update's triples *)
    | Happend_lrecords of Hrep.lrecord list
        (** helping writes of Algorithms 3 / 4, batched in one update *)

  type res = Snap of Hrep.snap | Ack

  (** Whether this operation appends update triples (the "updates" that
      Observation 1, Lemma 2 and Theorem 20 talk about). *)
  val appends_triples : op -> bool
end

(** The fiber runtime instantiated at [H]'s operation type. Simulator
    code runs inside [F.run]. *)
module F : sig
  val op : Ops.op -> Ops.res

  type trace_entry = { idx : int; pid : int; op : Ops.op; res : Ops.res }

  type result = {
    statuses : Rsim_runtime.Fiber.status array;
    trace : trace_entry list;
    ops_per_fiber : int array;
    total_ops : int;
    events : Rsim_runtime.Fiber.event list;
  }

  val run :
    ?max_ops:int ->
    ?control:(pid:int -> nth:int -> Ops.op -> Ops.op Rsim_runtime.Fiber.directive) ->
    ?max_restarts:int ->
    ?obs_label:(Ops.op -> string) ->
    ?probe:
      (step:int ->
      live:int list ->
      pending:(int -> Ops.op option) ->
      [ `Continue | `Stop ]) ->
    sched:Rsim_shmem.Schedule.t ->
    apply:(pid:int -> Ops.op -> Ops.res) ->
    (int -> unit) list ->
    result
end

(** Trace label for an [H] operation (["H.scan"], ["H.append-triples"],
    ["H.append-lrecords"]) — pass as [F.run ~obs_label:op_name] for
    readable Chrome-trace lanes. *)
val op_name : Ops.op -> string

(** The {!Rsim_faults.Faults} adapter for [H] operations: dropped writes
    append nothing, corrupted writes garble the first written value.
    Scans are neither droppable nor corruptible. *)
val fault_adapter : Ops.op Rsim_faults.Faults.adapter

type bu_result =
  | Atomic of { view : Value.t array; last : Hrep.snap }
      (** the returned past view, and the scan result ℓ it came from *)
  | Yield

(** Completed M-operations, logged for the checkers ({!Aug_spec}) and for
    the simulation's execution analysis. *)
type mop =
  | Scan_op of {
      proc : int;
      start_idx : int;
      end_idx : int;  (** index of the final [H.scan] = linearization point *)
      n_ops : int;
      view : Value.t array;
      h : Hrep.snap;  (** the final scan's result *)
    }
  | Bu_op of {
      proc : int;
      ts : Vts.t;
      updates : (int * Value.t) list;
      start_idx : int;  (** Line-2 scan *)
      x_idx : int;  (** Line-4 update [X] *)
      end_idx : int;
      n_ops : int;
      h : Hrep.snap;  (** Line-2 scan result *)
      result : bu_result;
    }

val mop_proc : mop -> int

type t

(** Deliberately seeded bugs, for exercising the exploration engine
    ({!Rsim_explore}): each fault mutates the Line-9 yield test of
    Algorithm 4.

    - [Skip_yield_check]: never yield. Under contention the Block-Update
      returns a stale view, violating the window lemmas (17-19).
    - [Yield_on_higher]: test {e higher} instead of lower identifiers
      (the paper's prose bug, see the module comment). Process 0 can
      then yield, violating Theorem 20.
    - [Spin_on_yield]: instead of yielding, busy-wait re-scanning [H]
      forever — a deliberately {e blocking} mutation. No safety oracle
      flags it; only the explorer's progress oracle does. *)
type fault = Skip_yield_check | Yield_on_higher | Spin_on_yield

(** [create ~f ~m ()]: fresh object for [f] real processes and [m]
    components of M. [helping] (default true) enables the L-record
    helping mechanism of §3.2; disabling it is the E9 ablation — the
    object still runs, but Block-Updates return their own Line-2 scan
    result instead of the freshest helper-provided view, and the §3.3
    window properties (Lemmas 17-19) break under contention. [inject]
    (default none) seeds a deliberate bug. *)
val create : ?helping:bool -> ?inject:fault -> f:int -> m:int -> unit -> t

val f : t -> int
val m : t -> int

(** The [apply] function to pass to {!F.run}: executes one [H] operation
    atomically against this object's state. *)
val apply : t -> pid:int -> Ops.op -> Ops.res

(** Completed M-operations so far, in completion order. *)
val log : t -> mop list

(** Number of [H] operations executed so far. *)
val clock : t -> int

(** Current contents of [H] (a snapshot copy). *)
val h_state : t -> Hrep.snap

(** {2 Operations — callable only from inside a fiber run with
    [F.run ~apply:(apply t)]} *)

(** [Scan] (Algorithm 3). Non-blocking: loops until two consecutive
    [H.scan]s agree on update triples. *)
val scan : t -> me:int -> Value.t array

(** [Block-Update] (Algorithm 4) to the given distinct components.
    [`View v] means the Block-Update was atomic and [v] is a view of M
    from the returned earlier point; [`Yield] is the paper's [Y]. *)
val block_update :
  t -> me:int -> (int * Value.t) list -> [ `View of Value.t array | `Yield ]
