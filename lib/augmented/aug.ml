open Rsim_value

module Ops = struct
  type op =
    | Hscan
    | Happend_triples of Hrep.triple list
    | Happend_lrecords of Hrep.lrecord list

  type res = Snap of Hrep.snap | Ack

  let appends_triples = function
    | Happend_triples (_ :: _) -> true
    | Happend_triples [] | Hscan | Happend_lrecords _ -> false
end

module F = Rsim_runtime.Fiber.Make (Ops)
module Obs = Rsim_obs.Obs

let op_name : Ops.op -> string = function
  | Ops.Hscan -> "H.scan"
  | Ops.Happend_triples _ -> "H.append-triples"
  | Ops.Happend_lrecords _ -> "H.append-lrecords"

(* Always-on M-operation counters (atomic increments, no allocation on
   the fast path) and the trace spans behind {!Obs.Trace.enabled}. *)
let m_scans = Obs.Metrics.counter "aug.scan.total"
let m_scan_retries = Obs.Metrics.counter "aug.scan.retries"
let m_helping = Obs.Metrics.counter "aug.helping.writes"
let m_bu = Obs.Metrics.counter "aug.bu.total"
let m_bu_yield = Obs.Metrics.counter "aug.bu.yield"
let m_bu_atomic = Obs.Metrics.counter "aug.bu.atomic"
let h_scan_hops = Obs.Metrics.histogram "aug.scan.hops"
let h_bu_hops = Obs.Metrics.histogram "aug.bu.hops"

(* How the generic fault plane drops or corrupts H operations: a dropped
   write appends nothing (the writer still sees Ack and believes it
   succeeded); a corrupted write keeps its timestamp but garbles the
   first written value. Scans cannot be dropped or corrupted. *)
let fault_adapter : Ops.op Rsim_faults.Faults.adapter =
  {
    Rsim_faults.Faults.drop =
      (function
      | Ops.Happend_triples (_ :: _) -> Some (Ops.Happend_triples [])
      | Ops.Happend_lrecords (_ :: _) -> Some (Ops.Happend_lrecords [])
      | Ops.Hscan | Ops.Happend_triples [] | Ops.Happend_lrecords [] -> None);
    corrupt =
      (fun g op ->
        match op with
        | Ops.Happend_triples (tr :: rest) ->
          let k, _ = Rsim_value.Prng.int g 0x10000 in
          Some
            (Ops.Happend_triples
               ({ tr with Hrep.value = Value.Int (0x7bad0000 lor k) } :: rest))
        | Ops.Happend_triples [] | Ops.Happend_lrecords _ | Ops.Hscan -> None);
  }

type bu_result =
  | Atomic of { view : Value.t array; last : Hrep.snap }
  | Yield

type mop =
  | Scan_op of {
      proc : int;
      start_idx : int;
      end_idx : int;
      n_ops : int;
      view : Value.t array;
      h : Hrep.snap;
    }
  | Bu_op of {
      proc : int;
      ts : Vts.t;
      updates : (int * Value.t) list;
      start_idx : int;
      x_idx : int;
      end_idx : int;
      n_ops : int;
      h : Hrep.snap;
      result : bu_result;
    }

let mop_proc = function Scan_op { proc; _ } -> proc | Bu_op { proc; _ } -> proc

type fault = Skip_yield_check | Yield_on_higher | Spin_on_yield

type t = {
  f : int;
  m : int;
  helping : bool;
  inject : fault option;
  mutable h : Hrep.snap;
  mutable clock : int;
  mutable rev_log : mop list;
}

let create ?(helping = true) ?inject ~f ~m () =
  if f <= 0 || m <= 0 then invalid_arg "Aug.create: f and m must be positive";
  { f; m; helping; inject; h = Hrep.create ~f; clock = 0; rev_log = [] }

let f t = t.f
let m t = t.m
let log t = List.rev t.rev_log
let clock t = t.clock
let h_state t = Array.copy t.h

let apply t ~pid (op : Ops.op) : Ops.res =
  let res : Ops.res =
    match op with
    | Ops.Hscan -> Ops.Snap (Array.copy t.h)
    | Ops.Happend_triples triples ->
      let h' = Array.copy t.h in
      h'.(pid) <- Hrep.append_triples h'.(pid) triples;
      t.h <- h';
      Ops.Ack
    | Ops.Happend_lrecords recs ->
      let h' = Array.copy t.h in
      h'.(pid) <- Hrep.append_lrecords h'.(pid) recs;
      t.h <- h';
      Ops.Ack
  in
  t.clock <- t.clock + 1;
  res

(* Perform one H operation from inside a fiber and report its global
   index. The fiber is resumed synchronously after [apply], so
   [t.clock - 1] is exactly this operation's index. *)
let do_op t op =
  let res = F.op op in
  (res, t.clock - 1)

let hscan t =
  match do_op t Ops.Hscan with
  | Ops.Snap s, idx -> (s, idx)
  | (Ops.Ack, _) -> assert false

let others t ~me =
  List.filter (fun j -> j <> me) (List.init t.f Fun.id)

(* Algorithm 3. *)
let scan t ~me =
  if me < 0 || me >= t.f then invalid_arg "Aug.scan: bad process id";
  let h0, first_idx = hscan t in
  let n_ops = ref 1 in
  let rec loop h =
    (* Help everyone: L_{me,j}[#h_j] := h for all j ≠ me, in one update.
       (Skipped by the E9 ablation.) *)
    if t.helping then begin
      let cnt = Hrep.counts h in
      let recs =
        List.map
          (fun j -> { Hrep.dest = j; index = cnt.(j); payload = h })
          (others t ~me)
      in
      let _ = do_op t (Ops.Happend_lrecords recs) in
      if recs <> [] then Obs.Metrics.incr m_helping;
      incr n_ops
    end;
    let h', idx' = hscan t in
    incr n_ops;
    if Hrep.equal_triples h h' then (h, idx')
    else begin
      Obs.Metrics.incr m_scan_retries;
      loop h'
    end
  in
  let h, end_idx = loop h0 in
  let view = Hrep.get_view ~m:t.m h in
  Obs.Metrics.incr m_scans;
  Obs.Metrics.observe h_scan_hops !n_ops;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~name:"M.scan" ~pid:me ~ts:first_idx
      ~dur:(end_idx - first_idx + 1)
      ~args:[ ("hops", Obs.Json.Int !n_ops) ]
      ();
  t.rev_log <-
    Scan_op { proc = me; start_idx = first_idx; end_idx; n_ops = !n_ops; view; h }
    :: t.rev_log;
  view

(* Algorithm 4. *)
let block_update t ~me updates =
  if me < 0 || me >= t.f then invalid_arg "Aug.block_update: bad process id";
  (match updates with
  | [] -> invalid_arg "Aug.block_update: empty update list"
  | _ ->
    let comps = List.map fst updates in
    if List.length (List.sort_uniq Int.compare comps) <> List.length comps then
      invalid_arg "Aug.block_update: components must be distinct";
    if List.exists (fun j -> j < 0 || j >= t.m) comps then
      invalid_arg "Aug.block_update: component out of range");
  (* Line 2 *)
  let h, start_idx = hscan t in
  (* Line 3 *)
  let ts = Hrep.new_timestamp h ~me in
  (* Line 4: X *)
  let triples =
    List.map (fun (j, v) -> { Hrep.comp = j; value = v; ts }) updates
  in
  let _, x_idx = do_op t (Ops.Happend_triples triples) in
  (* Line 5 *)
  let g, _ = hscan t in
  (* Lines 6-7: help lower identifiers, one update. (Skipped by the E9
     ablation; the scan on Line 5 is kept so the yield check's timing is
     unchanged.) *)
  if t.helping then begin
    let gcnt = Hrep.counts g in
    let recs =
      List.filter_map
        (fun j ->
          if j < me then Some { Hrep.dest = j; index = gcnt.(j); payload = g }
          else None)
        (List.init t.f Fun.id)
    in
    let _ = do_op t (Ops.Happend_lrecords recs) in
    if recs <> [] then Obs.Metrics.incr m_helping
  end;
  (* Line 8 *)
  let h', end_idx5 = hscan t in
  (* Line 9: yield iff a lower-identifier process appended new triples.
     Seeded faults mutate exactly this test. *)
  let hcnt = Hrep.counts h in
  let h'cnt = Hrep.counts h' in
  let new_from pred =
    List.exists (fun j -> pred j && h'cnt.(j) > hcnt.(j)) (List.init t.f Fun.id)
  in
  let new_lower =
    match t.inject with
    | None | Some Spin_on_yield -> new_from (fun j -> j < me)
    | Some Skip_yield_check -> false
    | Some Yield_on_higher -> new_from (fun j -> j > me)
  in
  if new_lower && t.inject = Some Spin_on_yield then begin
    (* Deliberately blocking mutation: instead of yielding, busy-wait
       re-scanning H forever. Breaks non-blocking progress — the target
       of the explorer's progress oracle. *)
    while true do
      ignore (hscan t)
    done;
    assert false
  end
  else if new_lower then begin
    let n_ops = if t.helping then 5 else 4 in
    Obs.Metrics.incr m_bu;
    Obs.Metrics.incr m_bu_yield;
    Obs.Metrics.observe h_bu_hops n_ops;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~name:"M.block-update" ~pid:me ~ts:start_idx
        ~dur:(end_idx5 - start_idx + 1)
        ~args:[ ("result", Obs.Json.Str "yield") ]
        ();
    t.rev_log <-
      Bu_op
        {
          proc = me;
          ts;
          updates;
          start_idx;
          x_idx;
          end_idx = end_idx5;
          n_ops;
          h;
          result = Yield;
        }
      :: t.rev_log;
    `Yield
  end
  else begin
    (* Lines 12-15: read L_{j,me}[#h_me] for all j ≠ me, in one scan.
       The E9 ablation skips the reads and falls back to the Line-2 scan
       result — exactly the stale view the helping mechanism exists to
       refresh. *)
    let last = ref h in
    let end_idx =
      if not t.helping then end_idx5
      else begin
        let r_snap, end_idx = hscan t in
        let b = hcnt.(me) in
        List.iter
          (fun j ->
            match Hrep.read_l r_snap ~writer:j ~reader:me ~index:b with
            | Some rj when Hrep.is_proper_prefix !last rj -> last := rj
            | Some _ | None -> ())
          (others t ~me);
        end_idx
      end
    in
    let view = Hrep.get_view ~m:t.m !last in
    let n_ops = if t.helping then 6 else 4 in
    Obs.Metrics.incr m_bu;
    Obs.Metrics.incr m_bu_atomic;
    Obs.Metrics.observe h_bu_hops n_ops;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~name:"M.block-update" ~pid:me ~ts:start_idx
        ~dur:(end_idx - start_idx + 1)
        ~args:[ ("result", Obs.Json.Str "atomic") ]
        ();
    t.rev_log <-
      Bu_op
        {
          proc = me;
          ts;
          updates;
          start_idx;
          x_idx;
          end_idx;
          n_ops;
          h;
          result = Atomic { view; last = !last };
        }
      :: t.rev_log;
    `View view
  end
