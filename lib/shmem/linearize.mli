(** Linearizability checking for small concurrent histories.

    A history is a set of operation intervals, each with an invocation
    time, an optional response time (pending operations have none), and
    the observed response. [check] decides whether the history is
    linearizable with respect to a sequential specification, using the
    Wing–Gong search: repeatedly pick a "minimal" operation (one that no
    other operation completed before), apply it to the sequential state,
    and match its observed response. Pending operations may either take
    effect or be dropped.

    The search is exponential in the worst case; it is intended for the
    short adversarial histories produced in tests (≲ 15 operations). *)

open Rsim_value

type 'op entry = {
  proc : int;
  op : 'op;
  inv : int;  (** invocation time *)
  ret : int option;  (** response time; [None] = pending *)
  res : Value.t option;  (** observed response, for complete operations *)
}

(** [apply] may raise to signal that an operation is not applicable in a
    state (a partial sequential spec, e.g. popping an empty stack): the
    search then cannot linearize the operation at that point. In
    particular a pending operation whose [apply] raises everywhere it
    could be placed must be dropped. *)
type ('st, 'op) spec = {
  init : 'st;
  apply : 'st -> 'op -> 'st * Value.t;
}

(** [entry ~proc ~op ~inv ~ret ~res] smart constructor; checks
    [inv < ret]. *)
val entry :
  proc:int -> op:'op -> inv:int -> ?ret:int -> ?res:Value.t -> unit -> 'op entry

(** Whether the history is linearizable w.r.t. the spec. *)
val check : ('st, 'op) spec -> 'op entry list -> bool

(** A witness linearization order (the entries that took effect, in
    linearization order), if one exists. *)
val linearization : ('st, 'op) spec -> 'op entry list -> 'op entry list option
