open Rsim_value

type 'op entry = {
  proc : int;
  op : 'op;
  inv : int;
  ret : int option;
  res : Value.t option;
}

type ('st, 'op) spec = {
  init : 'st;
  apply : 'st -> 'op -> 'st * Value.t;
}

let entry ~proc ~op ~inv ?ret ?res () =
  (match ret with
  | Some r when r <= inv -> invalid_arg "Linearize.entry: ret must be > inv"
  | _ -> ());
  { proc; op; inv; ret; res }

(* [e] may be linearized first among [remaining] iff no other operation
   completed before [e] was invoked. *)
let minimal remaining e =
  List.for_all
    (fun e' ->
      e' == e
      || match e'.ret with None -> true | Some r -> r > e.inv)
    remaining

let rec remove_phys x = function
  | [] -> []
  | y :: ys -> if x == y then ys else y :: remove_phys x ys

let linearization spec entries =
  let rec search st remaining acc =
    match remaining with
    | [] -> Some (List.rev acc)
    | _ ->
      let candidates = List.filter (minimal remaining) remaining in
      let try_take e =
        (* A raising [apply] means the operation is not applicable in this
           state; the search must linearize it elsewhere (or, if pending,
           drop it). *)
        match spec.apply st e.op with
        | exception _ -> None
        | st', res ->
          let response_ok =
            match (e.ret, e.res) with
            | Some _, Some observed -> Value.equal observed res
            | Some _, None -> true
            | None, _ -> true (* pending: any response is acceptable *)
          in
          if response_ok then search st' (remove_phys e remaining) (e :: acc)
          else None
      in
      let try_drop e =
        (* Pending operations may never have taken effect. *)
        match e.ret with
        | None -> search st (remove_phys e remaining) acc
        | Some _ -> None
      in
      let rec first_some f = function
        | [] -> None
        | x :: xs -> (
          match f x with Some r -> Some r | None -> first_some f xs)
      in
      (match first_some try_take candidates with
      | Some r -> Some r
      | None -> first_some try_drop candidates)
  in
  search spec.init entries []

let check spec entries = Option.is_some (linearization spec entries)
