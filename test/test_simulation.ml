open Rsim_value
open Rsim_shmem
open Rsim_tasks
open Rsim_protocols
open Rsim_simulation

let i n = Value.Int n

let racing_spec ~n ~m ~f ~d inputs =
  {
    Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
    n;
    m;
    f;
    d;
    inputs;
  }

(* ---- partition ---- *)

let test_partition () =
  let p = Harness.partition ~m:3 ~f:3 ~d:1 in
  Alcotest.(check (array int)) "covering 0" [| 0; 1; 2 |] p.(0);
  Alcotest.(check (array int)) "covering 1" [| 3; 4; 5 |] p.(1);
  Alcotest.(check (array int)) "direct" [| 6 |] p.(2);
  (* disjoint *)
  let all = Array.to_list p |> List.concat_map Array.to_list in
  Alcotest.(check int) "no overlaps" (List.length all)
    (List.length (List.sort_uniq Int.compare all))

let test_spec_validation () =
  Alcotest.(check bool) "too few simulated processes rejected" true
    (try
       ignore
         (Harness.run ~sched:Schedule.round_robin
            (racing_spec ~n:3 ~m:3 ~f:2 ~d:0 [ i 1; i 2 ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong input count rejected" true
    (try
       ignore
         (Harness.run ~sched:Schedule.round_robin
            (racing_spec ~n:9 ~m:3 ~f:2 ~d:0 [ i 1 ]));
       false
     with Invalid_argument _ -> true)

(* ---- complexity formulas ---- *)

let test_complexity_a () =
  Alcotest.(check int) "a(1) = 0" 0 (Complexity.a ~m:4 1);
  (* a(2) = (C(m,1)+1)*0 + C(m,1) = m *)
  Alcotest.(check int) "a(2) = m" 4 (Complexity.a ~m:4 2);
  (* m=4: a(3) = (C(4,2)+1)*4 + C(4,2) = 7*4+6 = 34 *)
  Alcotest.(check int) "a(3) m=4" 34 (Complexity.a ~m:4 3);
  (* a(4) = (C(4,3)+1)*34 + 4 = 174 *)
  Alcotest.(check int) "a(4) m=4" 174 (Complexity.a ~m:4 4);
  Alcotest.check_raises "r out of range"
    (Invalid_argument "Complexity.a: need 1 <= r <= m") (fun () ->
      ignore (Complexity.a ~m:3 4))

let test_complexity_closed_form () =
  (* a(r) <= 2^{m(r-1)} for small m, r *)
  List.iter
    (fun m ->
      List.iter
        (fun r ->
          let v = Complexity.a ~m r in
          let bound = 1 lsl (m * (r - 1)) in
          Alcotest.(check bool)
            (Printf.sprintf "a(%d) <= 2^{%d} for m=%d" r (m * (r - 1)) m)
            true (v <= bound))
        (List.init m (fun r -> r + 1)))
    [ 2; 3; 4; 5 ]

let test_complexity_b () =
  (* m=2: a(2)=2, a(1)=0: b(1)=2, b(i)=sum_prev + 2 *)
  Alcotest.(check int) "b(1) m=2" 2 (Complexity.b ~m:2 1);
  Alcotest.(check int) "b(2) m=2" 4 (Complexity.b ~m:2 2);
  Alcotest.(check int) "b(3) m=2" 8 (Complexity.b ~m:2 3);
  Alcotest.(check int) "b(4) m=2" 16 (Complexity.b ~m:2 4);
  Alcotest.(check bool) "b monotone in i" true
    (Complexity.b ~m:3 3 > Complexity.b ~m:3 2);
  Alcotest.(check bool) "step bound positive" true
    (Complexity.step_bound ~f:3 ~m:2 > 0)

let test_complexity_b_closed_form_bound () =
  (* From the recurrence: b(i) ≤ a(m)·(a(m−1)+2)^{i−1}. (The paper's
     displayed closed form a(m)(a(m−1)+1)^{i−1} does not satisfy its own
     recurrence — e.g. m=2 gives b = 2,4,8,… not constant 2 — so we
     check the corrected envelope.) *)
  List.iter
    (fun m ->
      let a_m = Complexity.a ~m m in
      let base = (if m = 1 then 0 else Complexity.a ~m (m - 1)) + 2 in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      List.iter
        (fun i ->
          let bound = a_m * pow base (i - 1) in
          if not (Complexity.is_saturated (Complexity.b ~m i)) then
            Alcotest.(check bool)
              (Printf.sprintf "b(%d) <= a(m)(a(m-1)+2)^%d for m=%d" i (i - 1) m)
              true
              (Complexity.b ~m i <= bound))
        [ 1; 2; 3; 4 ])
    [ 2; 3; 4 ]

let test_complexity_saturation () =
  Alcotest.(check bool) "huge parameters saturate, not overflow" true
    (Complexity.is_saturated (Complexity.b ~m:20 10));
  Alcotest.(check bool) "2^{fm^2} saturates" true
    (Complexity.is_saturated (Complexity.two_pow_fm2 ~f:4 ~m:5));
  Alcotest.(check int) "2^{fm^2} small" 16 (Complexity.two_pow_fm2 ~f:4 ~m:1)

(* ---- single covering simulator ---- *)

let test_single_covering () =
  let spec = racing_spec ~n:2 ~m:2 ~f:1 ~d:0 [ i 42 ] in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  Alcotest.(check bool) "all done" true r.Harness.all_done;
  (match Harness.validate spec r ~task:Task.consensus with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" (Harness.explain e));
  let rep = Analysis.check spec r in
  if not rep.Analysis.ok then
    Alcotest.failf "analysis: %a" Analysis.pp_report rep

let test_final_block_path () =
  (* With one covering simulator on racing m=2, Construct(m) completes
     and the simulator takes the Algorithm-7 path: a final block β plus
     a locally simulated terminating solo run ξ. *)
  let spec = racing_spec ~n:2 ~m:2 ~f:1 ~d:0 [ i 7 ] in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  let finals =
    List.filter
      (function Journal.Jfinal _ -> true | _ -> false)
      (Journal.events r.Harness.journals.(0))
  in
  Alcotest.(check int) "took the final-block path" 1 (List.length finals);
  (match finals with
  | [ Journal.Jfinal { beta; xi; output } ] ->
    Alcotest.(check int) "beta covers m components" 2 (List.length beta);
    Alcotest.(check bool) "xi nonempty" true (xi <> []);
    Alcotest.(check bool) "output is the input" true (Value.equal output (i 7))
  | _ -> Alcotest.fail "expected one Jfinal");
  let rep = Analysis.check spec r in
  if not rep.Analysis.ok then Alcotest.failf "analysis: %a" Analysis.pp_report rep;
  Alcotest.(check bool) "final steps replayed" true
    (rep.Analysis.stats.Analysis.n_final_steps > 0)

(* ---- the reduction: wait-freedom + spec + replay under contention ---- *)

let run_and_check_everything ?(require_valid = None) spec seed =
  let r = Harness.run ~sched:(Schedule.random ~seed) spec in
  Alcotest.(check bool)
    (Printf.sprintf "wait-free (seed %d)" seed)
    true r.Harness.all_done;
  let aug_rep = Rsim_augmented.Aug_spec.check r.Harness.aug r.Harness.trace in
  if not aug_rep.Rsim_augmented.Aug_spec.ok then
    Alcotest.failf "aug spec (seed %d): %a" seed Rsim_augmented.Aug_spec.pp_report
      aug_rep;
  let rep = Analysis.check spec r in
  if not rep.Analysis.ok then
    Alcotest.failf "analysis (seed %d): %a" seed Analysis.pp_report rep;
  (match require_valid with
  | Some task -> (
    match Harness.validate spec r ~task with
    | Ok () -> ()
    | Error e -> Alcotest.failf "task (seed %d): %s" seed (Harness.explain e))
  | None -> ());
  r

let test_two_covering_simulators () =
  List.iter
    (fun seed ->
      ignore
        (run_and_check_everything
           (racing_spec ~n:6 ~m:3 ~f:2 ~d:0 [ i 1; i 2 ])
           seed))
    (List.init 25 Fun.id)

let test_covering_plus_direct () =
  List.iter
    (fun seed ->
      ignore
        (run_and_check_everything
           (racing_spec ~n:5 ~m:2 ~f:3 ~d:1 [ i 1; i 2; i 3 ])
           seed))
    (List.init 25 Fun.id)

let test_kset_regime () =
  (* n=7, k=3, x=1: the upper-bound regime m = n-k+x = 5. Two simulators
     (1 covering + 1 direct) must wait-free produce <= 2 <= k values. *)
  let spec = racing_spec ~n:7 ~m:5 ~f:2 ~d:1 [ i 10; i 20 ] in
  List.iter
    (fun seed ->
      ignore
        (run_and_check_everything ~require_valid:(Some (Task.kset ~k:3)) spec
           seed))
    (List.init 15 Fun.id)

let test_bu_counts_within_lemma30 () =
  (* Covering simulators' Block-Update counts stay within b(i). *)
  List.iter
    (fun seed ->
      let spec = racing_spec ~n:8 ~m:2 ~f:4 ~d:0 [ i 1; i 2; i 3; i 4 ] in
      let r = run_and_check_everything spec seed in
      Array.iteri
        (fun idx count ->
          let bound = Complexity.b ~m:2 (idx + 1) in
          Alcotest.(check bool)
            (Printf.sprintf "q%d: %d BUs <= b(%d) = %d (seed %d)" idx count
               (idx + 1) bound seed)
            true (count <= bound))
        r.Harness.bu_counts)
    (List.init 20 Fun.id)

let test_step_bound_lemma31 () =
  List.iter
    (fun seed ->
      let spec = racing_spec ~n:6 ~m:2 ~f:3 ~d:0 [ i 1; i 2; i 3 ] in
      let r = run_and_check_everything spec seed in
      let bound = Complexity.step_bound ~f:3 ~m:2 in
      Array.iter
        (fun ops ->
          Alcotest.(check bool)
            (Printf.sprintf "ops %d <= bound %d" ops bound)
            true (ops <= bound))
        r.Harness.ops_per_sim)
    (List.init 20 Fun.id)

(* ---- the impossibility witness (E5b) ---- *)

let test_witness_disagreement_exists () =
  (* Racing "consensus" with m = 2 < n = 4 components, simulated by two
     covering simulators: some schedule makes the simulators disagree.
     This is the reduction's bite: were the protocol a correct
     obstruction-free consensus in this space regime, the simulation
     would wait-free solve 2-process consensus. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 200 do
    let r = Harness.run ~sched:(Schedule.random ~seed:!seed) spec in
    (match Harness.validate spec r ~task:Task.consensus with
    | Error _ when r.Harness.all_done -> found := true
    | _ -> ());
    incr seed
  done;
  Alcotest.(check bool) "disagreement witnessed within 200 schedules" true !found

let test_sufficient_space_no_witness () =
  (* With a single simulator (so (f-d)m <= n even for m = n), the same
     search finds no violation. *)
  let spec = racing_spec ~n:3 ~m:3 ~f:1 ~d:0 [ i 1 ] in
  List.iter
    (fun seed ->
      let r = Harness.run ~sched:(Schedule.random ~seed) spec in
      match Harness.validate spec r ~task:Task.consensus with
      | Ok () -> ()
      | Error e -> Alcotest.failf "unexpected violation: %s" (Harness.explain e))
    (List.init 50 Fun.id)

let test_all_direct_simulators () =
  (* d = f: no covering simulators at all; the harness degenerates to f
     direct step-by-step simulations over the augmented snapshot. *)
  List.iter
    (fun seed ->
      let spec = racing_spec ~n:2 ~m:2 ~f:2 ~d:2 [ i 1; i 2 ] in
      let r = Harness.run ~sched:(Schedule.random ~seed) spec in
      Alcotest.(check bool) "all done" true r.Harness.all_done;
      let rep = Analysis.check spec r in
      if not rep.Analysis.ok then
        Alcotest.failf "analysis (seed %d): %a" seed Analysis.pp_report rep;
      Alcotest.(check int) "no revisions without covering simulators" 0
        rep.Analysis.stats.Analysis.n_revisions)
    (List.init 15 Fun.id)

let test_trace_pp_renders () =
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r = Harness.run ~sched:(Schedule.random ~seed:5) spec in
  let rendered = Format.asprintf "%a" (fun fmt () -> Trace_pp.pp_run fmt spec r) () in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length rendered
      && (String.sub rendered i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "shows block updates" true (contains "M.BlockUpdate");
  Alcotest.(check bool) "shows scans" true (contains "M.Scan");
  Alcotest.(check bool) "shows a revision" true (contains "REVISES");
  Alcotest.(check bool) "shows the outcome" true (contains "wait-free: true");
  let htrace = Format.asprintf "%a" (fun fmt () -> Trace_pp.pp_htrace fmt r.Harness.trace) () in
  Alcotest.(check bool) "H-trace shows scans" true
    (let sub = "H.scan" in
     let n = String.length sub in
     let rec go i =
       i + n <= String.length htrace && (String.sub htrace i n = sub || go (i + 1))
     in
     go 0)

(* ---- deterministic covering adversaries ---- *)

let test_phase_shifted_breaks_racing () =
  let procs =
    List.init 2 (fun pid -> (Racing.protocol ~m:2 ()) pid (i pid))
  in
  match
    Covering_witness.phase_shifted ~procs ~m:2 ~task:Task.consensus ~max_turn:8
  with
  | Some w ->
    Alcotest.(check int) "both decided" 2 (List.length w.Covering_witness.outputs);
    Alcotest.(check bool) "two distinct outputs" true
      (List.length
         (Value.distinct (List.map snd w.Covering_witness.outputs))
      > 1)
  | None -> Alcotest.fail "expected a deterministic lockstep witness"

let test_stale_writer_breaks_undersized () =
  let procs =
    List.init 2 (fun pid -> (Racing.protocol ~m:1 ()) pid (i pid))
  in
  match Covering_witness.stale_writer ~procs ~m:1 ~task:Task.consensus with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a stale-writer witness at m=1 < n=2"

let test_adopt2_survives_covering_adversaries () =
  let procs =
    [
      Adopt2.proc ~mine:0 ~theirs:1 ~name:"p0" ~input:(i 1) ();
      Adopt2.proc ~mine:1 ~theirs:0 ~name:"p1" ~input:(i 2) ();
    ]
  in
  Alcotest.(check bool) "phase-shifted finds nothing" true
    (Covering_witness.phase_shifted ~procs ~m:2 ~task:Task.consensus ~max_turn:8
    = None);
  Alcotest.(check bool) "stale-writer finds nothing" true
    (Covering_witness.stale_writer ~procs ~m:2 ~task:Task.consensus = None)

(* ---- failure injection ---- *)

let test_non_of_protocol_fails_loudly () =
  (* A spinner is not obstruction-free: the covering simulator's local
     simulation must hit its cap and fail (not loop forever). *)
  let spec =
    {
      Harness.protocol =
        (fun pid _ -> Pathological.spinner ~name:(Printf.sprintf "spin%d" pid));
      n = 4;
      m = 2;
      f = 2;
      d = 0;
      inputs = [ i 1; i 2 ];
    }
  in
  let r = Harness.run ~local_cap:500 ~max_ops:100_000 ~sched:Schedule.round_robin spec in
  let failed =
    Array.exists
      (function Rsim_runtime.Fiber.Failed _ -> true | _ -> false)
      r.Harness.statuses
  in
  Alcotest.(check bool) "a simulator failed on the cap" true
    (failed || not r.Harness.all_done);
  match Harness.validate spec r ~task:Task.consensus with
  | Ok () -> Alcotest.fail "validation should not pass"
  | Error _ -> ()

let test_constant_protocol () =
  (* Processes that output immediately: every simulator adopts the
     output at its first scan. *)
  let spec =
    {
      Harness.protocol = (fun _ input -> Pathological.constant ~name:"c" ~output:input);
      n = 4;
      m = 2;
      f = 2;
      d = 0;
      inputs = [ i 5; i 6 ];
    }
  in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  Alcotest.(check bool) "all done" true r.Harness.all_done;
  Alcotest.(check int) "both output" 2 (List.length r.Harness.outputs);
  let rep = Analysis.check spec r in
  if not rep.Analysis.ok then Alcotest.failf "analysis: %a" Analysis.pp_report rep

(* ---- approximate agreement through the simulation ---- *)

let test_approx_through_simulation () =
  let eps = 0.25 in
  let rounds = Approx_agreement.rounds_for ~eps in
  let spec =
    {
      Harness.protocol =
        (fun pid input -> (Approx_agreement.protocol ~rounds ()) pid input);
      n = 3;
      m = 3;
      f = 1;
      d = 0;
      inputs = [ Value.Float 0.75 ];
    }
  in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  (match Harness.validate spec r ~task:(Task.approx ~eps) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "approx invalid: %s" (Harness.explain e));
  let rep = Analysis.check spec r in
  if not rep.Analysis.ok then Alcotest.failf "analysis: %a" Analysis.pp_report rep

(* ---- properties ---- *)

let prop_simulation_sound =
  QCheck.Test.make
    ~name:"random shapes: wait-free, aug-spec-clean, Lemma-26-replayable"
    ~count:60
    QCheck.(
      triple (int_bound 100_000) (int_range 1 3) (pair (int_range 1 3) (int_bound 1)))
    (fun (seed, m, (cov, d)) ->
      let f = cov + d in
      let n = (cov * m) + d in
      let inputs = List.init f (fun p -> i (p + 1)) in
      let spec = racing_spec ~n ~m ~f ~d inputs in
      let r = Harness.run ~max_ops:500_000 ~sched:(Schedule.random ~seed) spec in
      if not r.Harness.all_done then
        QCheck.Test.fail_reportf "not wait-free: seed=%d m=%d f=%d d=%d" seed m f d
      else begin
        let aug_rep = Rsim_augmented.Aug_spec.check r.Harness.aug r.Harness.trace in
        let rep = Analysis.check spec r in
        if not aug_rep.Rsim_augmented.Aug_spec.ok then
          QCheck.Test.fail_reportf "aug spec: %a" Rsim_augmented.Aug_spec.pp_report
            aug_rep
        else if not rep.Analysis.ok then
          QCheck.Test.fail_reportf "analysis: %a" Analysis.pp_report rep
        else true
      end)

let prop_simulation_deterministic =
  QCheck.Test.make ~name:"simulation deterministic in the seed" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
      let go () =
        let r = Harness.run ~sched:(Schedule.random ~seed) spec in
        (r.Harness.outputs, r.Harness.total_ops)
      in
      go () = go ())

(* ---- fault plane and supervision ---- *)

let crash_spec_at ~pid ~at_op =
  [ { Rsim_faults.Faults.pid; at_op; action = Rsim_faults.Faults.Crash } ]

let test_crashed_simulator_strict_vs_survivors () =
  (* Crash simulator 1 at its 2nd H-operation. Strict validation must
     report the crash; survivor validation must excuse it and accept the
     survivor's consensus output. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r =
    Harness.run
      ~faults:(crash_spec_at ~pid:1 ~at_op:2)
      ~sched:Schedule.round_robin spec
  in
  Alcotest.(check bool) "simulator 1 crashed" true
    (r.Harness.statuses.(1) = Rsim_runtime.Fiber.Crashed);
  Alcotest.(check bool) "simulator 0 survived" true
    (r.Harness.statuses.(0) = Rsim_runtime.Fiber.Done);
  Alcotest.(check bool) "crash event in the report" true
    (List.exists
       (function Rsim_runtime.Fiber.Ev_crash { pid = 1; _ } -> true | _ -> false)
       r.Harness.report.Harness.events);
  (match Harness.validate spec r ~task:Task.consensus with
  | Error (Harness.Simulator_crashed { sims = [ 1 ] }) -> ()
  | Error e -> Alcotest.failf "expected Simulator_crashed: %s" (Harness.explain e)
  | Ok () -> Alcotest.fail "strict validation must flag the crash");
  match Harness.validate ~survivors_only:true spec r ~task:Task.consensus with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "survivors validation should pass: %s" (Harness.explain e)

let test_crash_at_every_op_survivor_valid () =
  (* The paper's crash model, swept: kill simulator 1 at each of its
     first 12 H-operations in turn; the survivor must always finish and
     its output must solve consensus among survivors. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  for at_op = 0 to 11 do
    let r =
      Harness.run
        ~faults:(crash_spec_at ~pid:1 ~at_op)
        ~sched:Schedule.round_robin spec
    in
    Alcotest.(check bool)
      (Printf.sprintf "survivor done (crash at %d)" at_op)
      true
      (r.Harness.statuses.(0) = Rsim_runtime.Fiber.Done);
    match Harness.validate ~survivors_only:true spec r ~task:Task.consensus with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "crash at op %d: %s" at_op (Harness.explain e)
  done

let test_stalled_simulator_still_validates () =
  (* A transient stall is not a crash: the stalled simulator wakes up,
     finishes, and strict validation passes. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r =
    Harness.run
      ~faults:
        [
          {
            Rsim_faults.Faults.pid = 0;
            at_op = 1;
            action = Rsim_faults.Faults.Stall { steps = 7 };
          };
        ]
      ~sched:Schedule.round_robin spec
  in
  Alcotest.(check bool) "all done despite the stall" true r.Harness.all_done;
  Alcotest.(check bool) "stall event recorded" true
    (List.exists
       (function Rsim_runtime.Fiber.Ev_stall { pid = 0; _ } -> true | _ -> false)
       r.Harness.report.Harness.events);
  match Harness.validate spec r ~task:Task.consensus with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stall should be harmless: %s" (Harness.explain e)

let test_watchdog_quarantine () =
  (* An absurdly small step budget quarantines every simulator; the run
     must still terminate and report the quarantines as crashes. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r = Harness.run ~watchdog:3 ~sched:Schedule.round_robin spec in
  Alcotest.(check bool) "someone was quarantined" true
    (r.Harness.report.Harness.quarantined <> []);
  List.iter
    (fun (q : Harness.quarantine) ->
      Alcotest.(check bool) "quarantined at the budget" true (q.Harness.at_op >= 3);
      Alcotest.(check bool) "reason names the budget" true
        (let s = q.Harness.reason in
         let rec has i =
           i + 6 <= String.length s && (String.sub s i 6 = "budget" || has (i + 1))
         in
         has 0))
    r.Harness.report.Harness.quarantined;
  match Harness.validate spec r ~task:Task.consensus with
  | Error (Harness.Simulator_crashed _) -> ()
  | Error e -> Alcotest.failf "expected Simulator_crashed: %s" (Harness.explain e)
  | Ok () -> Alcotest.fail "quarantine must fail strict validation"

let test_default_watchdog_bound () =
  (* The default budget scales with Lemma 31's step bound and is capped
     by max_ops. *)
  let b = Harness.default_watchdog ~f:2 ~m:2 ~max_ops:2_000_000 in
  Alcotest.(check bool) "at least Lemma 31's bound" true
    (b >= Complexity.step_bound ~f:2 ~m:2);
  Alcotest.(check bool) "finite (not the op budget)" true (b < 2_000_000);
  Alcotest.(check int) "capped by max_ops" 100
    (Harness.default_watchdog ~f:4 ~m:4 ~max_ops:100);
  (* a clean run never trips the default watchdog *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r = Harness.run ~sched:Schedule.round_robin spec in
  Alcotest.(check bool) "no quarantines on a clean run" true
    (r.Harness.report.Harness.quarantined = []);
  Alcotest.(check int) "budget recorded in the report" b
    r.Harness.report.Harness.watchdog_budget

let test_injected_exception_is_a_crash () =
  (* raise@P:K delivers Faults.Injected, which validation treats as a
     modeled crash — excusable with survivors_only — not as a bug. *)
  let spec = racing_spec ~n:4 ~m:2 ~f:2 ~d:0 [ i 1; i 2 ] in
  let r =
    Harness.run
      ~faults:
        [
          {
            Rsim_faults.Faults.pid = 1;
            at_op = 2;
            action = Rsim_faults.Faults.Raise_exn;
          };
        ]
      ~sched:Schedule.round_robin spec
  in
  (match r.Harness.statuses.(1) with
  | Rsim_runtime.Fiber.Failed e ->
    Alcotest.(check bool) "the injected exception" true
      (Rsim_faults.Faults.is_injected e)
  | _ -> Alcotest.fail "expected Failed (Injected _)");
  (match Harness.validate spec r ~task:Task.consensus with
  | Error (Harness.Simulator_crashed { sims = [ 1 ] }) -> ()
  | Error e ->
    Alcotest.failf "expected Simulator_crashed: %s" (Harness.explain e)
  | Ok () -> Alcotest.fail "strict validation must flag the injected crash");
  match Harness.validate ~survivors_only:true spec r ~task:Task.consensus with
  | Ok () -> ()
  | Error e -> Alcotest.failf "survivors should pass: %s" (Harness.explain e)

let () =
  Alcotest.run "simulation"
    [
      ( "structure",
        [
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "a(r)" `Quick test_complexity_a;
          Alcotest.test_case "a(r) closed form" `Quick test_complexity_closed_form;
          Alcotest.test_case "b(i)" `Quick test_complexity_b;
          Alcotest.test_case "b(i) closed-form envelope" `Quick
            test_complexity_b_closed_form_bound;
          Alcotest.test_case "saturation" `Quick test_complexity_saturation;
        ] );
      ( "covering",
        [
          Alcotest.test_case "single simulator" `Quick test_single_covering;
          Alcotest.test_case "final block path" `Quick test_final_block_path;
          Alcotest.test_case "two covering" `Quick test_two_covering_simulators;
          Alcotest.test_case "covering + direct" `Quick test_covering_plus_direct;
          Alcotest.test_case "k-set regime" `Quick test_kset_regime;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "Lemma 30 BU counts" `Quick test_bu_counts_within_lemma30;
          Alcotest.test_case "Lemma 31 step bound" `Quick test_step_bound_lemma31;
        ] );
      ( "witness",
        [
          Alcotest.test_case "too little space breaks" `Quick
            test_witness_disagreement_exists;
          Alcotest.test_case "enough space holds" `Quick
            test_sufficient_space_no_witness;
          Alcotest.test_case "lockstep breaks racing deterministically" `Quick
            test_phase_shifted_breaks_racing;
          Alcotest.test_case "stale writer breaks m<n" `Quick
            test_stale_writer_breaks_undersized;
          Alcotest.test_case "adopt2 survives covering adversaries" `Quick
            test_adopt2_survives_covering_adversaries;
        ] );
      ( "degenerate shapes",
        [
          Alcotest.test_case "all-direct simulators" `Quick test_all_direct_simulators;
          Alcotest.test_case "trace pretty-printer" `Quick test_trace_pp_renders;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "non-OF protocol fails loudly" `Quick
            test_non_of_protocol_fails_loudly;
          Alcotest.test_case "instant-output protocol" `Quick test_constant_protocol;
        ] );
      ( "integration",
        [
          Alcotest.test_case "approx through simulation" `Quick
            test_approx_through_simulation;
        ] );
      ( "fault plane",
        [
          Alcotest.test_case "strict vs survivors validation" `Quick
            test_crashed_simulator_strict_vs_survivors;
          Alcotest.test_case "crash at every op, survivor valid" `Quick
            test_crash_at_every_op_survivor_valid;
          Alcotest.test_case "stall is harmless" `Quick
            test_stalled_simulator_still_validates;
          Alcotest.test_case "watchdog quarantine" `Quick test_watchdog_quarantine;
          Alcotest.test_case "default watchdog bound" `Quick
            test_default_watchdog_bound;
          Alcotest.test_case "injected exception is a crash" `Quick
            test_injected_exception_is_a_crash;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_simulation_sound; prop_simulation_deterministic ] );
    ]
