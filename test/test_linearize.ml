open Rsim_value
open Rsim_shmem

(* Sequential spec of a single register. *)
type reg_op = R | W of Value.t

let reg_spec : (Value.t, reg_op) Linearize.spec =
  {
    init = Value.Bot;
    apply =
      (fun st op ->
        match op with R -> (st, st) | W v -> (v, Value.Bot));
  }

let e = Linearize.entry

let test_sequential_ok () =
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:1 ();
      e ~proc:0 ~op:R ~inv:2 ~ret:3 ~res:(Value.Int 1) ();
    ]
  in
  Alcotest.(check bool) "sequential read-your-write" true (Linearize.check reg_spec h)

let test_sequential_bad () =
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:1 ();
      e ~proc:0 ~op:R ~inv:2 ~ret:3 ~res:(Value.Int 2) ();
    ]
  in
  Alcotest.(check bool) "wrong read rejected" false (Linearize.check reg_spec h)

let test_concurrent_flexible () =
  (* Write concurrent with a read: the read may see old or new value. *)
  let old_read =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:10 ();
      e ~proc:1 ~op:R ~inv:1 ~ret:2 ~res:Value.Bot ();
    ]
  in
  let new_read =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:10 ();
      e ~proc:1 ~op:R ~inv:1 ~ret:2 ~res:(Value.Int 1) ();
    ]
  in
  Alcotest.(check bool) "concurrent read old" true (Linearize.check reg_spec old_read);
  Alcotest.(check bool) "concurrent read new" true (Linearize.check reg_spec new_read)

let test_realtime_order_respected () =
  (* Read completes before the write starts: must return Bot. *)
  let h =
    [
      e ~proc:1 ~op:R ~inv:0 ~ret:1 ~res:(Value.Int 1) ();
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:2 ~ret:3 ();
    ]
  in
  Alcotest.(check bool) "future write not visible" false (Linearize.check reg_spec h)

let test_new_old_inversion () =
  (* The classic non-linearizable history: two sequential reads see
     new-then-old. *)
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:20 ();
      e ~proc:1 ~op:R ~inv:1 ~ret:2 ~res:(Value.Int 1) ();
      e ~proc:1 ~op:R ~inv:3 ~ret:4 ~res:Value.Bot ();
    ]
  in
  Alcotest.(check bool) "new/old inversion rejected" false (Linearize.check reg_spec h)

let test_pending_can_take_effect () =
  (* A pending write may be linearized to justify a read. *)
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 7)) ~inv:0 ();
      e ~proc:1 ~op:R ~inv:1 ~ret:2 ~res:(Value.Int 7) ();
    ]
  in
  Alcotest.(check bool) "pending write visible" true (Linearize.check reg_spec h)

let test_pending_can_be_dropped () =
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 7)) ~inv:0 ();
      e ~proc:1 ~op:R ~inv:1 ~ret:2 ~res:Value.Bot ();
    ]
  in
  Alcotest.(check bool) "pending write droppable" true (Linearize.check reg_spec h)

let test_linearization_witness () =
  let h =
    [
      e ~proc:0 ~op:(W (Value.Int 1)) ~inv:0 ~ret:1 ();
      e ~proc:1 ~op:R ~inv:2 ~ret:3 ~res:(Value.Int 1) ();
    ]
  in
  match Linearize.linearization reg_spec h with
  | Some order ->
    Alcotest.(check int) "both ops in witness" 2 (List.length order);
    (match order with
    | first :: _ ->
      Alcotest.(check int) "write first" 0 first.Linearize.proc
    | [] -> Alcotest.fail "empty witness")
  | None -> Alcotest.fail "expected linearizable"

let test_entry_validation () =
  Alcotest.check_raises "ret <= inv rejected"
    (Invalid_argument "Linearize.entry: ret must be > inv") (fun () ->
      ignore (e ~proc:0 ~op:R ~inv:5 ~ret:5 ()))

(* Snapshot spec: m-component object with update/scan, for cross-checking
   richer histories. *)
type snap_op = Upd of int * Value.t | Sc

let snap_spec m : (Value.t array, snap_op) Linearize.spec =
  {
    init = Array.make m Value.Bot;
    apply =
      (fun st op ->
        match op with
        | Upd (j, v) ->
          let st' = Array.copy st in
          st'.(j) <- v;
          (st', Value.Bot)
        | Sc -> (st, Value.List (Array.to_list st)));
  }

let test_snapshot_history () =
  let view l = Value.List l in
  let h =
    [
      e ~proc:0 ~op:(Upd (0, Value.Int 1)) ~inv:0 ~ret:1 ();
      e ~proc:1 ~op:(Upd (1, Value.Int 2)) ~inv:2 ~ret:3 ();
      e ~proc:2 ~op:Sc ~inv:4 ~ret:5 ~res:(view [ Value.Int 1; Value.Int 2 ]) ();
    ]
  in
  Alcotest.(check bool) "snapshot history ok" true (Linearize.check (snap_spec 2) h);
  let bad =
    [
      e ~proc:0 ~op:(Upd (0, Value.Int 1)) ~inv:0 ~ret:1 ();
      e ~proc:2 ~op:Sc ~inv:2 ~ret:3 ~res:(view [ Value.Bot; Value.Bot ]) ();
    ]
  in
  Alcotest.(check bool) "stale snapshot rejected" false
    (Linearize.check (snap_spec 2) bad)

(* Partial sequential spec: a stack whose pop is not applicable on an
   empty stack ([apply] raises). Exercises the checker's handling of
   operations that are inapplicable at a linearization point — pending
   ops must then be droppable rather than wedge the search. *)
type stack_op = Push of int | Pop

let stack_spec : (int list, stack_op) Linearize.spec =
  {
    init = [];
    apply =
      (fun st op ->
        match (op, st) with
        | Push v, _ -> (v :: st, Value.Bot)
        | Pop, v :: st' -> (st', Value.Int v)
        | Pop, [] -> failwith "pop on empty stack");
  }

let test_pending_must_be_dropped () =
  (* push 1; pop -> 1; then a pending pop invoked after the stack is
     empty again. No extension can linearize that pop (it is never
     applicable), so the history is linearizable only because a pending
     operation may also be DROPPED. Regression: the checker used to let
     [apply] exceptions escape instead of treating the op as
     non-linearizable at that point. *)
  let h =
    [
      e ~proc:0 ~op:(Push 1) ~inv:0 ~ret:1 ();
      e ~proc:0 ~op:Pop ~inv:2 ~ret:3 ~res:(Value.Int 1) ();
      e ~proc:1 ~op:Pop ~inv:4 ();
    ]
  in
  Alcotest.(check bool) "inapplicable pending pop dropped" true
    (Linearize.check stack_spec h)

let test_partial_spec_rejects_completed () =
  (* A COMPLETED pop on a forever-empty stack can never linearize. *)
  let h = [ e ~proc:0 ~op:Pop ~inv:0 ~ret:1 ~res:(Value.Int 1) () ] in
  Alcotest.(check bool) "completed pop on empty rejected" false
    (Linearize.check stack_spec h);
  (* ... but with a concurrent pending push it can. *)
  let h' =
    [
      e ~proc:1 ~op:(Push 1) ~inv:0 ();
      e ~proc:0 ~op:Pop ~inv:1 ~ret:2 ~res:(Value.Int 1) ();
    ]
  in
  Alcotest.(check bool) "pop justified by pending push" true
    (Linearize.check stack_spec h')

(* qcheck: histories generated from an actual sequential execution are
   always linearizable. *)
let prop_generated_histories_linearizable =
  QCheck.Test.make ~name:"sequentially-generated histories linearizable" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let open Rsim_value in
      let g = ref (Prng.make seed) in
      let draw n =
        let k, g' = Prng.int !g n in
        g := g';
        k
      in
      (* Generate a random sequential execution on one register and emit a
         history with each op occupying its own time slot. *)
      let st = ref Value.Bot in
      let t = ref 0 in
      let entries = ref [] in
      for _ = 1 to 8 do
        let inv = !t in
        let ret = !t + 1 in
        t := !t + 2;
        if draw 2 = 0 then begin
          let v = Value.Int (draw 5) in
          st := v;
          entries := e ~proc:(draw 3) ~op:(W v) ~inv ~ret () :: !entries
        end
        else entries := e ~proc:(draw 3) ~op:R ~inv ~ret ~res:!st () :: !entries
      done;
      Linearize.check reg_spec (List.rev !entries))

let () =
  Alcotest.run "linearize"
    [
      ( "register",
        [
          Alcotest.test_case "sequential ok" `Quick test_sequential_ok;
          Alcotest.test_case "sequential bad" `Quick test_sequential_bad;
          Alcotest.test_case "concurrent flexible" `Quick test_concurrent_flexible;
          Alcotest.test_case "real-time order" `Quick test_realtime_order_respected;
          Alcotest.test_case "new/old inversion" `Quick test_new_old_inversion;
          Alcotest.test_case "pending takes effect" `Quick test_pending_can_take_effect;
          Alcotest.test_case "pending dropped" `Quick test_pending_can_be_dropped;
          Alcotest.test_case "witness" `Quick test_linearization_witness;
          Alcotest.test_case "entry validation" `Quick test_entry_validation;
        ] );
      ("snapshot", [ Alcotest.test_case "histories" `Quick test_snapshot_history ]);
      ( "partial specs",
        [
          Alcotest.test_case "pending must be dropped" `Quick
            test_pending_must_be_dropped;
          Alcotest.test_case "inapplicable completed op" `Quick
            test_partial_spec_rejects_completed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_generated_histories_linearizable ]
      );
    ]
