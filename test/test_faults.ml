open Rsim_faults
open Rsim_augmented

(* ---- the profile grammar ---- *)

let roundtrip s =
  match Faults.of_string (Faults.to_string s) with
  | Ok s' -> s'
  | Error e -> Alcotest.failf "profile %S failed to parse back: %s" (Faults.to_string s) e

let test_grammar_roundtrip () =
  let profile =
    [
      { Faults.pid = 0; at_op = 3; action = Faults.Crash };
      { Faults.pid = 1; at_op = 0; action = Faults.Restart { delay = 5 } };
      { Faults.pid = 2; at_op = 7; action = Faults.Stall { steps = 2 } };
      { Faults.pid = 0; at_op = 9; action = Faults.Drop };
      { Faults.pid = 1; at_op = 4; action = Faults.Corrupt { seed = 77 } };
      { Faults.pid = 3; at_op = 1; action = Faults.Raise_exn };
    ]
  in
  Alcotest.(check bool) "to_string . of_string is the identity" true
    (roundtrip profile = profile)

let test_grammar_empty () =
  Alcotest.(check bool) "empty string" true (Faults.of_string "" = Ok []);
  Alcotest.(check bool) "none" true (Faults.of_string "none" = Ok []);
  Alcotest.(check bool) "empty profile prints as none" true
    (Faults.to_string [] = "none")

let test_grammar_rejects_garbage () =
  List.iter
    (fun s ->
      match Faults.of_string s with
      | Ok _ -> Alcotest.failf "garbage profile %S parsed" s
      | Error _ -> ())
    [ "crash"; "crash@"; "crash@x:1"; "stall@0:1"; "restart@0:1"; "frob@0:1";
      "crash@0:1,," ]

(* ---- named seeded families ---- *)

let test_named_deterministic () =
  List.iter
    (fun name ->
      match
        (Faults.named name ~n_procs:4 ~seed:9, Faults.named name ~n_procs:4 ~seed:9)
      with
      | Some a, Some b ->
        Alcotest.(check bool) (name ^ " deterministic") true (a = b);
        Alcotest.(check bool) (name ^ " non-empty") true (a <> []);
        List.iter
          (fun (s : Faults.spec) ->
            Alcotest.(check bool) (name ^ " pids in range") true
              (s.Faults.pid >= 0 && s.Faults.pid < 4))
          a
      | _ -> Alcotest.failf "named family %s missing" name)
    Faults.names

let test_named_benign () =
  (* the named families model crash/restart/stall only: they must never
     drop, corrupt or raise — those are bug injections, not crash faults *)
  List.iter
    (fun name ->
      match Faults.named name ~n_procs:3 ~seed:2 with
      | None -> Alcotest.failf "named family %s missing" name
      | Some specs ->
        List.iter
          (fun (s : Faults.spec) ->
            match s.Faults.action with
            | Faults.Crash | Faults.Restart _ | Faults.Stall _ -> ()
            | Faults.Drop | Faults.Corrupt _ | Faults.Raise_exn ->
              Alcotest.failf "%s injected a non-benign fault" name)
          specs)
    Faults.names

let test_resolve () =
  (match Faults.resolve ~n_procs:3 ~seed:1 "crashy" with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "crashy resolved to an empty profile"
  | Error e -> Alcotest.failf "crashy did not resolve: %s" e);
  (match Faults.resolve ~n_procs:3 ~seed:1 "crash@1:3" with
  | Ok [ { Faults.pid = 1; at_op = 3; action = Faults.Crash } ] -> ()
  | _ -> Alcotest.fail "literal profile did not resolve");
  match Faults.resolve ~n_procs:3 ~seed:1 "no-such-family" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown family resolved"

(* ---- compilation: fire-once and adapters ---- *)

let test_plan_fires_once () =
  let specs =
    [ { Faults.pid = 1; at_op = 2; action = Faults.Crash } ]
  in
  let plan = Faults.plan ~adapter:Faults.null_adapter specs in
  (* wrong pid, wrong op index: no fire *)
  Alcotest.(check bool) "other pid proceeds" true
    (Faults.control plan ~pid:0 ~nth:2 () = Rsim_runtime.Fiber.Proceed);
  Alcotest.(check bool) "earlier op proceeds" true
    (Faults.control plan ~pid:1 ~nth:1 () = Rsim_runtime.Fiber.Proceed);
  Alcotest.(check bool) "nothing fired yet" true (Faults.fired plan = []);
  (* the victim op *)
  Alcotest.(check bool) "victim op crashes" true
    (Faults.control plan ~pid:1 ~nth:2 () = Rsim_runtime.Fiber.Crash);
  Alcotest.(check bool) "spec recorded as fired" true
    (Faults.fired plan = specs);
  (* same (pid, nth) again — e.g. after a restart replays op 2 — no refire *)
  Alcotest.(check bool) "fires at most once" true
    (Faults.control plan ~pid:1 ~nth:2 () = Rsim_runtime.Fiber.Proceed)

let test_null_adapter_skips_value_faults () =
  let plan =
    Faults.plan ~adapter:Faults.null_adapter
      [
        { Faults.pid = 0; at_op = 0; action = Faults.Drop };
        { Faults.pid = 0; at_op = 1; action = Faults.Corrupt { seed = 3 } };
      ]
  in
  Alcotest.(check bool) "drop skipped without an adapter" true
    (Faults.control plan ~pid:0 ~nth:0 () = Rsim_runtime.Fiber.Proceed);
  Alcotest.(check bool) "corrupt skipped without an adapter" true
    (Faults.control plan ~pid:0 ~nth:1 () = Rsim_runtime.Fiber.Proceed)

let test_aug_adapter_drop () =
  let tr =
    { Hrep.comp = 0; value = Rsim_value.Value.Int 5; ts = Vts.of_array [| 0; 0 |] }
  in
  (match Aug.fault_adapter.Faults.drop (Aug.Ops.Happend_triples [ tr ]) with
  | Some (Aug.Ops.Happend_triples []) -> ()
  | _ -> Alcotest.fail "drop of an append must become an empty append");
  match Aug.fault_adapter.Faults.drop Aug.Ops.Hscan with
  | None -> ()
  | Some _ -> Alcotest.fail "a scan is not a write; nothing to drop"

let test_aug_adapter_corrupt () =
  let tr =
    { Hrep.comp = 0; value = Rsim_value.Value.Int 5; ts = Vts.of_array [| 0; 0 |] }
  in
  let g = Rsim_value.Prng.make 11 in
  match Aug.fault_adapter.Faults.corrupt g (Aug.Ops.Happend_triples [ tr ]) with
  | Some (Aug.Ops.Happend_triples [ tr' ]) ->
    Alcotest.(check bool) "component preserved" true (tr'.Hrep.comp = 0);
    Alcotest.(check bool) "timestamp preserved" true
      (Vts.equal tr'.Hrep.ts (Vts.of_array [| 0; 0 |]));
    Alcotest.(check bool) "value garbled" true
      (not (Rsim_value.Value.equal tr'.Hrep.value (Rsim_value.Value.Int 5)))
  | _ -> Alcotest.fail "corrupt must keep the append shape"

let test_injected_exn () =
  Alcotest.(check bool) "Injected is recognized" true
    (Faults.is_injected (Faults.Injected (1, 2)));
  Alcotest.(check bool) "other exns are not" false
    (Faults.is_injected (Failure "x"))

let () =
  Alcotest.run "faults"
    [
      ( "grammar",
        [
          Alcotest.test_case "round trip" `Quick test_grammar_roundtrip;
          Alcotest.test_case "empty profiles" `Quick test_grammar_empty;
          Alcotest.test_case "garbage rejected" `Quick test_grammar_rejects_garbage;
        ] );
      ( "named families",
        [
          Alcotest.test_case "deterministic" `Quick test_named_deterministic;
          Alcotest.test_case "benign kinds only" `Quick test_named_benign;
          Alcotest.test_case "resolve" `Quick test_resolve;
        ] );
      ( "plans",
        [
          Alcotest.test_case "fire once" `Quick test_plan_fires_once;
          Alcotest.test_case "null adapter" `Quick
            test_null_adapter_skips_value_faults;
          Alcotest.test_case "aug adapter: drop" `Quick test_aug_adapter_drop;
          Alcotest.test_case "aug adapter: corrupt" `Quick
            test_aug_adapter_corrupt;
          Alcotest.test_case "injected exception" `Quick test_injected_exn;
        ] );
    ]
