(* R2 fixture: direct printing in library code — exactly one finding.
   Printf.sprintf is pure and must NOT be flagged. *)

let describe n = Printf.sprintf "n = %d" n
let announce n = print_endline (describe n)
