(* R5 fixture: a library module with no sibling .mli — the scan over
   this mini-workspace reports exactly one finding. *)

let answer = 42
