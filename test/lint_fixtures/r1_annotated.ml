(* R1 fixture, silenced: same shape as r1_bare_ref.ml but every share
   is either Atomic or carries a [@rsim.shared] rationale — zero
   findings. *)

let hits = Atomic.make 0
let journal = (ref [] [@rsim.shared "guarded by journal_mu"])
let journal_mu = Mutex.create ()

let run () =
  let d =
    Domain.spawn (fun () ->
        Atomic.incr hits;
        Mutex.lock journal_mu;
        journal := Atomic.get hits :: !journal;
        Mutex.unlock journal_mu)
  in
  Domain.join d
