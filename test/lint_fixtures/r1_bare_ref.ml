(* R1 fixture: a structure-level ref in a Domain-spawning module, with
   no [@rsim.shared] rationale — exactly one finding. *)

let counter = ref 0

let run () =
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d
