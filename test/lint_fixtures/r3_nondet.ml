(* R3 fixture: ambient nondeterminism in a deterministic path —
   exactly one finding. *)

let stamp () = int_of_float (Unix.gettimeofday () *. 1e6)
