(* R4 fixture: a partial function on a hot path — exactly one finding.
   The total match below must NOT be flagged. *)

let first_or_zero = function [] -> 0 | x :: _ -> x
let first xs = List.hd xs
