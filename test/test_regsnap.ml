open Rsim_value
open Rsim_shmem
open Rsim_regsnap

let no_failures (result : Regsnap.F.result) =
  Array.iter
    (function
      | Rsim_runtime.Fiber.Failed e -> raise e
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
      | Rsim_runtime.Fiber.Crashed -> ())
    result.statuses

(* Run bodies that receive the shared snapshot. *)
let with_snap ~f ~sched make_bodies =
  let t = Regsnap.create ~f in
  let result =
    Regsnap.F.run ~max_ops:100_000 ~sched ~apply:(Regsnap.apply t) (make_bodies t)
  in
  no_failures result;
  (t, result)

let test_solo () =
  let seen = ref [||] in
  let _ =
    with_snap ~f:2 ~sched:Schedule.round_robin (fun t ->
        [
          (fun _ ->
            Regsnap.update t ~me:0 (Value.Int 5);
            seen := Regsnap.scan t ~me:0);
          (fun _ -> ());
        ])
  in
  Alcotest.(check bool) "own component visible" true
    (Value.equal !seen.(0) (Value.Int 5));
  Alcotest.(check bool) "other still bot" true (Value.is_bot !seen.(1))

let test_cross_visibility () =
  let seen = ref [||] in
  let _t, _ =
    with_snap ~f:2 ~sched:(Schedule.script (List.init 20 (fun i -> i mod 2)))
      (fun t ->
        [
          (fun _ -> Regsnap.update t ~me:0 (Value.Int 1));
          (fun _ ->
            Regsnap.update t ~me:1 (Value.Int 2);
            seen := Regsnap.scan t ~me:1);
        ])
  in
  Alcotest.(check bool) "sees own" true (Value.equal !seen.(1) (Value.Int 2))

let test_wait_free_scan_bound () =
  (* Even with all processes updating continuously, every scan finishes
     within (f+2)·f register steps. *)
  List.iter
    (fun seed ->
      let f = 3 in
      let _t, result =
        with_snap ~f ~sched:(Schedule.random ~seed) (fun t ->
            [
              (fun _ -> for i = 1 to 5 do Regsnap.update t ~me:0 (Value.Int i) done);
              (fun _ -> for i = 1 to 5 do Regsnap.update t ~me:1 (Value.Int i) done);
              (fun _ ->
                for _ = 1 to 5 do
                  ignore (Regsnap.scan t ~me:2)
                done);
            ])
      in
      ignore result)
    (List.init 20 Fun.id);
  (* per-scan step bound asserted via history intervals *)
  let f = 3 in
  let t, _ =
    with_snap ~f ~sched:(Schedule.random ~seed:7) (fun t ->
        [
          (fun _ -> for i = 1 to 8 do Regsnap.update t ~me:0 (Value.Int i) done);
          (fun _ -> for i = 1 to 8 do Regsnap.update t ~me:1 (Value.Int i) done);
          (fun _ -> for _ = 1 to 8 do ignore (Regsnap.scan t ~me:2) done);
        ])
  in
  List.iter
    (function
      | Regsnap.Scan_op { n_ops; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "scan took %d own steps within bound %d" n_ops
             (Regsnap.scan_step_bound ~f))
          true
          (n_ops <= Regsnap.scan_step_bound ~f)
      | Regsnap.Update_op { n_ops; _ } ->
        Alcotest.(check bool) "update within bound" true
          (n_ops <= Regsnap.scan_step_bound ~f + 2))
    (Regsnap.history t)

let test_borrowed_scans_happen () =
  (* Under interleaved updates, some scan should borrow an embedded
     view. *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 100 do
    let t, _ =
      with_snap ~f:3 ~sched:(Schedule.random ~seed:!seed) (fun t ->
          [
            (fun _ -> for i = 1 to 6 do Regsnap.update t ~me:0 (Value.Int i) done);
            (fun _ -> for i = 1 to 6 do Regsnap.update t ~me:1 (Value.Int (10 + i)) done);
            (fun _ -> for _ = 1 to 6 do ignore (Regsnap.scan t ~me:2) done);
          ])
    in
    if
      List.exists
        (function
          | Regsnap.Scan_op { borrowed = true; _ } -> true
          | _ -> false)
        (Regsnap.history t)
    then found := true;
    incr seed
  done;
  Alcotest.(check bool) "borrowed scan observed within 100 schedules" true !found

let test_single_writer_enforced () =
  let t = Regsnap.create ~f:2 in
  Alcotest.(check bool) "wrong-pid write rejected" true
    (try
       ignore (Regsnap.apply t ~pid:1 (Regsnap.Ops.Write (0, Value.Bot)));
       false
     with Failure _ -> true)

(* ---- linearizability against the sequential snapshot spec ---- *)

type snap_op = Up of int * Value.t | Sc

let snap_spec f : (Value.t array, snap_op) Linearize.spec =
  {
    init = Array.make f Value.Bot;
    apply =
      (fun st op ->
        match op with
        | Up (i, v) ->
          let st' = Array.copy st in
          st'.(i) <- v;
          (st', Value.Bot)
        | Sc -> (st, Value.List (Array.to_list st)));
  }

let entries_of_history hops =
  List.map
    (fun hop ->
      match hop with
      | Regsnap.Update_op { proc; value; inv; ret; _ } ->
        Linearize.entry ~proc ~op:(Up (proc, value)) ~inv ~ret ()
      | Regsnap.Scan_op { proc; view; inv; ret; _ } ->
        Linearize.entry ~proc ~op:Sc ~inv ~ret
          ~res:(Value.List (Array.to_list view))
          ())
    hops

let random_history ~f ~seed ~ops_per =
  let t, _ =
    with_snap ~f ~sched:(Schedule.random ~seed) (fun t ->
        List.init f (fun me ->
            fun _ ->
              let g = ref (Prng.make (seed + (77 * me))) in
              let draw n =
                let k, g' = Prng.int !g n in
                g := g';
                k
              in
              for _ = 1 to ops_per do
                if draw 2 = 0 then Regsnap.update t ~me (Value.Int (draw 10))
                else ignore (Regsnap.scan t ~me)
              done))
  in
  Regsnap.history t

let test_linearizable_fixed () =
  List.iter
    (fun seed ->
      let hist = random_history ~f:2 ~seed ~ops_per:3 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d linearizable" seed)
        true
        (Linearize.check (snap_spec 2) (entries_of_history hist)))
    (List.init 30 Fun.id)

let prop_linearizable =
  QCheck.Test.make ~name:"regsnap histories linearizable" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 2 3))
    (fun (seed, f) ->
      let hist = random_history ~f ~seed ~ops_per:3 in
      Linearize.check (snap_spec f) (entries_of_history hist))

let prop_deterministic =
  QCheck.Test.make ~name:"regsnap runs deterministic" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let h1 = random_history ~f:3 ~seed ~ops_per:3 in
      let h2 = random_history ~f:3 ~seed ~ops_per:3 in
      h1 = h2)

let () =
  Alcotest.run "regsnap"
    [
      ( "behaviour",
        [
          Alcotest.test_case "solo" `Quick test_solo;
          Alcotest.test_case "cross visibility" `Quick test_cross_visibility;
          Alcotest.test_case "wait-free scan bound" `Quick test_wait_free_scan_bound;
          Alcotest.test_case "borrowed scans happen" `Quick test_borrowed_scans_happen;
          Alcotest.test_case "single-writer enforced" `Quick
            test_single_writer_enforced;
        ] );
      ( "linearizability",
        [ Alcotest.test_case "30 fixed seeds" `Quick test_linearizable_fixed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_linearizable; prop_deterministic ]
      );
    ]
