open Rsim_value
open Rsim_shmem
open Rsim_augmented
open Rsim_explore

module Faults = Rsim_faults.Faults

let get_builtin ?inject ?faults ?oracles ?unsound_indep name ~f ~m =
  match
    Explore.Aug_target.builtin ?inject ?faults ?oracles ?unsound_indep ~name
      ~f ~m ()
  with
  | Some w -> w
  | None -> Alcotest.failf "unknown builtin workload %s" name

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let any_error ~sub (errors : string list) = List.exists (contains ~sub) errors

(* ---- exhaustive: Theorem 20 over ALL schedules ---- *)

let test_theorem20_exhaustive () =
  (* The acceptance check of the explorer: every schedule of two
     conflicting Block-Updates (f=2, m=2) up to 10 steps satisfies the
     full §3 spec — in particular Theorem 20: process 0 never yields. *)
  let w = get_builtin "bu-conflict" ~f:2 ~m:2 in
  (* Pruning off: this test is about enumerating the literal full space,
     so the coverage thresholds below count every interleaving. *)
  let rep =
    Explore.exhaustive ~max_steps:10 ~dedup:false ~independence:false w
  in
  Alcotest.(check (list (list int)))
    "no violations over all schedules" []
    (List.map (fun v -> v.Explore.script) rep.Explore.violations);
  Alcotest.(check bool)
    (Printf.sprintf "substantial coverage (%d executions, %d prefixes)"
       (rep.Explore.complete + rep.Explore.truncated)
       rep.Explore.prefixes)
    true
    (rep.Explore.complete + rep.Explore.truncated >= 500
    && rep.Explore.prefixes >= 1000)

let test_exhaustive_completes_at_12 () =
  (* At 12 steps both Block-Updates can finish (6 H-operations each), so
     the DFS must report complete executions — still violation-free. *)
  let w = get_builtin "bu-conflict" ~f:2 ~m:2 in
  let rep = Explore.exhaustive ~max_steps:12 w in
  Alcotest.(check int) "no violations" 0 (List.length rep.Explore.violations);
  Alcotest.(check bool) "some executions complete" true (rep.Explore.complete > 0)

let test_preemption_bound () =
  (* Context bounding: bound 0 explores only non-preemptive schedules, a
     tiny violation-free fragment of the full space. *)
  let w = get_builtin "bu-conflict" ~f:2 ~m:2 in
  let full = Explore.exhaustive ~max_steps:12 w in
  let np = Explore.exhaustive ~max_steps:12 ~preemption_bound:0 w in
  Alcotest.(check int) "no violations" 0 (List.length np.Explore.violations);
  Alcotest.(check bool) "bound-0 explores something" true (np.Explore.complete > 0);
  Alcotest.(check bool)
    (Printf.sprintf "bound 0 is a strict fragment (%d < %d prefixes)"
       np.Explore.prefixes full.Explore.prefixes)
    true
    (np.Explore.prefixes < full.Explore.prefixes)

(* ---- seeded bugs: the checker must catch, shrink, persist, replay ---- *)

let test_seeded_yield_on_higher () =
  (* Mutating Line 9 of Algorithm 4 to yield on HIGHER-identifier
     updates breaks Theorem 20 (process 0 now yields). The explorer must
     catch it, and the shrunk counterexample must be 1-minimal: removing
     any single step makes the script pass again. *)
  (* Judged by the Theorem 20 oracle alone: the injected bug also breaks
     the window lemmas, and which counterexample surfaces first depends
     on the engine's merge order. Pruning stays on (defaults): this test
     doubles as dedup-soundness evidence for the seeded bug. *)
  let w =
    get_builtin ~inject:Aug.Yield_on_higher
      ~oracles:[ Explore.Aug_target.theorem20 ]
      "bu-conflict" ~f:2 ~m:2
  in
  let rep = Explore.exhaustive ~max_steps:12 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "seeded yield-on-higher bug was not caught"
  | v :: _ ->
    Alcotest.(check bool) "errors blame Theorem 20" true
      (any_error ~sub:"Theorem 20" v.Explore.errors
      || any_error ~sub:"theorem20" v.Explore.errors);
    Alcotest.(check bool) "shrunk no longer than original" true
      (List.length v.Explore.script <= List.length v.Explore.original);
    let replayed = Explore.replay w ~max_steps:12 ~script:v.Explore.script in
    Alcotest.(check bool) "shrunk script still fails" true
      (replayed.Explore.errors <> []);
    List.iteri
      (fun i _ ->
        let script = List.filteri (fun j _ -> j <> i) v.Explore.script in
        let out = Explore.replay w ~max_steps:12 ~script in
        Alcotest.(check (list string))
          (Printf.sprintf "dropping step %d makes it pass (1-minimal)" i)
          [] out.Explore.errors)
      v.Explore.script

let test_seeded_bug_artifact_roundtrip () =
  (* The full pipeline of the issue's acceptance criterion: catch the
     seeded bug, persist the shrunk counterexample as a JSON artifact,
     reload it from disk, rebuild the workload (including the injected
     fault), and reproduce the violation from the artifact alone. *)
  let w =
    get_builtin ~inject:Aug.Yield_on_higher
      ~oracles:[ Explore.Aug_target.theorem20 ]
      "bu-conflict" ~f:2 ~m:2
  in
  let rep = Explore.exhaustive ~max_steps:12 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "seeded bug not caught"
  | v :: _ -> (
    let art = Artifact.of_violation ~workload:w ~max_steps:12 v in
    let path = Filename.temp_file "rsim-cex" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Artifact.save ~path art;
        match Artifact.load ~path with
        | Error e -> Alcotest.failf "artifact failed to load: %s" e
        | Ok art' -> (
          Alcotest.(check (list int)) "script survives the round trip"
            art.Artifact.script art'.Artifact.script;
          Alcotest.(check (option string)) "fault survives the round trip"
            (Some "yield-on-higher") art'.Artifact.inject;
          match Artifact.to_workload art' with
          | Error e -> Alcotest.failf "artifact failed to rebuild: %s" e
          | Ok w' ->
            let out =
              Explore.replay w' ~max_steps:art'.Artifact.max_steps
                ~script:art'.Artifact.script
            in
            Alcotest.(check bool) "replay from artifact reproduces" true
              (out.Explore.errors <> []);
            Alcotest.(check bool) "replay blames Theorem 20" true
              (any_error ~sub:"Theorem 20" out.Explore.errors
              || any_error ~sub:"theorem20" out.Explore.errors))))

let test_seeded_skip_yield_check () =
  (* Skipping Line 9 entirely lets a Block-Update return a stale view
     under contention; the window lemmas (16-19) or Lemma 11 must flag
     it once both conflicting Block-Updates can complete (12 steps). *)
  let w = get_builtin ~inject:Aug.Skip_yield_check "bu-conflict" ~f:2 ~m:2 in
  let rep = Explore.exhaustive ~max_steps:12 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "seeded skip-yield-check bug was not caught"
  | v :: _ ->
    Alcotest.(check bool) "errors blame a lemma" true
      (any_error ~sub:"Lemma" v.Explore.errors)

let test_json_roundtrip_is_identity () =
  let art =
    {
      Artifact.version = Artifact.current_version;
      workload = "bu-scan";
      params = [ ("f", 3); ("m", 2) ];
      inject = None;
      faults = Some "crash@1:3,stall@0:2*4";
      max_steps = 40;
      errors = [ "spec: \"quoted\" error\nwith a newline"; "plain" ];
      original = [ 0; 1; 2; 1; 0 ];
      script = [ 1; 0 ];
    }
  in
  match Artifact.of_json (Artifact.to_json art) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok art' ->
    Alcotest.(check bool) "write/parse is the identity" true (art = art')

(* ---- parallel randomized sweeps ---- *)

let test_sweep_clean () =
  let w = get_builtin "mixed" ~f:3 ~m:2 in
  let rep = Explore.sweep ~domains:2 ~max_steps:200 ~budget:200 ~seed:5 w in
  Alcotest.(check int) "no violations" 0 (List.length rep.Explore.violations);
  Alcotest.(check int) "whole budget executed" 200 rep.Explore.executions;
  Alcotest.(check int) "ran on 2 domains" 2 rep.Explore.domains

let test_sweep_finds_seeded_bug () =
  let w = get_builtin ~inject:Aug.Yield_on_higher "bu-conflict" ~f:3 ~m:2 in
  let rep = Explore.sweep ~domains:2 ~max_steps:100 ~budget:500 ~seed:1 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "sweep missed the seeded bug"
  | v :: _ ->
    Alcotest.(check bool) "errors blame Theorem 20" true
      (any_error ~sub:"Theorem 20" v.Explore.errors
      || any_error ~sub:"theorem20" v.Explore.errors);
    let out = Explore.replay w ~max_steps:100 ~script:v.Explore.script in
    Alcotest.(check bool) "shrunk sweep counterexample replays" true
      (out.Explore.errors <> [])

(* ---- crash faults: Corollary 15 for the survivors ---- *)

(* q1 starts a Block-Update of component 0 and crashes after
   [crash_after] H-operations (with_crashes removes it from the live
   set); q0 then Scans. Step 1 of the Block-Update is its Line-2 scan,
   step 2 the Line-4 append of the timestamped triples (the paper's X):
   crashing before X hides the update, crashing after exposes it. *)
let crash_run ~crash_after =
  let seen = ref [||] in
  let aug = Aug.create ~f:2 ~m:2 () in
  let sched =
    Schedule.with_crashes
      [ (1, crash_after) ]
      (Schedule.script (List.init 6 (fun _ -> 1) @ List.init 12 (fun _ -> 0)))
  in
  let result =
    Aug.F.run ~sched ~apply:(Aug.apply aug)
      [
        (fun _ -> seen := Aug.scan aug ~me:0);
        (fun _ -> ignore (Aug.block_update aug ~me:1 [ (0, Value.Int 42) ]));
      ]
  in
  Alcotest.(check bool) "q1 crashed mid-operation" true
    (result.Aug.F.statuses.(1) = Rsim_runtime.Fiber.Pending);
  Alcotest.(check bool) "q0 survived" true
    (result.Aug.F.statuses.(0) = Rsim_runtime.Fiber.Done);
  (aug, result, !seen)

let check_crash_spec name aug (result : Aug.F.result) =
  (* The survivor's Scans must satisfy the spec — Corollary 15 in
     particular: every pair of views is comparable, later scans dominate
     earlier ones — even with a crashed Block-Update in the history. *)
  let report = Aug_spec.check aug result.Aug.F.trace in
  if not report.Aug_spec.ok then
    Alcotest.failf "%s: spec violations on crashy run:@.%a" name
      Aug_spec.pp_report report

let test_crash_before_x () =
  let aug, result, seen = crash_run ~crash_after:1 in
  Alcotest.(check bool) "update invisible before X" true (Value.is_bot seen.(0));
  check_crash_spec "crash pre-X" aug result;
  let spec, entries = Explore.mop_history aug result.Aug.F.trace in
  Alcotest.(check bool) "pending update droppable: history linearizable" true
    (Linearize.check spec entries)

let test_crash_after_x () =
  let aug, result, seen = crash_run ~crash_after:2 in
  Alcotest.(check bool) "update visible after X" true
    (Value.equal seen.(0) (Value.Int 42));
  check_crash_spec "crash post-X" aug result;
  let spec, entries = Explore.mop_history aug result.Aug.F.trace in
  Alcotest.(check bool) "crashed Block-Update left a pending entry" true
    (List.exists (fun (e : _ Linearize.entry) -> e.Linearize.ret = None) entries);
  Alcotest.(check bool) "pending update takes effect: history linearizable" true
    (Linearize.check spec entries)

let test_crash_spec_across_cutoffs () =
  (* Crash q1 at every point of its Block-Update: the survivor's view of
     the world must satisfy the spec at each cutoff. *)
  for crash_after = 1 to 5 do
    let aug, result, _ = crash_run ~crash_after in
    check_crash_spec (Printf.sprintf "crash after %d" crash_after) aug result
  done

(* ---- fault plane: injected crashes, drops, blocking bugs ---- *)

let test_exhaustive_crash_at_every_step () =
  (* The issue's acceptance criterion: exhaustive f=2 m=2 exploration
     with one injected crash at every possible (process, op-index) — the
     full spec, the progress oracle and the crash-robustness oracle must
     all stay green. A Block-Update is 6 H-operations, so every crash
     site is some [crash@pid:k] with k in 0..5. *)
  let total = ref 0 in
  for pid = 0 to 1 do
    for k = 0 to 5 do
      let faults = [ { Faults.pid; at_op = k; action = Faults.Crash } ] in
      let w =
        get_builtin ~faults
          ~oracles:
            Explore.Aug_target.(default_oracles @ [ crash_robust ])
          "bu-conflict" ~f:2 ~m:2
      in
      let rep = Explore.exhaustive ~max_steps:12 w in
      (match rep.Explore.violations with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "crash@%d:%d violates: %s" pid k
          (String.concat "; " v.Explore.errors));
      total := !total + rep.Explore.complete + rep.Explore.truncated
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "substantial coverage (%d executions)" !total)
    true (!total > 2_000)

let test_progress_catches_spin_on_yield () =
  (* Seeded blocking bug: [Spin_on_yield] makes the Block-Update busy-wait
     instead of yielding when a lower-identifier update intervenes — no
     safety oracle can see it (nothing wrong is ever written), only the
     progress oracle. On this script q1 scans Line 2, q0 appends its X,
     and q1 then spins forever. *)
  let w = get_builtin ~inject:Aug.Spin_on_yield "bu-conflict" ~f:2 ~m:2 in
  let script = [ 1; 0; 0 ] @ List.init 60 (fun _ -> 1) in
  let out = Explore.replay w ~max_steps:100 ~script in
  Alcotest.(check bool) "progress oracle fires" true
    (any_error ~sub:"progress" out.Explore.errors);
  Alcotest.(check bool) "blamed as blocking" true
    (any_error ~sub:"blocking" out.Explore.errors)

let test_sweep_finds_spin_on_yield () =
  (* The randomized sweep must find the blocking bug on its own, shrink
     it to a 1-minimal script, and the artifact must reproduce it. *)
  let w = get_builtin ~inject:Aug.Spin_on_yield "bu-conflict" ~f:2 ~m:2 in
  let rep = Explore.sweep ~domains:2 ~max_steps:120 ~budget:400 ~seed:3 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "sweep missed the seeded blocking bug"
  | v :: _ ->
    Alcotest.(check bool) "errors blame progress" true
      (any_error ~sub:"progress" v.Explore.errors);
    List.iteri
      (fun i _ ->
        let script = List.filteri (fun j _ -> j <> i) v.Explore.script in
        let out = Explore.replay w ~max_steps:120 ~script in
        Alcotest.(check (list string))
          (Printf.sprintf "dropping step %d makes it pass (1-minimal)" i)
          [] out.Explore.errors)
      v.Explore.script;
    let art = Artifact.of_violation ~workload:w ~max_steps:120 v in
    let path = Filename.temp_file "rsim-spin" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Artifact.save ~path art;
        match Artifact.load ~path with
        | Error e -> Alcotest.failf "artifact failed to load: %s" e
        | Ok art' -> (
          Alcotest.(check (option string)) "inject survives the round trip"
            (Some "spin-on-yield") art'.Artifact.inject;
          match Artifact.to_workload art' with
          | Error e -> Alcotest.failf "artifact failed to rebuild: %s" e
          | Ok w' ->
            let out =
              Explore.replay w' ~max_steps:art'.Artifact.max_steps
                ~script:art'.Artifact.script
            in
            Alcotest.(check bool) "replay from artifact reproduces" true
              (any_error ~sub:"progress" out.Explore.errors)))

let test_dropped_helping_write_caught () =
  (* Seeded dropped-write fault: [drop@1:3] swallows q1's Line-7 helping
     append (its L-records) while q1 itself carries on none the wiser.
     Concurrent Block-Updates then disagree about the linearization
     window, which the window lemmas (18/19) flag. The counterexample
     must shrink 1-minimal, persist with its fault profile, and replay
     from the artifact alone. *)
  let faults =
    match Faults.of_string "drop@1:3" with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "fault grammar rejected drop@1:3: %s" e
  in
  let w = get_builtin ~faults "bu-conflict" ~f:2 ~m:2 in
  let rep = Explore.exhaustive ~max_steps:14 w in
  match rep.Explore.violations with
  | [] -> Alcotest.fail "dropped helping write was not caught"
  | v :: _ ->
    Alcotest.(check bool) "errors blame a window lemma" true
      (any_error ~sub:"Lemma" v.Explore.errors);
    List.iteri
      (fun i _ ->
        let script = List.filteri (fun j _ -> j <> i) v.Explore.script in
        let out = Explore.replay w ~max_steps:14 ~script in
        Alcotest.(check (list string))
          (Printf.sprintf "dropping step %d makes it pass (1-minimal)" i)
          [] out.Explore.errors)
      v.Explore.script;
    let art = Artifact.of_violation ~workload:w ~max_steps:14 v in
    Alcotest.(check (option string)) "artifact carries the fault profile"
      (Some "drop@1:3") art.Artifact.faults;
    let path = Filename.temp_file "rsim-drop" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Artifact.save ~path art;
        match Artifact.load ~path with
        | Error e -> Alcotest.failf "artifact failed to load: %s" e
        | Ok art' -> (
          Alcotest.(check (option string)) "fault survives the round trip"
            (Some "drop@1:3") art'.Artifact.faults;
          match Artifact.to_workload art' with
          | Error e -> Alcotest.failf "artifact failed to rebuild: %s" e
          | Ok w' ->
            let out =
              Explore.replay w' ~max_steps:art'.Artifact.max_steps
                ~script:art'.Artifact.script
            in
            Alcotest.(check bool) "replay from artifact reproduces" true
              (any_error ~sub:"Lemma" out.Explore.errors)))

let test_racing_crashy_survivors () =
  (* Crash one simulator of the Theorem 21 simulation: with the
     survivors-only consensus oracle and the progress oracle the sweep
     must stay green — the crash model is survivable by design. *)
  let faults = Faults.resolve ~n_procs:2 ~seed:11 "crashy" in
  let faults =
    match faults with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "crashy profile failed to resolve: %s" e
  in
  let w = Explore.Harness_target.racing ~faults ~n:4 ~m:2 ~f:2 ~d:0 () in
  let rep = Explore.sweep ~domains:2 ~max_steps:400 ~budget:60 ~seed:7 w in
  Alcotest.(check (list (list int)))
    "crashy racing sweep is violation-free" []
    (List.map (fun v -> v.Explore.script) rep.Explore.violations)

(* ---- artifact versioning ---- *)

let test_artifact_v1_backward_compat () =
  (* A pre-versioned (v1) artifact — no "version", no "faults" — must
     still load, as version 1 with an empty fault profile. *)
  let v1_json =
    {|{
  "workload": "bu-conflict",
  "params": {"f": 2, "m": 2},
  "inject": "yield-on-higher",
  "max_steps": 12,
  "errors": ["theorem20: process 0 yielded"],
  "original": [0, 1, 1, 0],
  "script": [0, 1]
}|}
  in
  match Artifact.of_json v1_json with
  | Error e -> Alcotest.failf "v1 artifact failed to load: %s" e
  | Ok art ->
    Alcotest.(check int) "read as version 1" 1 art.Artifact.version;
    Alcotest.(check (option string)) "no fault profile" None art.Artifact.faults;
    Alcotest.(check bool) "workload still rebuilds" true
      (Result.is_ok (Artifact.to_workload art))

let test_artifact_unsupported_version () =
  (* An artifact from a newer writer must be refused with a distinct
     error (the CLI turns this into exit code 2, not 1). *)
  let art =
    {
      Artifact.version = 99;
      workload = "bu-conflict";
      params = [ ("f", 2); ("m", 2) ];
      inject = None;
      faults = None;
      max_steps = 12;
      errors = [];
      original = [];
      script = [];
    }
  in
  match Artifact.of_json (Artifact.to_json art) with
  | Ok _ -> Alcotest.fail "version 99 artifact should not load"
  | Error e ->
    Alcotest.(check bool) "error names the unsupported version" true
      (contains ~sub:"unsupported artifact version" e)

let test_artifact_load_unreadable () =
  (* Unreadable paths must come back as [Error] (the CLI's exit 2), not
     as a raised exception: a directory... *)
  let dir = Filename.temp_file "rsim_artifact" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> Sys.rmdir dir)
    (fun () ->
      match Artifact.load ~path:dir with
      | Ok _ -> Alcotest.fail "loading a directory should fail"
      | Error e ->
        Alcotest.(check bool) "error names the directory" true
          (contains ~sub:"is a directory" e));
  (* ... a missing file ... *)
  (match Artifact.load ~path:(Filename.concat dir "gone.json") with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ());
  (* ... and malformed JSON. *)
  let bad = Filename.temp_file "rsim_artifact" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "{ not json";
      close_out oc;
      match Artifact.load ~path:bad with
      | Ok _ -> Alcotest.fail "malformed JSON should fail"
      | Error _ -> ())

(* ---- parallel engine: equivalence, dedup soundness, clamps ---- *)

let counts (r : Explore.exhaustive_report) =
  (r.Explore.complete, r.Explore.truncated, r.Explore.prefixes)

let scripts (r : Explore.exhaustive_report) =
  List.sort compare (List.map (fun v -> v.Explore.script) r.Explore.violations)

let clean_workload () = get_builtin "bu-conflict" ~f:2 ~m:2

let seeded_workload () =
  get_builtin ~inject:Aug.Yield_on_higher
    ~oracles:[ Explore.Aug_target.theorem20 ]
    "bu-conflict" ~f:2 ~m:2

let test_engine_matches_naive () =
  (* With pruning off and one domain the parallel engine must walk the
     exact tree the pre-PR sequential DFS walked: same complete and
     truncated counts, same prefix count, same violation set. The huge
     [max_violations] keeps both engines from stopping early, so the
     traversals are comparable. *)
  let check name w =
    let naive = Explore.exhaustive_naive ~max_steps:9 ~max_violations:10_000 w in
    let engine =
      Explore.exhaustive ~max_steps:9 ~max_violations:10_000 ~domains:1
        ~dedup:false ~independence:false w
    in
    Alcotest.(check (triple int int int))
      (name ^ ": counts match naive") (counts naive) (counts engine);
    Alcotest.(check (list (list int)))
      (name ^ ": violation scripts match naive")
      (scripts naive) (scripts engine)
  in
  check "clean" (clean_workload ());
  check "seeded" (seeded_workload ())

let test_domain_count_invariance () =
  (* Pruning off fixes the tree; the report must then be bit-identical
     at 1, 2 and 4 domains — counts and violation set both. *)
  let run w d =
    Explore.exhaustive ~max_steps:9 ~max_violations:10_000 ~domains:d
      ~dedup:false ~independence:false w
  in
  let invariant name w =
    let r1 = run w 1 in
    List.iter
      (fun d ->
        let r = run w d in
        Alcotest.(check (triple int int int))
          (Printf.sprintf "%s: counts at %d domains" name d)
          (counts r1) (counts r);
        Alcotest.(check (list (list int)))
          (Printf.sprintf "%s: violations at %d domains" name d)
          (scripts r1) (scripts r))
      [ 2; 4 ]
  in
  invariant "clean" (clean_workload ());
  invariant "seeded" (seeded_workload ())

let test_dedup_soundness () =
  (* State dedup and sleep-set independence may only cut redundant
     branches: the injected bug must still be caught with both on (the
     defaults), and the pruned tree must be domain-count invariant too
     (exactly one winner per claim key, so the cuts are deterministic). *)
  let run d = Explore.exhaustive ~max_steps:10 ~domains:d (seeded_workload ()) in
  let rep = run 1 in
  Alcotest.(check bool) "bug caught with pruning on" true
    (rep.Explore.violations <> []);
  Alcotest.(check bool)
    (Printf.sprintf "pruning actually fired (%d dedup hits, %d sleep prunes)"
       rep.Explore.dedup_hits rep.Explore.pruned)
    true
    (rep.Explore.dedup_hits > 0);
  List.iter
    (fun v ->
      Alcotest.(check bool) "blames Theorem 20" true
        (any_error ~sub:"theorem20" v.Explore.errors))
    rep.Explore.violations;
  let r4 = run 4 in
  Alcotest.(check (list (list int)))
    "pruned violation set invariant at 4 domains" (scripts rep) (scripts r4)

let test_sweep_domain_clamp () =
  (* Tiny budgets must not spawn idle domains. *)
  let rep =
    Explore.sweep ~budget:2 ~domains:8 ~seed:7 (clean_workload ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "domains clamped to budget (%d <= 2)" rep.Explore.domains)
    true
    (rep.Explore.domains <= 2);
  Alcotest.(check int) "budget honored" 2 rep.Explore.executions

(* ---- linearizable oracle over full explorations ---- *)

let test_linearizable_oracle_exhaustive () =
  (* Check Wing-Gong linearizability of the M-operation history on every
     schedule (complete or truncated) of BU-vs-Scan. *)
  let w =
    get_builtin
      ~oracles:[ Explore.Aug_target.no_failure; Explore.Aug_target.linearizable ]
      "bu-scan" ~f:2 ~m:2
  in
  let rep = Explore.exhaustive ~max_steps:9 w in
  Alcotest.(check int) "all histories linearizable" 0
    (List.length rep.Explore.violations);
  Alcotest.(check bool) "covered executions" true
    (rep.Explore.complete + rep.Explore.truncated > 50)

(* ---- happens-before race oracle + sleep-set certification ---- *)

let test_race_oracle_catches () =
  (* [Skip_yield_check] makes a Block-Update return Atomic even when a
     lower-identifier process appended conflicting triples inside its
     window — exactly the unserializable overlap the vector-clock race
     oracle flags. The counterexample must shrink and replay. *)
  let w =
    get_builtin ~inject:Aug.Skip_yield_check
      ~oracles:[ Explore.Aug_target.race ]
      "bu-conflict" ~f:2 ~m:2
  in
  let rep = Explore.exhaustive ~max_steps:12 w in
  Alcotest.(check bool) "racy schedule caught" true
    (rep.Explore.violations <> []);
  let v = List.hd rep.Explore.violations in
  Alcotest.(check bool) "blamed on the race oracle" true
    (any_error ~sub:"race:" v.Explore.errors);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk (%d <= %d steps)"
       (List.length v.Explore.script)
       (List.length v.Explore.original))
    true
    (List.length v.Explore.script <= List.length v.Explore.original);
  (* deterministic replay of the shrunk script reproduces the race *)
  let out = Explore.replay w ~max_steps:12 ~script:v.Explore.script in
  Alcotest.(check bool) "replay reproduces the race" true
    (any_error ~sub:"race:" out.Explore.errors)

let test_race_oracle_clean () =
  (* On the clean object the Line-9 yield rule forbids exactly the
     overlap the oracle checks for: zero findings over every schedule,
     pruning off so the literal space is covered. *)
  let w =
    get_builtin ~oracles:[ Explore.Aug_target.race ] "bu-conflict" ~f:2 ~m:2
  in
  let rep =
    Explore.exhaustive ~max_steps:10 ~dedup:false ~independence:false w
  in
  Alcotest.(check int) "race-free" 0 (List.length rep.Explore.violations);
  Alcotest.(check bool) "covered the space" true
    (rep.Explore.complete + rep.Explore.truncated >= 500)

let test_certify_clean () =
  (* --certify-independence over the Theorem 20 workload: every claimed
     commutation must validate. bu-conflict never claims (conflicting
     appends are never independent); bu-then-scan does, so it pins
     checks > 0. *)
  let rep =
    Explore.exhaustive ~max_steps:12 ~certify:true
      (get_builtin "bu-conflict" ~f:2 ~m:2)
  in
  Alcotest.(check int) "no violations" 0 (List.length rep.Explore.violations);
  Alcotest.(check int) "zero HB violations" 0 rep.Explore.certify_violations;
  let rep' =
    Explore.exhaustive ~max_steps:12 ~certify:true
      (get_builtin "bu-then-scan" ~f:2 ~m:2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disjoint workload exercises claims (%d checks)"
       rep'.Explore.certify_checks)
    true
    (rep'.Explore.certify_checks > 0);
  Alcotest.(check int) "and they all validate" 0
    rep'.Explore.certify_violations

let test_certify_catches_unsound_indep () =
  (* The deliberately wrong relation "any two distinct pids commute"
     makes the engine sleep conflicting Block-Updates on each other;
     certification must observe their real footprints (appends to the
     same component) and count violations. *)
  let rep =
    Explore.exhaustive ~max_steps:12 ~certify:true
      (get_builtin ~unsound_indep:true "bu-conflict" ~f:2 ~m:2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "unsound prunes detected (%d/%d claims)"
       rep.Explore.certify_violations rep.Explore.certify_checks)
    true
    (rep.Explore.certify_violations > 0);
  (* off switch: the same workload without certification reports zeros *)
  let rep' =
    Explore.exhaustive ~max_steps:12
      (get_builtin ~unsound_indep:true "bu-conflict" ~f:2 ~m:2)
  in
  Alcotest.(check int) "no checks when off" 0 rep'.Explore.certify_checks

let () =
  Alcotest.run "explore"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "Theorem 20 over all schedules" `Quick
            test_theorem20_exhaustive;
          Alcotest.test_case "complete executions at 12 steps" `Quick
            test_exhaustive_completes_at_12;
          Alcotest.test_case "preemption bounding" `Quick test_preemption_bound;
        ] );
      ( "seeded bugs",
        [
          Alcotest.test_case "yield-on-higher caught + 1-minimal shrink" `Quick
            test_seeded_yield_on_higher;
          Alcotest.test_case "artifact save/load/replay" `Quick
            test_seeded_bug_artifact_roundtrip;
          Alcotest.test_case "skip-yield-check caught" `Quick
            test_seeded_skip_yield_check;
          Alcotest.test_case "artifact JSON round trip" `Quick
            test_json_roundtrip_is_identity;
        ] );
      ( "parallel engine",
        [
          Alcotest.test_case "engine matches naive DFS" `Quick
            test_engine_matches_naive;
          Alcotest.test_case "report invariant at 1/2/4 domains" `Quick
            test_domain_count_invariance;
          Alcotest.test_case "dedup + sleep sets stay sound" `Quick
            test_dedup_soundness;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "clean workload, clean sweep" `Quick test_sweep_clean;
          Alcotest.test_case "sweep finds seeded bug" `Quick
            test_sweep_finds_seeded_bug;
          Alcotest.test_case "domains clamped to budget" `Quick
            test_sweep_domain_clamp;
        ] );
      ( "crash faults",
        [
          Alcotest.test_case "crash before X hides the update" `Quick
            test_crash_before_x;
          Alcotest.test_case "crash after X exposes the update" `Quick
            test_crash_after_x;
          Alcotest.test_case "spec holds at every cutoff" `Quick
            test_crash_spec_across_cutoffs;
        ] );
      ( "fault plane",
        [
          Alcotest.test_case "crash at every step stays green" `Quick
            test_exhaustive_crash_at_every_step;
          Alcotest.test_case "progress oracle catches spin-on-yield" `Quick
            test_progress_catches_spin_on_yield;
          Alcotest.test_case "sweep finds + shrinks + replays spin-on-yield"
            `Quick test_sweep_finds_spin_on_yield;
          Alcotest.test_case "dropped helping write caught + replayed" `Quick
            test_dropped_helping_write_caught;
          Alcotest.test_case "crashy racing sweep, survivors green" `Quick
            test_racing_crashy_survivors;
        ] );
      ( "artifact versioning",
        [
          Alcotest.test_case "v1 artifact still loads" `Quick
            test_artifact_v1_backward_compat;
          Alcotest.test_case "unreadable paths are Error, not raise" `Quick
            test_artifact_load_unreadable;
          Alcotest.test_case "newer version refused" `Quick
            test_artifact_unsupported_version;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "BU vs Scan histories" `Quick
            test_linearizable_oracle_exhaustive;
        ] );
      ( "race + certify",
        [
          Alcotest.test_case "race oracle catches skip-yield-check" `Quick
            test_race_oracle_catches;
          Alcotest.test_case "race oracle clean on the clean object" `Quick
            test_race_oracle_clean;
          Alcotest.test_case "certify-independence clean on Theorem 20" `Quick
            test_certify_clean;
          Alcotest.test_case "certify catches an unsound independence" `Quick
            test_certify_catches_unsound_indep;
        ] );
    ]
