(* The observability plane: JSON round-trips, histogram bucket
   boundaries, counter atomicity under Domain parallelism, trace-buffer
   validity (everything we emit parses back), and the no-allocation
   guarantee on the always-on fast path. *)

module Obs = Rsim_obs.Obs
module J = Obs.Json

(* ---------------- JSON ---------------- *)

let roundtrip j =
  match J.parse (J.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "parse error on %s: %s" (J.to_string j) e

let test_json_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 0.5;
      J.Str "";
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r quotes";
      J.Str "control \001 \031 bytes";
      J.Arr [];
      J.Arr [ J.Int 1; J.Str "two"; J.Null ];
      J.Obj [];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.Arr [ J.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      if roundtrip j <> j then
        Alcotest.failf "round-trip changed %s" (J.to_string j))
    samples;
  (* pretty rendering parses back to the same value too *)
  let big = J.Obj [ ("xs", J.Arr [ J.Int 1; J.Int 2 ]); ("s", J.Str "hi") ] in
  (match J.parse (J.to_string_pretty big) with
  | Ok j -> Alcotest.(check bool) "pretty round-trip" true (j = big)
  | Error e -> Alcotest.fail e);
  (* non-finite floats become null *)
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float nan))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "parsed garbage %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_member () =
  let j = J.Obj [ ("a", J.Int 1); ("b", J.Str "x") ] in
  Alcotest.(check bool) "member a" true (J.member "a" j = Some (J.Int 1));
  Alcotest.(check bool) "member missing" true (J.member "c" j = None);
  Alcotest.(check bool) "member of non-obj" true (J.member "a" (J.Int 3) = None)

(* ---------------- histogram buckets ---------------- *)

let test_bucket_boundaries () =
  let cases =
    [
      (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4);
      (1024, 10); (1025, 11); ((1 lsl 30) - 1, 30); (1 lsl 30, 30);
      ((1 lsl 30) + 1, 31); (max_int, 31);
    ]
  in
  List.iter
    (fun (v, want) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %d" v)
        want (Obs.Metrics.bucket_index v))
    cases;
  Alcotest.(check int) "n_buckets" 32 Obs.Metrics.n_buckets;
  (* every non-overflow bucket's upper bound maps back to that bucket,
     and one more maps to the next *)
  for i = 0 to Obs.Metrics.n_buckets - 2 do
    match Obs.Metrics.bucket_upper_bound i with
    | None -> Alcotest.failf "bucket %d has no upper bound" i
    | Some ub ->
      Alcotest.(check int) (Printf.sprintf "ub(%d) self" i) i
        (Obs.Metrics.bucket_index ub);
      if i < Obs.Metrics.n_buckets - 2 then
        Alcotest.(check int)
          (Printf.sprintf "ub(%d)+1 next" i)
          (i + 1)
          (Obs.Metrics.bucket_index (ub + 1))
  done;
  Alcotest.(check bool) "overflow unbounded" true
    (Obs.Metrics.bucket_upper_bound (Obs.Metrics.n_buckets - 1) = None)

let test_histogram_observe () =
  let h = Obs.Metrics.histogram "t.hist.observe" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 4; 1000; 1 lsl 40 ];
  Alcotest.(check int) "count" 7 (Obs.Metrics.histogram_count h);
  Alcotest.(check int) "sum" (10 + 1000 + (1 lsl 40)) (Obs.Metrics.histogram_sum h);
  let counts = Obs.Metrics.histogram_counts h in
  Alcotest.(check int) "bucket 0 (v<=1)" 2 counts.(0);
  Alcotest.(check int) "bucket 1 (v=2)" 1 counts.(1);
  Alcotest.(check int) "bucket 2 (3..4)" 2 counts.(2);
  Alcotest.(check int) "bucket 10 (1000)" 1 counts.(10);
  Alcotest.(check int) "overflow" 1 counts.(Obs.Metrics.n_buckets - 1)

(* ---------------- registry ---------------- *)

let test_registry () =
  let c = Obs.Metrics.counter "t.reg.c" in
  let c' = Obs.Metrics.counter "t.reg.c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c' 4;
  Alcotest.(check int) "idempotent registration" 5 (Obs.Metrics.counter_value c);
  (match Obs.Metrics.gauge "t.reg.c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not rejected");
  let g = Obs.Metrics.gauge "t.reg.g" in
  Obs.Metrics.set g 7;
  Obs.Metrics.set g (-3);
  Alcotest.(check int) "gauge last-wins" (-3) (Obs.Metrics.gauge_value g)

let test_metrics_json () =
  let c = Obs.Metrics.counter "t.json.c" in
  let h = Obs.Metrics.histogram "t.json.h" in
  Obs.Metrics.add c 9;
  Obs.Metrics.observe h 3;
  let j = Obs.Metrics.to_json () in
  (* the dump itself is valid JSON *)
  (match J.parse (J.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics dump does not parse: %s" e);
  let counters = Option.get (J.member "counters" j) in
  Alcotest.(check bool) "counter in dump" true
    (J.member "t.json.c" counters = Some (J.Int 9));
  let hist = Option.get (J.member "t.json.h" (Option.get (J.member "histograms" j))) in
  Alcotest.(check bool) "hist count" true (J.member "count" hist = Some (J.Int 1));
  Alcotest.(check bool) "hist buckets non-empty only" true
    (J.member "buckets" hist = Some (J.Arr [ J.Arr [ J.Int 4; J.Int 1 ] ]))

(* ---------------- Domain parallelism ---------------- *)

let test_counter_atomicity () =
  let c = Obs.Metrics.counter "t.par.c" in
  let h = Obs.Metrics.histogram "t.par.h" in
  let before = Obs.Metrics.counter_value c in
  let hbefore = Obs.Metrics.histogram_count h in
  let per_domain = 100_000 and n_domains = 4 in
  let worker () =
    for i = 1 to per_domain do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (i land 1023)
    done
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments"
    (before + (n_domains * per_domain))
    (Obs.Metrics.counter_value c);
  Alcotest.(check int) "no lost observations"
    (hbefore + (n_domains * per_domain))
    (Obs.Metrics.histogram_count h)

(* ---------------- tracing ---------------- *)

let test_trace_roundtrip () =
  Obs.Trace.start ();
  Obs.Trace.instant ~name:"evt" ~pid:0 ~ts:1 ~args:[ ("k", J.Str "v") ] ();
  Obs.Trace.complete ~name:"span" ~pid:1 ~ts:2 ~dur:5 ();
  Obs.Trace.counter ~name:"ctr" ~pid:0 ~ts:3 ~value:42;
  Obs.Trace.stop ();
  Alcotest.(check int) "buffered" 3 (Obs.Trace.length ());
  (* the Chrome export parses back and has the right shape *)
  let j =
    match J.parse (J.to_string (Obs.Trace.to_chrome ())) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  in
  let evs =
    match J.member "traceEvents" j with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check int) "three events" 3 (List.length evs);
  List.iter
    (fun ev ->
      List.iter
        (fun field ->
          if J.member field ev = None then
            Alcotest.failf "event missing %s: %s" field (J.to_string ev))
        [ "name"; "ph"; "pid"; "tid"; "ts" ])
    evs;
  let phs =
    List.filter_map (fun ev -> J.member "ph" ev) evs
  in
  Alcotest.(check bool) "phases" true
    (phs = [ J.Str "i"; J.Str "X"; J.Str "C" ]);
  (* every JSONL line parses *)
  let lines =
    String.split_on_char '\n' (String.trim (Obs.Trace.to_jsonl ()))
  in
  Alcotest.(check int) "jsonl lines" 3 (List.length lines);
  List.iter
    (fun l ->
      match J.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad JSONL line %S: %s" l e)
    lines;
  Obs.Trace.clear ();
  Alcotest.(check int) "cleared" 0 (Obs.Trace.length ())

let test_trace_sampling () =
  Obs.Trace.start ~sample:4 ();
  for i = 0 to 15 do
    Obs.Trace.sampled_complete ~name:"op" ~pid:0 ~ts:i ~dur:1 ()
  done;
  Obs.Trace.instant ~name:"structural" ~pid:0 ~ts:99 ();
  Obs.Trace.stop ();
  (* 16 sampled events at 1-in-4, plus the always-kept instant *)
  Alcotest.(check int) "sampled" 5 (Obs.Trace.length ());
  Obs.Trace.clear ()

let test_trace_off_drops () =
  Obs.Trace.clear ();
  Alcotest.(check bool) "off by default" false (Obs.Trace.enabled ());
  Obs.Trace.instant ~name:"dropped" ~pid:0 ~ts:0 ();
  Obs.Trace.sampled_complete ~name:"dropped" ~pid:0 ~ts:0 ~dur:1 ();
  Alcotest.(check int) "nothing buffered" 0 (Obs.Trace.length ())

(* ---------------- no allocation when off ---------------- *)

(* The always-on instruments — counter increments, histogram
   observations, and the [Trace.enabled] guard — must not allocate, or
   they would perturb the GC behaviour of every run that is not being
   observed. [Gc.minor_words] itself boxes a float per call, so allow a
   few words of slack but nothing proportional to the loop. *)
let test_no_alloc_when_off () =
  let c = Obs.Metrics.counter "t.alloc.c" in
  let h = Obs.Metrics.histogram "t.alloc.h" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 17;
  ignore (Obs.Trace.enabled ());
  let n = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 0 to n - 1 do
    Obs.Metrics.incr c;
    Obs.Metrics.observe h i;
    if Obs.Trace.enabled () then
      Obs.Trace.sampled_complete ~name:"op" ~pid:0 ~ts:i ~dur:1 ()
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 64. then
    Alcotest.failf "fast path allocated %.0f minor words over %d iterations" dw n

(* ---------------- instrumented fast path ---------------- *)

(* Running an augmented-snapshot workload bumps the aug.* metrics: the
   instrumentation is live, not dead code. *)
let test_aug_counters_move () =
  let open Rsim_augmented in
  let c_bu = Obs.Metrics.counter "aug.bu.total" in
  let before = Obs.Metrics.counter_value c_bu in
  let aug = Aug.create ~f:2 ~m:2 () in
  ignore
    (Aug.F.run ~sched:Rsim_shmem.Schedule.round_robin ~apply:(Aug.apply aug)
       [
         (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Rsim_value.Value.Int 1) ]));
         (fun _ -> ignore (Aug.block_update aug ~me:1 [ (1, Rsim_value.Value.Int 2) ]));
       ]);
  Alcotest.(check int) "two block-updates counted" (before + 2)
    (Obs.Metrics.counter_value c_bu)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "json dump" `Quick test_metrics_json;
          Alcotest.test_case "counter atomicity (4 domains)" `Quick
            test_counter_atomicity;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome + jsonl round trip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "sampling" `Quick test_trace_sampling;
          Alcotest.test_case "off drops" `Quick test_trace_off_drops;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "no allocation when off" `Quick
            test_no_alloc_when_off;
          Alcotest.test_case "aug counters move" `Quick test_aug_counters_move;
        ] );
    ]
