(* rsim-lint engine tests (DESIGN §10): each fixture under
   lint_fixtures/ trips exactly its own rule once, the [@rsim.shared]
   annotation and the zone gates silence correctly, and the baseline
   machinery diffs by (rule, file, message). *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs us in test/; dune exec from the workspace root. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

(* Fixtures are plain source text; the synthetic [as_] path picks the
   zone the rules key on. *)
let lint_fixture ~as_ name =
  Lint.lint_source ~file:as_ (read (Filename.concat fixture_dir name))

let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs

let test_r1 () =
  let fs = lint_fixture ~as_:"lib/explore/fix.ml" "r1_bare_ref.ml" in
  Alcotest.(check (list string)) "exactly one R1" [ "R1" ] (rules fs);
  let f = List.hd fs in
  Alcotest.(check bool)
    "names the creator" true
    (String.length f.Lint.message > 0
    && String.sub f.Lint.message 0 4 = "bare")

let test_r1_annotated () =
  let fs = lint_fixture ~as_:"lib/explore/fix.ml" "r1_annotated.ml" in
  Alcotest.(check (list string))
    "Atomic + rationale silence R1" [] (rules fs)

let test_r2 () =
  let fs = lint_fixture ~as_:"lib/protocols/fix.ml" "r2_print.ml" in
  Alcotest.(check (list string))
    "print_endline flagged, sprintf not" [ "R2" ] (rules fs)

let test_r2_zone () =
  let fs = lint_fixture ~as_:"bin/fix.ml" "r2_print.ml" in
  Alcotest.(check (list string)) "printing is fine outside lib/" [] (rules fs)

let test_r3 () =
  let fs = lint_fixture ~as_:"lib/runtime/fix.ml" "r3_nondet.ml" in
  Alcotest.(check (list string)) "gettimeofday flagged" [ "R3" ] (rules fs);
  let fs' = lint_fixture ~as_:"lib/bounds/fix.ml" "r3_nondet.ml" in
  Alcotest.(check (list string))
    "determinism only enforced on hot paths" [] (rules fs')

let test_r4 () =
  let fs = lint_fixture ~as_:"lib/augmented/fix.ml" "r4_partial.ml" in
  Alcotest.(check (list string))
    "List.hd flagged, total match not" [ "R4" ] (rules fs)

let test_r5 () =
  let report = Lint.scan ~root:(Filename.concat fixture_dir "r5_root") () in
  Alcotest.(check int) "one file scanned" 1 report.Lint.files;
  Alcotest.(check (list string))
    "missing .mli flagged" [ "R5" ] (rules report.Lint.findings);
  Alcotest.(check string)
    "path is workspace-relative" "lib/nomli/nomli.ml"
    (List.hd report.Lint.findings).Lint.file

let test_parse_error () =
  let fs = Lint.lint_source ~file:"lib/x/broken.ml" "let let let" in
  Alcotest.(check (list string)) "unparseable -> parse finding" [ "parse" ]
    (rules fs)

let test_baseline () =
  let fs = lint_fixture ~as_:"lib/protocols/fix.ml" "r2_print.ml" in
  let s = Lint.baseline_to_string fs in
  (match Lint.baseline_of_string s with
  | Error e -> Alcotest.fail e
  | Ok keys ->
    Alcotest.(check int) "round trip" (List.length fs) (List.length keys);
    Alcotest.(check int)
      "baselined findings are not fresh" 0
      (List.length (Lint.fresh_against ~baseline:keys fs)));
  Alcotest.(check int)
    "empty baseline leaves findings fresh" (List.length fs)
    (List.length (Lint.fresh_against ~baseline:[] fs))

let test_report_json () =
  let fs = lint_fixture ~as_:"lib/protocols/fix.ml" "r2_print.ml" in
  let j =
    Lint.report_to_json ~tool:"rsim-lint" ~fresh:fs
      { Lint.files = 1; findings = fs }
  in
  let module J = Rsim_obs.Obs.Json in
  Alcotest.(check bool)
    "tool field" true
    (J.member "tool" j = Some (J.Str "rsim-lint"));
  Alcotest.(check bool)
    "total/fresh counted" true
    (J.member "total" j = Some (J.Int 1) && J.member "fresh" j = Some (J.Int 1));
  match J.member "findings" j with
  | Some (J.Arr [ f ]) ->
    Alcotest.(check bool)
      "finding schema" true
      (J.member "rule" f = Some (J.Str "R2")
      && J.member "file" f = Some (J.Str "lib/protocols/fix.ml")
      && J.member "line" f <> None
      && J.member "message" f <> None)
  | _ -> Alcotest.fail "findings array missing"

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 bare mutable state" `Quick test_r1;
          Alcotest.test_case "R1 silenced by Atomic + rationale" `Quick
            test_r1_annotated;
          Alcotest.test_case "R2 direct printing" `Quick test_r2;
          Alcotest.test_case "R2 zone gate" `Quick test_r2_zone;
          Alcotest.test_case "R3 nondeterminism" `Quick test_r3;
          Alcotest.test_case "R4 partial functions" `Quick test_r4;
          Alcotest.test_case "R5 missing interface" `Quick test_r5;
          Alcotest.test_case "parse errors are findings" `Quick
            test_parse_error;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip + diff" `Quick test_baseline;
          Alcotest.test_case "report JSON schema" `Quick test_report_json;
        ] );
    ]
