open Rsim_shmem
open Rsim_runtime

module Counter_ops = struct
  type op = Incr | Get
  type res = Ack | Val of int
end

module F = Fiber.Make (Counter_ops)

let make_counter () =
  let state = ref 0 in
  let apply ~pid:_ (op : Counter_ops.op) : Counter_ops.res =
    match op with
    | Counter_ops.Incr ->
      incr state;
      Counter_ops.Ack
    | Counter_ops.Get -> Counter_ops.Val !state
  in
  (state, apply)

let get () = match F.op Counter_ops.Get with Counter_ops.Val n -> n | _ -> assert false
let increment () = ignore (F.op Counter_ops.Incr)

let test_single_fiber () =
  let state, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _pid -> increment (); increment (); increment ()) ]
  in
  Alcotest.(check int) "three increments" 3 !state;
  Alcotest.(check int) "three ops" 3 result.F.total_ops;
  Alcotest.(check bool) "done" true (result.F.statuses.(0) = Fiber.Done)

let test_round_robin_interleaving () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); increment ());
        (fun _ -> increment (); increment ()) ]
  in
  let pids = List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace in
  Alcotest.(check (list int)) "alternating" [ 0; 1; 0; 1 ] pids

let test_local_values_observed () =
  (* Fiber 1 reads the counter after fiber 0 increments twice, under a
     scripted schedule. *)
  let _, apply = make_counter () in
  let seen = ref (-1) in
  let _result =
    F.run ~sched:(Schedule.script [ 0; 0; 1 ]) ~apply
      [ (fun _ -> increment (); increment ()); (fun _ -> seen := get ()) ]
  in
  Alcotest.(check int) "fiber 1 saw both increments" 2 !seen

let test_budget () =
  let _, apply = make_counter () in
  let result =
    F.run ~max_ops:5 ~sched:Schedule.round_robin ~apply
      [ (fun _ -> for _ = 1 to 100 do increment () done) ]
  in
  Alcotest.(check int) "budget respected" 5 result.F.total_ops;
  Alcotest.(check bool) "still pending" true (result.F.statuses.(0) = Fiber.Pending)

let test_failure_captured () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); failwith "boom"); (fun _ -> increment ()) ]
  in
  (match result.F.statuses.(0) with
  | Fiber.Failed (Failure msg) -> Alcotest.(check string) "exn kept" "boom" msg
  | _ -> Alcotest.fail "expected Failed");
  Alcotest.(check bool) "other fiber unaffected" true
    (result.F.statuses.(1) = Fiber.Done)

let test_crash_via_schedule () =
  let state, apply = make_counter () in
  let sched = Schedule.with_crashes [ (0, 2) ] Schedule.round_robin in
  let result =
    F.run ~sched ~apply
      [ (fun _ -> for _ = 1 to 10 do increment () done);
        (fun _ -> increment ()) ]
  in
  Alcotest.(check int) "crashed fiber took 2 steps" 2 result.F.ops_per_fiber.(0);
  Alcotest.(check int) "total" 3 !state;
  Alcotest.(check bool) "crashed fiber left pending" true
    (result.F.statuses.(0) = Fiber.Pending)

let test_determinism () =
  let run seed =
    let _, apply = make_counter () in
    let result =
      F.run
        ~sched:(Schedule.random ~seed)
        ~apply
        [ (fun _ -> for _ = 1 to 5 do increment () done);
          (fun _ -> for _ = 1 to 5 do increment () done);
          (fun _ -> for _ = 1 to 5 do increment () done) ]
    in
    List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace
  in
  Alcotest.(check (list int)) "same seed, same trace" (run 11) (run 11)

let test_ops_counted_per_fiber () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment ()); (fun _ -> increment (); increment ()) ]
  in
  Alcotest.(check int) "fiber 0 ops" 1 result.F.ops_per_fiber.(0);
  Alcotest.(check int) "fiber 1 ops" 2 result.F.ops_per_fiber.(1)

let test_no_op_fiber () =
  let _, apply = make_counter () in
  let result = F.run ~sched:Schedule.round_robin ~apply [ (fun _ -> ()) ] in
  Alcotest.(check int) "zero ops" 0 result.F.total_ops;
  Alcotest.(check bool) "done" true (result.F.statuses.(0) = Fiber.Done)

(* ---- the fault boundary: directives at the apply point ---- *)

(* Fire-once, like a compiled Faults.plan: a stalled operation keeps its
   [nth], so a naive hook would re-stall it forever; and [nth] is
   cumulative across restarts, so a naive hook would re-crash every
   incarnation at the same op. *)
let control_at ~pid:vp ~nth:vn directive =
  let fired = ref false in
  fun ~pid ~nth _op ->
    if (not !fired) && pid = vp && nth = vn then begin
      fired := true;
      directive
    end
    else Fiber.Proceed

let test_directive_crash () =
  (* Crashing fiber 0 at its 2nd op loses its remaining increments but
     keeps the ones already applied: local state dies, memory persists. *)
  let state, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:2 Fiber.Crash)
      ~sched:(Schedule.solo 0) ~apply
      [ (fun _ -> for _ = 1 to 10 do increment () done); (fun _ -> ()) ]
  in
  Alcotest.(check bool) "status Crashed" true
    (result.F.statuses.(0) = Fiber.Crashed);
  Alcotest.(check int) "writes before the crash persist" 2 !state;
  Alcotest.(check bool) "crash event recorded" true
    (List.exists
       (function
         | Fiber.Ev_crash { pid = 0; restarting = false; _ } -> true
         | _ -> false)
       result.F.events)

let test_directive_crash_restart () =
  (* Fiber 0 increments 3 times; crash-restarting it after its 2nd op
     relaunches the body from scratch, so the counter sees 2 + 3. *)
  let state, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:2 (Fiber.Crash_restart { delay = 1 }))
      ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); increment (); increment ()) ]
  in
  Alcotest.(check bool) "restarted fiber finishes" true
    (result.F.statuses.(0) = Fiber.Done);
  Alcotest.(check int) "local state lost, memory kept: 2 + 3" 5 !state;
  Alcotest.(check bool) "restart event recorded" true
    (List.exists
       (function
         | Fiber.Ev_restart { pid = 0; incarnation = 1; _ } -> true
         | _ -> false)
       result.F.events)

let test_restart_cap () =
  (* A fiber that is crash-restarted on its first op every time burns
     through max_restarts incarnations and stays Crashed. *)
  let _, apply = make_counter () in
  let result =
    F.run
      ~control:(fun ~pid:_ ~nth:_ _ -> Fiber.Crash_restart { delay = 1 })
      ~max_restarts:3 ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment ()) ]
  in
  Alcotest.(check bool) "ends Crashed" true
    (result.F.statuses.(0) = Fiber.Crashed);
  let restarts =
    List.length
      (List.filter
         (function Fiber.Ev_restart _ -> true | _ -> false)
         result.F.events)
  in
  Alcotest.(check int) "restarted exactly max_restarts times" 3 restarts

let test_directive_stall () =
  (* Under round-robin, stalling fiber 0 for 4 decisions hides it from
     the scheduler: fiber 1 runs its ops first, then fiber 0 resumes. *)
  let _, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:0 (Fiber.Stall { steps = 4 }))
      ~sched:Schedule.round_robin ~apply
      [
        (fun _ -> increment (); increment ());
        (fun _ -> increment (); increment ());
      ]
  in
  Alcotest.(check bool) "both finish" true
    (result.F.statuses.(0) = Fiber.Done && result.F.statuses.(1) = Fiber.Done);
  let pids = List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace in
  Alcotest.(check (list int)) "fiber 1 overtakes the stalled fiber"
    [ 1; 1; 0; 0 ] pids

let test_stall_only_waiting_fast_forwards () =
  (* A lone stalled fiber must not deadlock the run: the clock fast
     forwards to its wake-up. *)
  let state, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:1 (Fiber.Stall { steps = 50 }))
      ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); increment ()) ]
  in
  Alcotest.(check bool) "finishes despite the stall" true
    (result.F.statuses.(0) = Fiber.Done);
  Alcotest.(check int) "both increments land" 2 !state

let test_directive_replace () =
  (* Replacing an Incr with a Get models a dropped write: the fiber sees
     a result of the expected type but memory is untouched. *)
  let state, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:1 (Fiber.Replace Counter_ops.Get))
      ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); increment (); increment ()) ]
  in
  Alcotest.(check bool) "fiber completes" true
    (result.F.statuses.(0) = Fiber.Done);
  Alcotest.(check int) "the dropped increment never lands" 2 !state;
  Alcotest.(check bool) "replace event recorded" true
    (List.exists
       (function Fiber.Ev_replace { pid = 0; _ } -> true | _ -> false)
       result.F.events)

let test_directive_raise () =
  let exception Boom in
  let _, apply = make_counter () in
  let result =
    F.run
      ~control:(control_at ~pid:0 ~nth:0 (Fiber.Raise Boom))
      ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment ()); (fun _ -> increment ()) ]
  in
  (match result.F.statuses.(0) with
  | Fiber.Failed Boom -> ()
  | _ -> Alcotest.fail "expected Failed Boom");
  Alcotest.(check bool) "other fiber unaffected" true
    (result.F.statuses.(1) = Fiber.Done)

let test_faults_determinism () =
  (* Same bodies, schedule and control: identical traces and events. *)
  let go () =
    let _, apply = make_counter () in
    let result =
      F.run
        ~control:(control_at ~pid:1 ~nth:1 (Fiber.Crash_restart { delay = 2 }))
        ~sched:(Schedule.random ~seed:7)
        ~apply
        (List.init 3 (fun _ -> fun _ -> for _ = 1 to 4 do increment () done))
    in
    ( List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace,
      List.length result.F.events )
  in
  Alcotest.(check bool) "deterministic under faults" true (go () = go ())

let prop_total_equals_sum =
  QCheck.Test.make ~name:"total ops = sum of per-fiber ops" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 4))
    (fun (seed, n) ->
      let _, apply = make_counter () in
      let result =
        F.run
          ~sched:(Schedule.random ~seed)
          ~apply
          (List.init n (fun i -> fun _ -> for _ = 0 to i do increment () done))
      in
      result.F.total_ops = Array.fold_left ( + ) 0 result.F.ops_per_fiber)

let () =
  Alcotest.run "runtime"
    [
      ( "fiber",
        [
          Alcotest.test_case "single fiber" `Quick test_single_fiber;
          Alcotest.test_case "round robin" `Quick test_round_robin_interleaving;
          Alcotest.test_case "scripted visibility" `Quick test_local_values_observed;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "failure captured" `Quick test_failure_captured;
          Alcotest.test_case "crash via schedule" `Quick test_crash_via_schedule;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "per-fiber counts" `Quick test_ops_counted_per_fiber;
          Alcotest.test_case "no-op fiber" `Quick test_no_op_fiber;
        ] );
      ( "fault boundary",
        [
          Alcotest.test_case "crash directive" `Quick test_directive_crash;
          Alcotest.test_case "crash-restart directive" `Quick
            test_directive_crash_restart;
          Alcotest.test_case "restart cap" `Quick test_restart_cap;
          Alcotest.test_case "stall directive" `Quick test_directive_stall;
          Alcotest.test_case "stall fast-forward" `Quick
            test_stall_only_waiting_fast_forwards;
          Alcotest.test_case "replace (dropped write)" `Quick
            test_directive_replace;
          Alcotest.test_case "raise directive" `Quick test_directive_raise;
          Alcotest.test_case "determinism under faults" `Quick
            test_faults_determinism;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_total_equals_sum ]);
    ]
