open Rsim_value
open Rsim_shmem
open Rsim_augmented

let check_spec name (aug, (result : Aug.F.result)) =
  let report = Aug_spec.check aug result.trace in
  if not report.Aug_spec.ok then
    Alcotest.failf "%s: spec violations:@.%a" name Aug_spec.pp_report report

let no_failures (result : Aug.F.result) =
  Array.iter
    (function
      | Rsim_runtime.Fiber.Failed e -> raise e
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
      | Rsim_runtime.Fiber.Crashed -> ())
    result.statuses

(* ---- solo behaviour ---- *)

let test_solo_basic () =
  let views = ref [] in
  let aug = Aug.create ~f:1 ~m:3 () in
  let result =
    Aug.F.run ~sched:Schedule.round_robin ~apply:(Aug.apply aug)
      [
        (fun _ ->
          (match Aug.block_update aug ~me:0 [ (0, Value.Int 1); (2, Value.Int 3) ] with
          | `View v -> views := ("bu", v) :: !views
          | `Yield -> Alcotest.fail "q0 must be atomic");
          let v = Aug.scan aug ~me:0 in
          views := ("scan", v) :: !views);
      ]
  in
  no_failures result;
  (match List.assoc_opt "bu" !views with
  | Some v ->
    Alcotest.(check bool) "BU returned the initial view" true
      (Array.for_all Value.is_bot v)
  | None -> Alcotest.fail "no BU view");
  (match List.assoc_opt "scan" !views with
  | Some v ->
    Alcotest.(check bool) "scan sees comp 0" true (Value.equal v.(0) (Value.Int 1));
    Alcotest.(check bool) "scan sees comp 2" true (Value.equal v.(2) (Value.Int 3));
    Alcotest.(check bool) "comp 1 untouched" true (Value.is_bot v.(1))
  | None -> Alcotest.fail "no scan view");
  check_spec "solo" (aug, result)

let test_bu_step_count () =
  let aug = Aug.create ~f:2 ~m:2 () in
  let result =
    Aug.F.run ~sched:Schedule.round_robin ~apply:(Aug.apply aug)
      [
        (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 1) ]));
        (fun _ -> ignore (Aug.block_update aug ~me:1 [ (1, Value.Int 2) ]));
      ]
  in
  no_failures result;
  List.iter
    (function
      | Aug.Bu_op { n_ops; result = Aug.Atomic _; _ } ->
        Alcotest.(check int) "atomic BU takes 6 steps" 6 n_ops
      | Aug.Bu_op { n_ops; result = Aug.Yield; _ } ->
        Alcotest.(check int) "yield BU takes 5 steps" 5 n_ops
      | Aug.Scan_op _ -> ())
    (Aug.log aug);
  check_spec "step count" (aug, result)

let test_forced_yield () =
  (* q1 starts a Block-Update (performs its line-2 scan), then q0 performs
     a complete Block-Update, then q1 resumes: q1 must observe the
     lower-identifier update and return Y. *)
  let q1_result = ref None in
  let aug = Aug.create ~f:2 ~m:2 () in
  let sched = Schedule.script [ 1; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1 ] in
  let result =
    Aug.F.run ~sched ~apply:(Aug.apply aug)
      [
        (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 10) ]));
        (fun _ -> q1_result := Some (Aug.block_update aug ~me:1 [ (1, Value.Int 20) ]));
      ]
  in
  no_failures result;
  (match !q1_result with
  | Some `Yield -> ()
  | Some (`View _) -> Alcotest.fail "q1 should have yielded"
  | None -> Alcotest.fail "q1 did not finish");
  check_spec "forced yield" (aug, result)

let test_no_yield_without_contention () =
  (* Sequential Block-Updates never yield. *)
  let aug = Aug.create ~f:3 ~m:3 () in
  let results = Array.make 3 None in
  let result =
    Aug.F.run ~sched:(Schedule.script (List.concat_map (fun p -> List.init 6 (fun _ -> p)) [ 2; 1; 0; 2; 0 ]))
      ~apply:(Aug.apply aug)
      [
        (fun _ ->
          results.(0) <- Some (Aug.block_update aug ~me:0 [ (0, Value.Int 1) ]);
          ignore (Aug.block_update aug ~me:0 [ (1, Value.Int 2) ]));
        (fun _ -> results.(1) <- Some (Aug.block_update aug ~me:1 [ (1, Value.Int 3) ]));
        (fun _ ->
          results.(2) <- Some (Aug.block_update aug ~me:2 [ (2, Value.Int 4) ]);
          ignore (Aug.block_update aug ~me:2 [ (0, Value.Int 5) ]));
      ]
  in
  no_failures result;
  Array.iteri
    (fun i r ->
      match r with
      | Some (`View _) -> ()
      | Some `Yield -> Alcotest.failf "q%d yielded without step contention" i
      | None -> ())
    results;
  check_spec "sequential" (aug, result)

let test_higher_id_does_not_force_yield () =
  (* q1's complete Block-Update inside q0's interval must NOT make q0
     yield (q0 has no lower-identifier process). *)
  let q0_result = ref None in
  let aug = Aug.create ~f:2 ~m:2 () in
  let sched = Schedule.script [ 0; 1; 1; 1; 1; 1; 1; 0; 0; 0; 0; 0 ] in
  let result =
    Aug.F.run ~sched ~apply:(Aug.apply aug)
      [
        (fun _ -> q0_result := Some (Aug.block_update aug ~me:0 [ (0, Value.Int 10) ]));
        (fun _ -> ignore (Aug.block_update aug ~me:1 [ (1, Value.Int 20) ]));
      ]
  in
  no_failures result;
  (match !q0_result with
  | Some (`View _) -> ()
  | Some `Yield -> Alcotest.fail "q0 yielded"
  | None -> Alcotest.fail "q0 did not finish");
  check_spec "higher id" (aug, result)

let test_scan_sees_last_update () =
  let aug = Aug.create ~f:2 ~m:2 () in
  let seen = ref [||] in
  let result =
    Aug.F.run ~sched:(Schedule.script (List.init 6 (fun _ -> 0) @ List.init 10 (fun _ -> 1)))
      ~apply:(Aug.apply aug)
      [
        (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 7) ]));
        (fun _ -> seen := Aug.scan aug ~me:1);
      ]
  in
  no_failures result;
  Alcotest.(check bool) "scan after BU sees it" true
    (Value.equal !seen.(0) (Value.Int 7));
  check_spec "scan sees update" (aug, result)

let test_block_update_validation () =
  let aug = Aug.create ~f:1 ~m:2 () in
  let result =
    Aug.F.run ~sched:Schedule.round_robin ~apply:(Aug.apply aug)
      [
        (fun _ ->
          (try ignore (Aug.block_update aug ~me:0 []) with
          | Invalid_argument _ -> ());
          (try ignore (Aug.block_update aug ~me:0 [ (0, Value.Bot); (0, Value.Bot) ])
           with Invalid_argument _ -> ());
          try ignore (Aug.block_update aug ~me:0 [ (5, Value.Bot) ])
          with Invalid_argument _ -> ());
      ]
  in
  no_failures result;
  Alcotest.(check int) "nothing logged" 0 (List.length (Aug.log aug))

(* ---- exhaustive model checking over ALL interleavings ---- *)

(* Enumerate every complete interleaving of the given fiber programs by
   DFS over schedule prefixes, replaying from scratch each time (the
   effect-fiber continuations are one-shot, so branching requires
   replay; programs are tiny, so this is cheap). Each complete execution
   is checked against the full §3 specification. *)
let exhaustive_check ~f ~m ~bodies ~max_len =
  let executions = ref 0 in
  let replay script =
    let aug = Aug.create ~f ~m () in
    let result =
      Aug.F.run ~max_ops:(max_len + 1)
        ~sched:(Schedule.script script)
        ~apply:(Aug.apply aug)
        (bodies aug)
    in
    (aug, result)
  in
  let rec explore script =
    if List.length script > max_len then
      Alcotest.failf "exhaustive: schedule exceeded %d steps" max_len
    else begin
      let aug, result = replay script in
      let live =
        List.filter
          (fun pid -> result.Aug.F.statuses.(pid) = Rsim_runtime.Fiber.Pending)
          (List.init f Fun.id)
      in
      (* Only branch when the whole script was consumed; a script that
         ends early (fiber done) is a complete execution. *)
      if live = [] then begin
        incr executions;
        no_failures result;
        let report = Aug_spec.check aug result.Aug.F.trace in
        if not report.Aug_spec.ok then
          Alcotest.failf "exhaustive: script [%s] violates the spec:@.%a"
            (String.concat ";" (List.map string_of_int script))
            Aug_spec.pp_report report
      end
      else
        List.iter (fun pid -> explore (script @ [ pid ])) live
    end
  in
  explore [];
  !executions

let test_exhaustive_two_bus () =
  let bodies aug =
    [
      (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 1) ]));
      (fun _ -> ignore (Aug.block_update aug ~me:1 [ (0, Value.Int 2) ]));
    ]
  in
  let n = exhaustive_check ~f:2 ~m:2 ~bodies ~max_len:16 in
  Alcotest.(check bool)
    (Printf.sprintf "all %d interleavings of two conflicting BUs pass" n)
    true (n > 200)

let test_exhaustive_bu_vs_scan () =
  let bodies aug =
    [
      (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 1); (1, Value.Int 2) ]));
      (fun _ -> ignore (Aug.scan aug ~me:1));
    ]
  in
  let n = exhaustive_check ~f:2 ~m:2 ~bodies ~max_len:20 in
  Alcotest.(check bool)
    (Printf.sprintf "all %d interleavings of BU vs Scan pass" n)
    true (n > 100)

let test_exhaustive_bu_then_scan_each () =
  let bodies aug =
    [
      (fun _ ->
        ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 1) ]);
        ignore (Aug.scan aug ~me:0));
      (fun _ -> ignore (Aug.block_update aug ~me:1 [ (1, Value.Int 2) ]));
    ]
  in
  let n = exhaustive_check ~f:2 ~m:2 ~bodies ~max_len:24 in
  Alcotest.(check bool)
    (Printf.sprintf "all %d interleavings of BU;Scan vs BU pass" n)
    true (n > 500)

(* ---- randomized adversarial workloads, checked against the spec ---- *)

let random_body ~aug ~m ~n_ops ~seed pid =
  let g = ref (Prng.make (seed + (1000 * pid))) in
  let draw n =
    let k, g' = Prng.int !g n in
    g := g';
    k
  in
  for _ = 1 to n_ops do
    if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
    else begin
      let r = 1 + draw (min m 3) in
      let comps = ref [] in
      while List.length !comps < r do
        let j = draw m in
        if not (List.mem j !comps) then comps := j :: !comps
      done;
      let updates = List.map (fun j -> (j, Value.Int (draw 100))) !comps in
      ignore (Aug.block_update aug ~me:pid updates)
    end
  done

let random_workload_case ~f ~m ~n_ops ~seed () =
  let aug = Aug.create ~f ~m () in
  let result =
    Aug.F.run ~max_ops:20_000
      ~sched:(Schedule.random ~seed)
      ~apply:(Aug.apply aug)
      (List.init f (fun _ -> random_body ~aug ~m ~n_ops ~seed))
  in
  no_failures result;
  check_spec (Printf.sprintf "random f=%d m=%d seed=%d" f m seed) (aug, result)

let prop_random_workloads =
  QCheck.Test.make ~name:"random workloads satisfy the §3 spec" ~count:40
    QCheck.(triple (int_bound 10_000) (int_range 2 4) (int_range 2 4))
    (fun (seed, f, m) ->
      let aug = Aug.create ~f ~m () in
      let result =
        Aug.F.run ~max_ops:20_000
          ~sched:(Schedule.random ~seed)
          ~apply:(Aug.apply aug)
          (List.init f (fun _ -> random_body ~aug ~m ~n_ops:6 ~seed))
      in
      no_failures result;
      let report = Aug_spec.check aug result.trace in
      if not report.Aug_spec.ok then
        QCheck.Test.fail_reportf "spec violations: %a" Aug_spec.pp_report report
      else true)

let prop_scripted_schedules =
  (* Arbitrary fixed pid scripts — including starving, truncating ones:
     the spec must hold on whatever prefix of the execution ran. *)
  QCheck.Test.make ~name:"random scripted schedules satisfy the §3 spec"
    ~count:40
    QCheck.(triple (int_bound 10_000) (int_range 1 4) (int_range 1 4))
    (fun (seed, f, m) ->
      let g = ref (Prng.make (seed + 77)) in
      let draw n =
        let k, g' = Prng.int !g n in
        g := g';
        k
      in
      let script = List.init (10 + draw (30 * f)) (fun _ -> draw f) in
      let aug = Aug.create ~f ~m () in
      let result =
        Aug.F.run ~max_ops:20_000
          ~sched:(Schedule.script script)
          ~apply:(Aug.apply aug)
          (List.init f (fun _ -> random_body ~aug ~m ~n_ops:3 ~seed))
      in
      let report = Aug_spec.check aug result.trace in
      if not report.Aug_spec.ok then
        QCheck.Test.fail_reportf "script [%s]: spec violations: %a"
          (String.concat ";" (List.map string_of_int script))
          Aug_spec.pp_report report
      else true)

let prop_crashy_schedules =
  (* Crash-prone adversaries: each process may be killed after a random
     number of steps, possibly mid-Block-Update. The surviving
     operations must still satisfy the spec (Corollary 15 included). *)
  QCheck.Test.make ~name:"random crashy schedules satisfy the §3 spec"
    ~count:40
    QCheck.(triple (int_bound 10_000) (int_range 1 4) (int_range 1 4))
    (fun (seed, f, m) ->
      let g = ref (Prng.make (seed + 333)) in
      let draw n =
        let k, g' = Prng.int !g n in
        g := g';
        k
      in
      let crashes =
        List.filter_map
          (fun pid -> if draw 2 = 0 then Some (pid, 1 + draw 12) else None)
          (List.init f Fun.id)
      in
      let aug = Aug.create ~f ~m () in
      let result =
        Aug.F.run ~max_ops:20_000
          ~sched:(Schedule.with_crashes crashes (Schedule.random ~seed))
          ~apply:(Aug.apply aug)
          (List.init f (fun _ -> random_body ~aug ~m ~n_ops:4 ~seed))
      in
      let report = Aug_spec.check aug result.trace in
      if not report.Aug_spec.ok then
        QCheck.Test.fail_reportf "crashes [%s]: spec violations: %a"
          (String.concat ";"
             (List.map (fun (p, k) -> Printf.sprintf "%d@%d" p k) crashes))
          Aug_spec.pp_report report
      else true)

let prop_deterministic =
  QCheck.Test.make ~name:"aug executions deterministic in the seed" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let go () =
        let aug = Aug.create ~f:3 ~m:2 () in
        let result =
          Aug.F.run ~max_ops:5_000
            ~sched:(Schedule.random ~seed)
            ~apply:(Aug.apply aug)
            (List.init 3 (fun _ -> random_body ~aug ~m:2 ~n_ops:4 ~seed))
        in
        List.map (fun (e : Aug.F.trace_entry) -> e.pid) result.trace
      in
      go () = go ())

let test_scan_blocked_by_updates () =
  (* A Scan interleaved with continuous Block-Updates takes extra
     iterations but its step count stays within 2k+3 (Lemma 2). *)
  let aug = Aug.create ~f:2 ~m:2 () in
  (* q1 scans; q0 does 3 BUs. Interleave: give q1 one op, then q0 six,
     repeatedly. *)
  let pattern =
    [ 1; 0; 0; 0; 0; 0; 0; 1; 1; 0; 0; 0; 0; 0; 0; 1; 1; 0; 0; 0; 0; 0; 0 ]
    @ List.init 10 (fun _ -> 1)
  in
  let result =
    Aug.F.run ~sched:(Schedule.script pattern) ~apply:(Aug.apply aug)
      [
        (fun _ ->
          for i = 1 to 3 do
            ignore (Aug.block_update aug ~me:0 [ (0, Value.Int i) ])
          done);
        (fun _ -> ignore (Aug.scan aug ~me:1));
      ]
  in
  no_failures result;
  check_spec "scan under contention" (aug, result);
  let scan_ops =
    List.filter_map
      (function Aug.Scan_op { n_ops; _ } -> Some n_ops | Aug.Bu_op _ -> None)
      (Aug.log aug)
  in
  (match scan_ops with
  | [ n ] -> Alcotest.(check bool) "scan retried" true (n > 3)
  | _ -> Alcotest.fail "expected exactly one completed scan")

let () =
  Alcotest.run "aug"
    [
      ( "basics",
        [
          Alcotest.test_case "solo BU + scan" `Quick test_solo_basic;
          Alcotest.test_case "step counts" `Quick test_bu_step_count;
          Alcotest.test_case "validation" `Quick test_block_update_validation;
        ] );
      ( "yield discipline",
        [
          Alcotest.test_case "forced yield" `Quick test_forced_yield;
          Alcotest.test_case "no yield without contention" `Quick
            test_no_yield_without_contention;
          Alcotest.test_case "higher id no yield" `Quick
            test_higher_id_does_not_force_yield;
        ] );
      ( "views",
        [
          Alcotest.test_case "scan sees last update" `Quick test_scan_sees_last_update;
          Alcotest.test_case "scan under contention" `Quick test_scan_blocked_by_updates;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "two conflicting BUs" `Quick test_exhaustive_two_bus;
          Alcotest.test_case "BU vs Scan" `Quick test_exhaustive_bu_vs_scan;
          Alcotest.test_case "BU;Scan vs BU" `Quick test_exhaustive_bu_then_scan_each;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "random f=2 m=2" `Quick
            (random_workload_case ~f:2 ~m:2 ~n_ops:8 ~seed:1);
          Alcotest.test_case "random f=3 m=3" `Quick
            (random_workload_case ~f:3 ~m:3 ~n_ops:8 ~seed:2);
          Alcotest.test_case "random f=4 m=2" `Quick
            (random_workload_case ~f:4 ~m:2 ~n_ops:8 ~seed:3);
          Alcotest.test_case "random f=4 m=4" `Quick
            (random_workload_case ~f:4 ~m:4 ~n_ops:8 ~seed:4);
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_workloads;
            prop_scripted_schedules;
            prop_crashy_schedules;
            prop_deterministic;
          ] );
    ]
