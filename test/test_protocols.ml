open Rsim_value
open Rsim_shmem
open Rsim_tasks
open Rsim_protocols

let i n = Value.Int n

let check_task task ~inputs c =
  let outputs = List.map snd (Run.outputs c) in
  match Task.check task ~inputs ~outputs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "task violation: %s" e

(* ---- Racing consensus ---- *)

let racing_procs ~m inputs =
  List.mapi
    (fun pid input -> (Racing.protocol ~m ()) pid input)
    inputs

let test_racing_solo () =
  let c = Run.init ~m:3 (racing_procs ~m:3 [ i 7 ]) in
  let c', outcome = Run.run ~sched:(Schedule.solo 0) c in
  Alcotest.(check bool) "solo terminates" true
    (outcome = Run.All_done || outcome = Run.Schedule_exhausted);
  Alcotest.(check (list (pair int (testable Value.pp Value.equal))))
    "decides own value"
    [ (0, i 7) ]
    (Run.outputs c')

let test_racing_two_procs_agree () =
  List.iter
    (fun seed ->
      let c = Run.init ~m:2 (racing_procs ~m:2 [ i 1; i 2 ]) in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "terminates" true (outcome = Run.All_done);
      check_task Task.consensus ~inputs:[ i 1; i 2 ] c')
    (List.init 50 Fun.id)

let test_racing_n_procs_agree () =
  List.iter
    (fun seed ->
      let inputs = [ i 10; i 20; i 30; i 40 ] in
      let c = Run.init ~m:4 (racing_procs ~m:4 inputs) in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "terminates" true (outcome = Run.All_done);
      check_task Task.consensus ~inputs c')
    (List.init 30 Fun.id)

let test_racing_obstruction_free () =
  (* From any reachable configuration (random prefix), each process
     running solo terminates. *)
  List.iter
    (fun seed ->
      let inputs = [ i 1; i 2; i 3 ] in
      let c = Run.init ~m:3 (racing_procs ~m:3 inputs) in
      let sched =
        Schedule.phased ~prefix_len:(seed mod 37)
          ~prefix:(Schedule.random ~seed) ~suffix:(Schedule.script [])
      in
      let c', _ = Run.run ~sched c in
      List.iter
        (fun pid ->
          Alcotest.(check bool)
            (Printf.sprintf "pid %d solo-terminates (seed %d)" pid seed)
            true
            (Run.solo_terminates ~max_steps:1_000 c' pid))
        (Run.live c'))
    (List.init 40 Fun.id)

let test_racing_one_register_disagreement () =
  (* The covering scenario: n = 2 > m = 1; q takes its initial scan,
     sleeps; p runs to completion and decides its own value; q then
     obliterates the single register and also decides its own value.
     This is exactly the violation the space lower bound (Corollary 33,
     consensus needs n registers) predicts must exist. *)
  let c = Run.init ~m:1 (racing_procs ~m:1 [ i 1; i 2 ]) in
  (* one step of q (pid 1): its first scan of empty memory *)
  let c = Run.step_pid c 1 in
  (* p (pid 0) runs solo to a decision *)
  let c, _ = Run.run ~max_steps:1_000 ~sched:(Schedule.solo 0) c in
  Alcotest.(check bool) "p decided" true (List.mem_assoc 0 (Run.outputs c));
  (* q runs solo: its stale write overwrites the register *)
  let c, _ = Run.run ~max_steps:1_000 ~sched:(Schedule.solo 1) c in
  let outputs = List.map snd (Run.outputs c) in
  Alcotest.(check int) "both decided" 2 (List.length outputs);
  Alcotest.(check bool) "disagreement witnessed" false
    (match Task.check Task.consensus ~inputs:[ i 1; i 2 ] ~outputs with
     | Ok () -> true
     | Error _ -> false)

let test_racing_validity () =
  List.iter
    (fun seed ->
      let inputs = [ i 5; i 5; i 9 ] in
      let c = Run.init ~m:3 (racing_procs ~m:3 inputs) in
      let c', _ = Run.run ~sched:(Schedule.random ~seed) c in
      check_task (Task.kset ~k:3) ~inputs c' (* validity only *))
    (List.init 20 Fun.id)

let test_racing_covering_adversary_rate () =
  (* Racing is the deliberately breakable comparator: a phase-shifted
     covering adversary defeats it even at m = n (see racing.mli). Over
     seeds 0..999 at n = m = 2 the violation rate is nonzero but tiny.
     Validity and termination must never fail. *)
  let violations = ref 0 in
  for seed = 0 to 999 do
    let inputs = [ i 0; i 1 ] in
    let c = Run.init ~m:2 (racing_procs ~m:2 inputs) in
    let c', outcome = Run.run ~max_steps:100_000 ~sched:(Schedule.random ~seed) c in
    Alcotest.(check bool) "terminates" true (outcome = Run.All_done);
    let outs = List.map snd (Run.outputs c') in
    List.iter
      (fun o ->
        Alcotest.(check bool) "validity" true
          (List.exists (Value.equal o) inputs))
      outs;
    if List.length (Value.distinct outs) > 1 then incr violations
  done;
  Alcotest.(check bool)
    (Printf.sprintf "violations exist but are rare (%d/1000)" !violations)
    true
    (!violations >= 1 && !violations <= 20)

(* ---- Adopt2: the provably correct pair consensus ---- *)

let adopt_pair inputs =
  match inputs with
  | [ a; b ] ->
    [
      Adopt2.proc ~mine:0 ~theirs:1 ~name:"p0" ~input:a ();
      Adopt2.proc ~mine:1 ~theirs:0 ~name:"p1" ~input:b ();
    ]
  | _ -> assert false

let test_adopt2_solo () =
  let c = Run.init ~m:2 (adopt_pair [ i 1; i 2 ]) in
  let c', _ = Run.run ~sched:(Schedule.solo 0) c in
  Alcotest.(check bool) "solo decides own input" true
    (List.assoc_opt 0 (Run.outputs c') = Some (i 1))

let test_adopt2_exhaustive () =
  (* Model-check ALL interleavings up to a depth bound: agreement and
     validity hold in every terminating execution. (The bound is needed
     because adopt-swap livelocks make the execution graph cyclic — an
     obstruction-free protocol need not terminate under lockstep.) *)
  let inputs = [ i 1; i 2 ] in
  let explored = ref 0 in
  let rec explore c depth =
    match Run.live c with
    | [] ->
      incr explored;
      let outs = List.map snd (Run.outputs c) in
      Alcotest.(check bool) "agreement in every execution" true
        (List.length (Value.distinct outs) <= 1);
      List.iter
        (fun o ->
          Alcotest.(check bool) "validity in every execution" true
            (List.exists (Value.equal o) inputs))
        outs
    | live ->
      if depth > 0 then
        List.iter (fun pid -> explore (Run.step_pid c pid) (depth - 1)) live
  in
  explore (Run.init ~m:2 (adopt_pair inputs)) 14;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d executions" !explored)
    true (!explored > 50)

let test_adopt2_obstruction_free () =
  List.iter
    (fun seed ->
      let c = Run.init ~m:2 (adopt_pair [ i 1; i 2 ]) in
      let sched =
        Schedule.phased ~prefix_len:(seed mod 7) ~prefix:(Schedule.random ~seed)
          ~suffix:(Schedule.script [])
      in
      let c', _ = Run.run ~sched c in
      List.iter
        (fun pid ->
          Alcotest.(check bool) "solo-terminates" true
            (Run.solo_terminates ~max_steps:100 c' pid))
        (Run.live c'))
    (List.init 30 Fun.id)

(* ---- Committee k-set agreement ---- *)

let test_committee_partition () =
  Alcotest.(check (list int)) "bank 0" [ 0; 1; 2 ] (Committee.bank_of ~n:6 ~k:2 ~g:0);
  Alcotest.(check (list int)) "bank 1" [ 3; 4; 5 ] (Committee.bank_of ~n:6 ~k:2 ~g:1);
  Alcotest.(check int) "pid 2 in committee 0" 0 (Committee.committee_of ~n:6 ~k:2 ~pid:2);
  Alcotest.(check int) "pid 3 in committee 1" 1 (Committee.committee_of ~n:6 ~k:2 ~pid:3);
  (* uneven split: 7 into 3 -> sizes 3,2,2 *)
  Alcotest.(check (list int)) "uneven bank 0" [ 0; 1; 2 ] (Committee.bank_of ~n:7 ~k:3 ~g:0);
  Alcotest.(check (list int)) "uneven bank 2" [ 5; 6 ] (Committee.bank_of ~n:7 ~k:3 ~g:2)

let test_committee_kset () =
  (* k = 3 committees of 2 over n = 6: pairs run Adopt2, so this is a
     provably correct 3-set agreement; check it across many schedules. *)
  List.iter
    (fun seed ->
      let inputs = List.init 6 (fun p -> i (100 + p)) in
      let procs = List.mapi (fun pid inp -> (Committee.protocol ~n:6 ~k:3 ()) pid inp) inputs in
      let c = Run.init ~m:6 procs in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "terminates" true (outcome = Run.All_done);
      check_task (Task.kset ~k:3) ~inputs c')
    (List.init 30 Fun.id)

let test_committee_racing_validity () =
  (* Committees of 3 race; validity and the k bound on distinct decided
     values still always hold even if a committee internally splits it
     stays within its own inputs (validity), so only the count can rise;
     check validity across schedules. *)
  List.iter
    (fun seed ->
      let inputs = List.init 6 (fun p -> i (100 + p)) in
      let procs = List.mapi (fun pid inp -> (Committee.protocol ~n:6 ~k:2 ()) pid inp) inputs in
      let c = Run.init ~m:6 procs in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "terminates" true (outcome = Run.All_done);
      check_task (Task.kset ~k:6) ~inputs c' (* validity *))
    (List.init 20 Fun.id)

let test_committee_intra_group_agreement () =
  List.iter
    (fun seed ->
      let inputs = List.init 4 (fun p -> i p) in
      let procs = List.mapi (fun pid inp -> (Committee.protocol ~n:4 ~k:2 ()) pid inp) inputs in
      let c = Run.init ~m:4 procs in
      let c', _ = Run.run ~sched:(Schedule.random ~seed) c in
      let outs = Run.outputs c' in
      let out_of p = List.assoc_opt p outs in
      (match (out_of 0, out_of 1) with
      | Some a, Some b ->
        Alcotest.(check bool) "committee 0 agrees" true (Value.equal a b)
      | _ -> ());
      match (out_of 2, out_of 3) with
      | Some a, Some b ->
        Alcotest.(check bool) "committee 1 agrees" true (Value.equal a b)
      | _ -> ())
    (List.init 30 Fun.id)

(* ---- Approximate agreement ---- *)

let test_approx_rounds_for () =
  Alcotest.(check int) "eps=1" 1 (Approx_agreement.rounds_for ~eps:1.0);
  Alcotest.(check bool) "eps=0.1 needs >= 4" true
    (Approx_agreement.rounds_for ~eps:0.1 >= 4);
  Alcotest.(check bool) "smaller eps needs more rounds" true
    (Approx_agreement.rounds_for ~eps:0.01 > Approx_agreement.rounds_for ~eps:0.1)

let test_approx_agreement () =
  let eps = 0.1 in
  let rounds = Approx_agreement.rounds_for ~eps in
  List.iter
    (fun seed ->
      let inputs = [ Value.Float 0.0; Value.Float 1.0; Value.Float 0.5 ] in
      let procs =
        List.mapi (fun pid inp -> (Approx_agreement.protocol ~rounds ()) pid inp) inputs
      in
      let c = Run.init ~m:3 procs in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "terminates (wait-free)" true (outcome = Run.All_done);
      check_task (Task.approx ~eps) ~inputs c')
    (List.init 50 Fun.id)

let test_approx_wait_free_under_crash () =
  (* Even if one process crashes mid-protocol, the others finish. *)
  let eps = 0.25 in
  let rounds = Approx_agreement.rounds_for ~eps in
  let inputs = [ Value.Float 0.0; Value.Float 1.0 ] in
  let procs =
    List.mapi (fun pid inp -> (Approx_agreement.protocol ~rounds ()) pid inp) inputs
  in
  let c = Run.init ~m:2 procs in
  let sched = Schedule.with_crashes [ (0, 3) ] Schedule.round_robin in
  let c', _ = Run.run ~sched c in
  Alcotest.(check bool) "survivor output" true (List.mem_assoc 1 (Run.outputs c'));
  let outputs = List.map snd (Run.outputs c') in
  match Task.check (Task.approx ~eps) ~inputs ~outputs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "task violation: %s" e

let test_approx_solo () =
  let rounds = Approx_agreement.rounds_for ~eps:0.1 in
  let p = (Approx_agreement.protocol ~rounds ()) 0 (Value.Float 0.25) in
  let c = Run.init ~m:1 [ p ] in
  let c', _ = Run.run ~sched:(Schedule.solo 0) c in
  match Run.outputs c' with
  | [ (0, Value.Float v) ] ->
    Alcotest.(check (float 1e-9)) "solo keeps input" 0.25 v
  | _ -> Alcotest.fail "expected solo output"

let test_approx_exhaustive () =
  (* Model-check ALL interleavings of two approximate-agreement
     processes (2 rounds, eps = 0.5 on inputs {0,1}): every complete
     execution satisfies eps-agreement and validity. *)
  let eps = 0.5 in
  let rounds = 2 in
  let inputs = [ Value.Float 0.0; Value.Float 1.0 ] in
  let explored = ref 0 in
  let rec explore c depth =
    match Run.live c with
    | [] ->
      incr explored;
      let outputs = List.map snd (Run.outputs c) in
      (match Task.check (Task.approx ~eps) ~inputs ~outputs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "execution %d violates: %s" !explored e)
    | live ->
      if depth > 0 then
        List.iter (fun pid -> explore (Run.step_pid c pid) (depth - 1)) live
      else Alcotest.fail "depth exhausted: protocol not wait-free?!"
  in
  let procs =
    List.mapi
      (fun pid v -> (Approx_agreement.protocol ~rounds ()) pid v)
      inputs
  in
  explore (Run.init ~m:2 procs) 20;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d complete executions" !explored)
    true (!explored > 100)

let test_approx_shared_slots () =
  (* The space-constrained variant: n > m processes share m components.
     Wait-freedom and validity (outputs in the inputs' hull) always
     hold; ε-agreement is not guaranteed — that is the regime the lower
     bound speaks to (E10). *)
  let eps = 0.25 in
  let rounds = Approx_agreement.rounds_for ~eps in
  List.iter
    (fun seed ->
      let inputs = [ 0.0; 1.0; 0.5; 0.25 ] in
      let m = 2 in
      let procs =
        List.mapi
          (fun pid v ->
            (Approx_agreement.protocol_shared ~rounds ~m ()) pid (Value.Float v))
          inputs
      in
      let c = Run.init ~m procs in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "wait-free" true (outcome = Run.All_done);
      List.iter
        (fun (_, out) ->
          let x = Value.as_float_exn out in
          Alcotest.(check bool) "validity: in the hull" true
            (x >= 0.0 -. 1e-9 && x <= 1.0 +. 1e-9))
        (Run.outputs c'))
    (List.init 30 Fun.id)

(* ---- Safe agreement (the BG building block, for contrast) ---- *)

let run_sa ~f ~sched ~bodies_of =
  let sa = Safe_agreement.create ~f in
  let result =
    Safe_agreement.F.run ~max_ops:10_000 ~sched
      ~apply:(Safe_agreement.apply sa)
      (bodies_of sa)
  in
  Array.iter
    (function
      | Rsim_runtime.Fiber.Failed e -> raise e
      | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending
      | Rsim_runtime.Fiber.Crashed -> ())
    result.Safe_agreement.F.statuses;
  result

let test_sa_solo () =
  let out = ref None in
  let _ =
    run_sa ~f:2 ~sched:Schedule.round_robin ~bodies_of:(fun sa ->
        [
          (fun _ ->
            Safe_agreement.propose sa ~me:0 (i 7);
            out := Safe_agreement.read sa ~me:0 ~max_spins:10);
          (fun _ -> ());
        ])
  in
  Alcotest.(check bool) "reads own proposal" true (!out = Some (i 7))

let test_sa_agreement_random () =
  List.iter
    (fun seed ->
      let outs = Array.make 3 None in
      let _ =
        run_sa ~f:3 ~sched:(Schedule.random ~seed) ~bodies_of:(fun sa ->
            List.init 3 (fun me ->
                fun _ ->
                  Safe_agreement.propose sa ~me (i (100 + me));
                  outs.(me) <- Safe_agreement.read sa ~me ~max_spins:50))
      in
      let got = Array.to_list outs |> List.filter_map Fun.id in
      Alcotest.(check int) "all read" 3 (List.length got);
      Alcotest.(check int)
        (Printf.sprintf "agreement (seed %d)" seed)
        1
        (List.length (Value.distinct got));
      List.iter
        (fun v ->
          Alcotest.(check bool) "validity" true
            (List.exists (Value.equal v) [ i 100; i 101; i 102 ]))
        got)
    (List.init 40 Fun.id)

let test_sa_crash_in_unsafe_window_blocks () =
  (* The BG contrast: a proposer that crashes between raising level 1
     and settling leaves readers spinning forever — the blocking the
     revisionist simulation's augmented snapshot avoids (Theorem 20
     keeps Block-Updates wait-free and Scans non-blocking under crashes,
     because helping information lives in the shared object, not in a
     live proposer). *)
  let out = ref (Some Value.Bot) in
  let sched =
    (* pid 0 takes exactly 1 step (its level-1 write), then crashes. *)
    Schedule.with_crashes [ (0, 1) ] Schedule.round_robin
  in
  let _ =
    run_sa ~f:2 ~sched ~bodies_of:(fun sa ->
        [
          (fun _ -> Safe_agreement.propose sa ~me:0 (i 1));
          (fun _ ->
            Safe_agreement.propose sa ~me:1 (i 2);
            out := Safe_agreement.read sa ~me:1 ~max_spins:100);
        ])
  in
  Alcotest.(check bool) "reader blocked (timed out)" true (!out = None)

let test_sa_crash_after_settling_ok () =
  let out = ref None in
  let sched =
    (* pid 0 completes its propose (3 steps), then crashes. *)
    Schedule.with_crashes [ (0, 3) ] Schedule.round_robin
  in
  let _ =
    run_sa ~f:2 ~sched ~bodies_of:(fun sa ->
        [
          (fun _ ->
            Safe_agreement.propose sa ~me:0 (i 1);
            ignore (Safe_agreement.read sa ~me:0 ~max_spins:10));
          (fun _ ->
            Safe_agreement.propose sa ~me:1 (i 2);
            out := Safe_agreement.read sa ~me:1 ~max_spins:100);
        ])
  in
  Alcotest.(check bool) "reader unblocked after settled crash" true
    (match !out with Some _ -> true | None -> false)

(* ---- Pathological ---- *)

let test_pathological () =
  let c = Run.init ~m:1 [ Pathological.spinner ~name:"s" ] in
  let _, outcome = Run.run ~max_steps:100 ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "spinner never ends" true (outcome = Run.Step_limit);
  let c = Run.init ~m:1 [ Pathological.constant ~name:"c" ~output:(i 1) ] in
  let c', _ = Run.run ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "constant outputs" true (Run.outputs c' = [ (0, i 1) ]);
  let c = Run.init ~m:2 [ Pathological.churner ~name:"ch" ~input:(i 5) ~writes:4 ] in
  let c', _ = Run.run ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "churner outputs input" true (Run.outputs c' = [ (0, i 5) ]);
  let c = Run.init ~m:1 [ Pathological.echo_first ~name:"e" ~input:(i 9) ] in
  let c', _ = Run.run ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "echo outputs own input on empty memory" true
    (Run.outputs c' = [ (0, i 9) ])

(* ---- properties ---- *)

let prop_racing_termination_validity =
  QCheck.Test.make
    ~name:"racing m=n: terminates with valid outputs under random schedules"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 2 5))
    (fun (seed, n) ->
      let inputs = List.init n (fun p -> i p) in
      let c = Run.init ~m:n (racing_procs ~m:n inputs) in
      let c', outcome = Run.run ~max_steps:200_000 ~sched:(Schedule.random ~seed) c in
      outcome = Run.All_done
      && List.for_all
           (fun (_, o) -> List.exists (Value.equal o) inputs)
           (Run.outputs c'))

let prop_adopt2_agreement =
  QCheck.Test.make ~name:"adopt2: agreement under random schedules" ~count:200
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 0 5) (int_range 0 5)))
    (fun (seed, (a, b)) ->
      let c = Run.init ~m:2 (adopt_pair [ i a; i b ]) in
      let c', outcome = Run.run ~sched:(Schedule.random ~seed) c in
      outcome = Run.All_done
      && List.length (Value.distinct (List.map snd (Run.outputs c'))) <= 1)

let prop_approx_random =
  QCheck.Test.make ~name:"approx agreement under random schedules" ~count:100
    QCheck.(triple (int_bound 100_000) (int_range 2 4) (int_range 1 3))
    (fun (seed, n, e10) ->
      let eps = float_of_int e10 /. 10.0 in
      let rounds = Approx_agreement.rounds_for ~eps in
      let inputs = List.init n (fun p -> Value.Float (float_of_int p /. float_of_int (max 1 (n - 1)))) in
      let procs =
        List.mapi (fun pid inp -> (Approx_agreement.protocol ~rounds ()) pid inp) inputs
      in
      let c = Run.init ~m:n procs in
      let c', outcome = Run.run ~max_steps:200_000 ~sched:(Schedule.random ~seed) c in
      outcome = Run.All_done
      &&
      let outputs = List.map snd (Run.outputs c') in
      match Task.check (Task.approx ~eps) ~inputs ~outputs with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "protocols"
    [
      ( "racing",
        [
          Alcotest.test_case "solo" `Quick test_racing_solo;
          Alcotest.test_case "2 procs agree" `Quick test_racing_two_procs_agree;
          Alcotest.test_case "n procs agree" `Quick test_racing_n_procs_agree;
          Alcotest.test_case "obstruction-free" `Quick test_racing_obstruction_free;
          Alcotest.test_case "m < n disagreement witness" `Quick
            test_racing_one_register_disagreement;
          Alcotest.test_case "validity" `Quick test_racing_validity;
          Alcotest.test_case "covering adversary rate" `Slow
            test_racing_covering_adversary_rate;
        ] );
      ( "adopt2",
        [
          Alcotest.test_case "solo" `Quick test_adopt2_solo;
          Alcotest.test_case "exhaustive model check" `Quick test_adopt2_exhaustive;
          Alcotest.test_case "obstruction-free" `Quick test_adopt2_obstruction_free;
        ] );
      ( "committee",
        [
          Alcotest.test_case "partition" `Quick test_committee_partition;
          Alcotest.test_case "k-set valid" `Quick test_committee_kset;
          Alcotest.test_case "racing committees validity" `Quick
            test_committee_racing_validity;
          Alcotest.test_case "intra-group agreement" `Quick
            test_committee_intra_group_agreement;
        ] );
      ( "approx",
        [
          Alcotest.test_case "rounds_for" `Quick test_approx_rounds_for;
          Alcotest.test_case "agreement" `Quick test_approx_agreement;
          Alcotest.test_case "wait-free under crash" `Quick
            test_approx_wait_free_under_crash;
          Alcotest.test_case "solo" `Quick test_approx_solo;
          Alcotest.test_case "shared slots (space-constrained)" `Quick
            test_approx_shared_slots;
          Alcotest.test_case "exhaustive model check" `Quick test_approx_exhaustive;
        ] );
      ( "safe agreement",
        [
          Alcotest.test_case "solo" `Quick test_sa_solo;
          Alcotest.test_case "agreement + validity" `Quick test_sa_agreement_random;
          Alcotest.test_case "unsafe-window crash blocks (BG contrast)" `Quick
            test_sa_crash_in_unsafe_window_blocks;
          Alcotest.test_case "settled crash harmless" `Quick
            test_sa_crash_after_settling_ok;
        ] );
      ("pathological", [ Alcotest.test_case "behaviours" `Quick test_pathological ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_racing_termination_validity; prop_adopt2_agreement; prop_approx_random ]
      );
    ]
