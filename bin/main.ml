(* rsim — command-line interface to the revisionist-simulation library. *)

open Core
open Cmdliner
module Log = Obs.Log

(* ---------------- shared observability options ---------------- *)

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json); ("pretty", `Pretty) ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print run telemetry before exiting: $(b,json) emits one compact \
           JSON object as the final stdout line (machine-extractable even \
           when mixed with regular output); $(b,pretty) prints a readable \
           dump of every non-zero metric.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record the run as a Chrome trace_event file — open it in \
           chrome://tracing or Perfetto (ui.perfetto.dev). If $(docv) ends \
           in .jsonl, compact JSONL (one event per line) is written instead.")

let obs_start ~trace_out = if trace_out <> None then Obs.Trace.start ()

(* Flush observability outputs. Runs after all of a command's regular
   output, so a [--metrics json] dump is always the last stdout line. *)
let obs_finish ~metrics ~trace_out =
  (match trace_out with
  | None -> ()
  | Some path ->
    Obs.Trace.stop ();
    Obs.Trace.write ~path ();
    Log.info (fun k -> k "trace: %d events -> %s" (Obs.Trace.length ()) path));
  match metrics with
  | None -> ()
  | Some `Pretty -> Format.printf "%a@?" Obs.Metrics.pp ()
  | Some `Json -> print_endline (Obs.Json.to_string (Obs.Metrics.to_json ()))

(* ---------------- bounds ---------------- *)

let bounds_cmd =
  let table =
    Arg.(
      value
      & opt (enum [ ("kset", `Kset); ("approx", `Approx); ("headline", `Headline) ]) `Headline
      & info [ "table" ] ~doc:"Which table: kset, approx, or headline.")
  in
  let ns =
    Arg.(value & opt (list int) [ 8; 16; 32 ] & info [ "n" ] ~doc:"Values of n.")
  in
  let run table ns =
    let fmt = Format.std_formatter in
    (match table with
    | `Kset ->
      Tables.print_kset fmt (Tables.kset_rows ~ns ~ks:[ 1; 2; 4; 7 ] ~xs:[ 1; 2; 4 ])
    | `Approx ->
      Tables.print_approx fmt
        (Tables.approx_rows ~ns ~epss:[ 0.1; 1e-3; 1e-6; 1e-12; 1e-24 ])
    | `Headline -> Tables.print_headline fmt ~ns);
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's lower/upper bound tables (Corollaries 33-34).")
    Term.(const run $ table $ ns)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Simulated processes.") in
  let m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Snapshot components.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Simulators.") in
  let d = Arg.(value & opt int 0 & info [ "d" ] ~doc:"Direct simulators (the paper's x).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let arch = Arg.(value & flag & info [ "show-architecture" ] ~doc:"Print Figure 1 for this spec.") in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"Run the Aug spec checker and the Lemma 26 replay.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full run: M-operations, journals, revisions.") in
  let run n m f d seed arch check trace metrics trace_out =
    obs_start ~trace_out;
    let spec =
      {
        Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
        n;
        m;
        f;
        d;
        inputs = List.init f (fun p -> Value.Int (p + 1));
      }
    in
    if arch then print_string (Harness.architecture spec);
    let result = Harness.run ~sched:(Schedule.random ~seed) spec in
    Printf.printf "wait-free: %b   H-operations: %d\n" result.Harness.all_done
      result.Harness.total_ops;
    List.iter
      (fun (i, v) -> Printf.printf "simulator q%d output %s\n" i (Value.show v))
      result.Harness.outputs;
    (match Harness.validate spec result ~task:Task.consensus with
    | Ok () -> print_endline "consensus: valid"
    | Error e -> Printf.printf "consensus: VIOLATED (%s)\n" (Harness.explain e));
    if trace then Trace_pp.pp_run Format.std_formatter spec result;
    if check then begin
      let aug_rep = Aug_spec.check result.Harness.aug result.Harness.trace in
      Format.printf "augmented-snapshot spec: %s@."
        (if aug_rep.Aug_spec.ok then "all lemmas hold" else "FAILED");
      if not aug_rep.Aug_spec.ok then
        Format.printf "%a@." Aug_spec.pp_report aug_rep;
      let rep = Analysis.check spec result in
      Format.printf
        "Lemma 26 replay: %s (lin=%d revisions=%d hidden steps=%d)@."
        (if rep.Analysis.ok then "execution reconstructed and replayed"
         else "FAILED")
        rep.Analysis.stats.Analysis.n_lin_items
        rep.Analysis.stats.Analysis.n_revisions
        rep.Analysis.stats.Analysis.n_hidden_steps;
      if not rep.Analysis.ok then Format.printf "%a@." Analysis.pp_report rep
    end;
    obs_finish ~metrics ~trace_out
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the revisionist simulation of racing consensus (Theorem 21's construction).")
    Term.(
      const run $ n $ m $ f $ d $ seed $ arch $ check $ trace $ metrics_arg
      $ trace_out_arg)

(* ---------------- witness ---------------- *)

let witness_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Simulated processes.") in
  let m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Snapshot components.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Simulators.") in
  let d = Arg.(value & opt int 0 & info [ "d" ] ~doc:"Direct simulators.") in
  let seeds = Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Schedules to search.") in
  let run n m f d seeds =
    let bound = Lower.consensus ~n in
    Printf.printf "Corollary 33: consensus among n=%d needs >= %d registers; trying m=%d.\n"
      n bound m;
    let found = ref 0 in
    let first = ref None in
    for seed = 0 to seeds - 1 do
      let spec =
        {
          Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
          n;
          m;
          f;
          d;
          inputs = List.init f (fun p -> Value.Int (p + 1));
        }
      in
      let result = Harness.run ~sched:(Schedule.random ~seed) spec in
      match Harness.validate spec result ~task:Task.consensus with
      | Error _ when result.Harness.all_done ->
        incr found;
        if !first = None then first := Some seed
      | _ -> ()
    done;
    (match !first with
    | Some s ->
      Printf.printf
        "violations in %d/%d schedules (first seed %d): the simulation drives the\n\
         under-provisioned protocol to disagreement, as the reduction predicts.\n"
        !found seeds s
    | None ->
      Printf.printf "no violation in %d schedules (space is sufficient here).\n" seeds)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Search schedules for the disagreement the space lower bound predicts.")
    Term.(const run $ n $ m $ f $ d $ seeds)

(* ---------------- derand ---------------- *)

let derand_cmd =
  let proto =
    Arg.(
      value
      & opt (enum [ ("coin", `Coin); ("ticket", `Ticket) ]) `Coin
      & info [ "protocol" ] ~doc:"Which nondeterministic protocol: coin or ticket.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let run proto seed =
    match proto with
    | `Coin ->
      let procs =
        [
          Derandomize.convert (Nd_examples.coin_consensus ~me:0 ()) ~cap:10_000
            ~input:(Value.Int 1);
          Derandomize.convert (Nd_examples.coin_consensus ~me:1 ()) ~cap:10_000
            ~input:(Value.Int 2);
        ]
      in
      let c = Mrun.init procs in
      Printf.printf "initial shortest solo paths: %s\n"
        (String.concat ", "
           (List.map
              (fun pid ->
                match Derandomize.solo_distance (Mrun.proc c pid) with
                | Some d -> Printf.sprintf "p%d: %d" pid d
                | None -> Printf.sprintf "p%d: none" pid)
              [ 0; 1 ]));
      let c', outcome = Mrun.run ~max_steps:500 ~sched:(Schedule.random ~seed) c in
      Printf.printf "outcome: %s\n"
        (match outcome with
        | Mrun.All_done -> "all decided"
        | Mrun.Step_limit -> "step limit (lockstep livelock; OF still holds solo)"
        | Mrun.Schedule_exhausted -> "schedule exhausted");
      List.iter
        (fun (pid, v) -> Printf.printf "p%d decided %s\n" pid (Value.show v))
        (Mrun.outputs c')
    | `Ticket ->
      let procs =
        List.init 3 (fun _ ->
            Derandomize.convert Nd_examples.ticket ~cap:10_000 ~input:(Value.Int 0))
      in
      let c = Mrun.init procs in
      let c', _ = Mrun.run ~sched:(Schedule.random ~seed) c in
      List.iter
        (fun (pid, v) -> Printf.printf "p%d got ticket %s\n" pid (Value.show v))
        (Mrun.outputs c')
  in
  Cmd.v
    (Cmd.info "derand"
       ~doc:"Derandomize a nondeterministic solo-terminating protocol (Theorem 35) and run it.")
    Term.(const run $ proto $ seed)

(* ---------------- sperner ---------------- *)

let sperner_cmd =
  let scale = Arg.(value & opt int 8 & info [ "s"; "scale" ] ~doc:"Subdivision scale.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Coloring seed.") in
  let run scale seed =
    let coloring = Sperner.random_coloring ~s:scale ~seed in
    let tri = Sperner.trichromatic ~s:scale ~coloring in
    Printf.printf
      "random Sperner coloring at scale %d: %d trichromatic cells (odd, per the lemma)\n"
      scale (List.length tri);
    (match Sperner.find_by_walk ~s:scale ~coloring with
    | Some ((a1, a2), (b1, b2), (c1, c2)) ->
      Printf.printf "door-to-door walk found {(%d,%d) (%d,%d) (%d,%d)}\n" a1 a2
        b1 b2 c1 c2
    | None -> print_endline "walk failed (invalid coloring?)");
    (* render the coloring as a triangle of digits *)
    for k = scale downto 0 do
      print_string (String.make k ' ');
      for i = 0 to scale - k do
        let j = scale - k - i in
        Printf.printf "%d " (coloring (i, j))
      done;
      print_newline ()
    done
  in
  Cmd.v
    (Cmd.info "sperner"
       ~doc:"Sperner's lemma demo: the combinatorial core of the reduction's target.")
    Term.(const run $ scale $ seed)

(* ---------------- explore ---------------- *)

let print_violation i (v : Explore.violation) =
  Printf.printf "violation %d:\n" (i + 1);
  Printf.printf "  original (%d steps): [%s]\n"
    (List.length v.Explore.original)
    (String.concat "; " (List.map string_of_int v.Explore.original));
  Printf.printf "  shrunk   (%d steps): [%s]\n"
    (List.length v.Explore.script)
    (String.concat "; " (List.map string_of_int v.Explore.script));
  List.iter (fun e -> Printf.printf "  - %s\n" e) v.Explore.errors

let save_violations ~out ~workload ~max_steps violations =
  match out with
  | None -> ()
  | Some path ->
    List.iteri
      (fun i v ->
        let path =
          if i = 0 then path else Printf.sprintf "%s.%d" path (i + 1)
        in
        Artifact.save ~path (Artifact.of_violation ~workload ~max_steps v);
        Printf.printf "artifact saved to %s (replay with: rsim replay %s)\n"
          path path)
      violations

let build_workload ~workload ~f ~m ~n ~d ~inject ~faults ~seed =
  let inject =
    match inject with
    | None -> Ok None
    | Some s -> (
      match Explore.fault_of_string s with
      | Some fault -> Ok (Some fault)
      | None -> Error (Printf.sprintf "unknown seeded bug %S" s))
  in
  let faults =
    (* a named family (crashy, ...) draws its specs from (f, seed), so
       the same command line always injects the same faults *)
    match faults with
    | None -> Ok []
    | Some s -> Faults.resolve ~n_procs:f ~seed s
  in
  match (inject, faults) with
  | Error e, _ | _, Error e -> Error e
  | Ok inject, Ok faults -> (
    match workload with
    | "racing" ->
      if inject <> None then
        Error "--inject applies to augmented-snapshot workloads only"
      else Ok (Explore.Harness_target.racing ~faults ~n ~m ~f ~d ())
    | name -> (
      match Explore.Aug_target.builtin ?inject ~faults ~name ~f ~m () with
      | Some w -> Ok w
      | None ->
        Error
          (Printf.sprintf "unknown workload %S (expected one of: %s)" name
             (String.concat ", "
                (Explore.Aug_target.builtin_names @ [ "racing" ])))))

let explore_cmd =
  let workload =
    Arg.(
      value
      & opt string "bu-conflict"
      & info [ "workload" ]
          ~doc:
            "Workload to explore: bu-conflict, bu-scan, bu-then-scan, mixed \
             (augmented snapshot), or racing (full simulation).")
  in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Processes / simulators.") in
  let m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Snapshot components.") in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Simulated processes (racing only).") in
  let d = Arg.(value & opt int 0 & info [ "d" ] ~doc:"Direct simulators (racing only).") in
  let mode =
    Arg.(
      value
      & opt (enum [ ("exhaustive", `Exhaustive); ("sweep", `Sweep) ]) `Exhaustive
      & info [ "mode" ]
          ~doc:"exhaustive: DFS over all schedules; sweep: parallel randomized.")
  in
  let max_steps =
    Arg.(
      value & opt int 0
      & info [ "max-steps" ]
          ~doc:"Step bound per execution (0 = 12 for exhaustive, 200 for sweep).")
  in
  let preemption_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "preemption-bound" ]
          ~doc:"Only explore schedules with at most this many preemptions.")
  in
  let budget =
    Arg.(value & opt int 2000 & info [ "budget" ] ~doc:"Sweep: schedules to run.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Parallel domains for both modes (default: auto).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Exhaustive: disable state-fingerprint deduplication and explore \
             the literal schedule tree.")
  in
  let no_independence =
    Arg.(
      value & flag
      & info [ "no-independence" ]
          ~doc:
            "Exhaustive: disable sleep-set pruning of independent \
             (component-disjoint) Block-Update interleavings.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify-independence" ]
          ~doc:
            "Exhaustive: validate every sleep-set prune at runtime — each \
             pruned pair's operations must turn out to be triple-appends on \
             disjoint components once they execute. Checks and violations are \
             counted in the explore.certify.* metrics and printed; a non-zero \
             violation count means the independence relation lied and exits \
             with status 1.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Sweep: base seed.") in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ]
          ~doc:
            "Seed a bug: skip-yield-check, yield-on-higher or spin-on-yield.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PROFILE"
          ~doc:
            "Fault-plane profile: a named family (crashy, stally, restarting, \
             chaos — drawn deterministically from --f and --seed) or a literal \
             profile like 'crash\\@1:3,stall\\@0:2*4'. Crashed processes lose \
             their local state; shared memory persists.")
  in
  let max_violations =
    Arg.(
      value & opt int 1
      & info [ "max-violations" ] ~doc:"Stop after this many distinct counterexamples.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH" ~doc:"Save counterexample artifacts here.")
  in
  let run workload f m n d mode max_steps preemption_bound budget domains
      no_dedup no_independence certify seed inject faults max_violations out
      metrics trace_out =
    match build_workload ~workload ~f ~m ~n ~d ~inject ~faults ~seed with
    | Error e ->
      Log.err (fun k -> k "explore: %s" e);
      exit 2
    | Ok w ->
      obs_start ~trace_out;
      (match w.Explore.faults with
      | None -> ()
      | Some profile -> Printf.printf "fault profile: %s\n" profile);
      let violations =
        match mode with
        | `Exhaustive ->
          let max_steps = if max_steps = 0 then 12 else max_steps in
          let rep =
            Explore.exhaustive ~max_steps ?preemption_bound ~max_violations
              ?domains ~dedup:(not no_dedup)
              ~independence:(not no_independence) ~certify w
          in
          Printf.printf
            "exhaustive %s: %d prefixes, %d complete + %d truncated executions \
             (max %d steps%s) on %d domains; %d dedup cuts, %d sleep prunes\n"
            w.Explore.name rep.Explore.prefixes rep.Explore.complete
            rep.Explore.truncated max_steps
            (match preemption_bound with
            | None -> ""
            | Some b -> Printf.sprintf ", <= %d preemptions" b)
            rep.Explore.domains rep.Explore.dedup_hits rep.Explore.pruned;
          if certify then
            Printf.printf
              "certify-independence: %d commutation claims checked, %d \
               violations\n"
              rep.Explore.certify_checks rep.Explore.certify_violations;
          List.iteri print_violation rep.Explore.violations;
          save_violations ~out ~workload:w ~max_steps rep.Explore.violations;
          if rep.Explore.violations = [] && rep.Explore.certify_violations = 0
          then
            print_endline
              "no violations: every explored schedule satisfies the oracles";
          if rep.Explore.certify_violations > 0 then
            (* surface unsound prunes through the same exit path as
               oracle violations *)
            [
              {
                Explore.script = [];
                original = [];
                errors =
                  [
                    Printf.sprintf
                      "certify-independence: %d unsound sleep-set prunes"
                      rep.Explore.certify_violations;
                  ];
              };
            ]
          else rep.Explore.violations
        | `Sweep ->
          let max_steps = if max_steps = 0 then 200 else max_steps in
          let rep =
            Explore.sweep ?domains ~max_steps ~max_violations ~budget ~seed w
          in
          Printf.printf "sweep %s: %d executions on %d domains (max %d steps)\n"
            w.Explore.name rep.Explore.executions rep.Explore.domains max_steps;
          List.iteri print_violation rep.Explore.violations;
          save_violations ~out ~workload:w ~max_steps rep.Explore.violations;
          if rep.Explore.violations = [] then print_endline "no violations found";
          rep.Explore.violations
      in
      obs_finish ~metrics ~trace_out;
      if violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check a workload over schedules: exhaustive bounded DFS or \
          parallel randomized sweeps, with shrinking and replayable artifacts."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"no oracle violation was found.";
           Cmd.Exit.info 1 ~doc:"at least one violation was found.";
           Cmd.Exit.info 2
             ~doc:
               "the workload could not be built (unknown name, bad seeded bug \
                or fault profile).";
           Cmd.Exit.info Cmd.Exit.cli_error ~doc:"command-line parse error.";
         ])
    Term.(
      const run $ workload $ f $ m $ n $ d $ mode $ max_steps $ preemption_bound
      $ budget $ domains $ no_dedup $ no_independence $ certify $ seed $ inject
      $ faults $ max_violations $ out $ metrics_arg $ trace_out_arg)

(* ---------------- replay ---------------- *)

let replay_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT" ~doc:"Counterexample artifact (JSON).")
  in
  let run path metrics trace_out =
    match Artifact.load ~path with
    | Error e ->
      Log.err (fun k -> k "replay: %s" e);
      exit 2
    | Ok art -> (
      match Artifact.to_workload art with
      | Error e ->
        Log.err (fun k -> k "replay: %s" e);
        exit 2
      | Ok w ->
        obs_start ~trace_out;
        Printf.printf "replaying %s%s%s (%d-step script) from %s\n"
          art.Artifact.workload
          (match art.Artifact.inject with
          | None -> ""
          | Some s -> Printf.sprintf " [seeded bug: %s]" s)
          (match art.Artifact.faults with
          | None -> ""
          | Some s -> Printf.sprintf " [faults: %s]" s)
          (List.length art.Artifact.script)
          path;
        let out =
          Explore.replay w ~max_steps:art.Artifact.max_steps
            ~script:art.Artifact.script
        in
        let code =
          if out.Explore.errors = [] then begin
            print_endline "NOT reproduced: the script passes all oracles";
            1
          end
          else begin
            print_endline "reproduced:";
            List.iter (fun e -> Printf.printf "  - %s\n" e) out.Explore.errors;
            0
          end
        in
        obs_finish ~metrics ~trace_out;
        exit code)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a saved counterexample artifact and confirm it still fails."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"the violation was reproduced.";
           Cmd.Exit.info 1 ~doc:"the script now passes all oracles.";
           Cmd.Exit.info 2
             ~doc:
               "the artifact cannot be read or rebuilt: missing file, \
                directory, unreadable permissions, malformed JSON, unknown \
                workload, bad fault profile, or a newer schema version.";
           Cmd.Exit.info Cmd.Exit.cli_error ~doc:"command-line parse error.";
         ])
    Term.(const run $ path $ metrics_arg $ trace_out_arg)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT" ~doc:"Counterexample artifact (JSON).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("pretty", `Pretty) ]) `Pretty
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Telemetry format: $(b,pretty) (default) or $(b,json).")
  in
  let run path format trace_out =
    match Artifact.load ~path with
    | Error e ->
      Log.err (fun k -> k "stats: %s" e);
      exit 2
    | Ok art -> (
      match Artifact.to_workload art with
      | Error e ->
        Log.err (fun k -> k "stats: %s" e);
        exit 2
      | Ok w ->
        (* Telemetry for this run only: zero whatever start-up touched. *)
        Obs.Metrics.reset ();
        obs_start ~trace_out;
        let out =
          Explore.replay w ~max_steps:art.Artifact.max_steps
            ~script:art.Artifact.script
        in
        Printf.printf "%s: %s %s (%d-step script, %d oracle error(s))\n" path
          art.Artifact.workload
          (if out.Explore.errors = [] then "passes" else "reproduces")
          (List.length art.Artifact.script)
          (List.length out.Explore.errors);
        obs_finish ~metrics:(Some format) ~trace_out)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Re-run a saved artifact and print its telemetry: the metrics \
          registry after the run (counters, gauges, histograms) and, with \
          $(b,--trace-out), a Chrome trace of the execution. The oracle \
          verdict does not affect the exit code."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"telemetry was printed.";
           Cmd.Exit.info 2 ~doc:"the artifact cannot be read or rebuilt.";
           Cmd.Exit.info Cmd.Exit.cli_error ~doc:"command-line parse error.";
         ])
    Term.(const run $ path $ format $ trace_out_arg)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let root =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Workspace root to scan (lib/, bin/, bench/, dev/ under it).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"PATH"
          ~doc:
            "Findings baseline; only findings not in it fail the run \
             (default: DIR/lint.baseline.json).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH" ~doc:"Write the JSON report here.")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:"Rewrite the baseline to the current findings and exit 0.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Print baselined findings too, not only fresh ones.")
  in
  let run root baseline out update all =
    let bpath =
      match baseline with
      | Some p -> p
      | None -> Filename.concat root "lint.baseline.json"
    in
    let report = Lint.scan ~root () in
    match Lint.load_baseline ~path:bpath with
    | Error e ->
      Log.err (fun k -> k "lint: %s" e);
      exit 2
    | Ok base ->
      let fresh = Lint.fresh_against ~baseline:base report.Lint.findings in
      (match out with
      | None -> ()
      | Some p ->
        let oc = open_out p in
        output_string oc
          (Obs.Json.to_string_pretty
             (Lint.report_to_json ~tool:"rsim-lint" ~fresh report));
        output_string oc "\n";
        close_out oc);
      if update then begin
        let oc = open_out bpath in
        output_string oc (Lint.baseline_to_string report.Lint.findings);
        close_out oc;
        Printf.printf "baseline updated: %d findings\n"
          (List.length report.Lint.findings)
      end
      else begin
        Printf.printf
          "rsim-lint: %d files, %d findings (%d baselined, %d fresh)\n"
          report.Lint.files
          (List.length report.Lint.findings)
          (List.length report.Lint.findings - List.length fresh)
          (List.length fresh);
        List.iter
          (fun f -> Format.printf "%a@." Lint.pp_finding f)
          (if all then report.Lint.findings else fresh);
        if fresh <> [] then exit 1
      end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of the workspace: shared-mutability discipline \
          (R1), no direct printing in libraries (R2), determinism of the \
          model-checked paths (R3), no partial functions on hot paths (R4), \
          interfaces everywhere (R5). Fails only on findings not in the \
          committed baseline."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"no fresh findings.";
           Cmd.Exit.info 1 ~doc:"at least one finding not in the baseline.";
           Cmd.Exit.info 2 ~doc:"the baseline file is unreadable.";
           Cmd.Exit.info Cmd.Exit.cli_error ~doc:"command-line parse error.";
         ])
    Term.(const run $ root $ baseline $ out $ update $ all)

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (E1..E10); all if omitted.")
  in
  let run id =
    match id with
    | None -> Rsim_experiments.Experiments.print_all Format.std_formatter
    | Some id -> (
      match Rsim_experiments.Experiments.find id with
      | Some e ->
        Format.printf "=== %s — %s ===@." e.Rsim_experiments.Experiments.id
          e.Rsim_experiments.Experiments.title;
        List.iter print_endline (e.Rsim_experiments.Experiments.run ())
      | None ->
        Log.err (fun k -> k "unknown experiment: %s" id);
        exit 2)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the EXPERIMENTS.md tables (E1..E10).")
    Term.(const run $ id)

let main_cmd =
  let doc = "Revisionist simulations: executable space-lower-bound machinery (PODC 2018)." in
  Cmd.group
    (Cmd.info "rsim" ~version:Core.version ~doc)
    [
      bounds_cmd;
      simulate_cmd;
      witness_cmd;
      derand_cmd;
      sperner_cmd;
      explore_cmd;
      replay_cmd;
      stats_cmd;
      lint_cmd;
      experiments_cmd;
    ]

let () =
  (* All diagnostics go through the observability plane's logger:
     errors-only by default, RSIM_LOG=debug|info|warn|error|quiet
     overrides, always on stderr so machine-readable stdout stays
     clean. *)
  Obs.Log.init_from_env ();
  exit (Cmd.eval main_cmd)
