(* Benchmark & experiment harness.

   Two halves:
   1. Regenerate every experiment table (E1..E10 of EXPERIMENTS.md) —
      the paper has no measured tables of its own, so these executable
      checks of its lemmas and bounds are what we reproduce.
   2. Bechamel micro-benchmarks, one per experiment workload, measuring
      the cost of the machinery itself (augmented-snapshot operations,
      spec checking, full simulations, replay analysis, solo-path
      search, bound tables). *)

open Core
open Bechamel
open Toolkit

(* -------- part 2: one Test.make per experiment workload -------- *)

let stage = Staged.stage

let e1_aug_ops =
  Test.make ~name:"e1/aug-workload f=3 m=3"
    (stage (fun () -> Rsim_experiments.Exp_common.aug_workload ~f:3 ~m:3 ~n_ops:6 ~seed:11))

let e2_yield_probe =
  Test.make ~name:"e2/aug-workload f=4 m=3"
    (stage (fun () -> Rsim_experiments.Exp_common.aug_workload ~f:4 ~m:3 ~n_ops:6 ~seed:12))

let e3_spec_check =
  let aug, trace = Rsim_experiments.Exp_common.aug_workload ~f:3 ~m:3 ~n_ops:8 ~seed:13 in
  Test.make ~name:"e3/spec-check (fixed trace)"
    (stage (fun () -> Aug_spec.check aug trace))

let e4_replay =
  let spec, result = Rsim_experiments.Exp_common.racing_sim ~n:6 ~m:3 ~f:2 ~d:0 ~seed:14 in
  Test.make ~name:"e4/lemma26-replay (fixed run)"
    (stage (fun () -> Analysis.check spec result))

let e5_reduction_small =
  Test.make ~name:"e5/simulation n=4 m=2 f=2"
    (stage (fun () -> Rsim_experiments.Exp_common.racing_sim ~n:4 ~m:2 ~f:2 ~d:0 ~seed:15))

let e5_reduction_mid =
  Test.make ~name:"e5/simulation n=8 m=2 f=4"
    (stage (fun () -> Rsim_experiments.Exp_common.racing_sim ~n:8 ~m:2 ~f:4 ~d:0 ~seed:16))

let e5_reduction_direct =
  Test.make ~name:"e5/simulation n=7 m=5 f=2 d=1"
    (stage (fun () -> Rsim_experiments.Exp_common.racing_sim ~n:7 ~m:5 ~f:2 ~d:1 ~seed:17))

let e6_complexity =
  Test.make ~name:"e6/a-b-bounds m<=6"
    (stage (fun () ->
         for m = 1 to 6 do
           for i = 1 to 6 do
             ignore (Complexity.b ~m i)
           done
         done))

let e7_tables =
  Test.make ~name:"e7/bound-tables"
    (stage (fun () ->
         ignore
           (Tables.kset_rows ~ns:[ 8; 16; 32; 64 ] ~ks:[ 1; 2; 4; 7 ]
              ~xs:[ 1; 2; 4 ])))

let e8_solo_search =
  let nd = Nd_examples.coin_consensus ~me:0 () in
  let state = nd.Ndproto.init (Value.Int 1) in
  let ep = Ndproto.initial_ep nd in
  Test.make ~name:"e8/solo-path-search"
    (stage (fun () -> Solo_path.shortest nd ~state ~ep ~cap:10_000))

let e8_derand_run =
  Test.make ~name:"e8/derandomized-run"
    (stage (fun () ->
         let procs =
           [
             Derandomize.convert (Nd_examples.coin_consensus ~me:0 ()) ~cap:10_000
               ~input:(Value.Int 1);
             Derandomize.convert (Nd_examples.coin_consensus ~me:1 ()) ~cap:10_000
               ~input:(Value.Int 2);
           ]
         in
         Mrun.run ~max_steps:500 ~sched:(Schedule.random ~seed:18)
           (Mrun.init procs)))

let explore_workload () =
  match
    Explore.Aug_target.builtin
      ~oracles:[ Explore.Aug_target.no_failure; Explore.Aug_target.spec ]
      ~name:"bu-conflict" ~f:2 ~m:2 ()
  with
  | Some w -> w
  | None -> assert false

let explore_exhaustive =
  let w = explore_workload () in
  Test.make ~name:"explore/exhaustive f=2 m=2 <=8"
    (stage (fun () -> Explore.exhaustive ~max_steps:8 w))

let explore_sweep_1d =
  let w = explore_workload () in
  Test.make ~name:"explore/sweep 64 scheds 1 domain"
    (stage (fun () -> Explore.sweep ~domains:1 ~max_steps:40 ~budget:64 ~seed:21 w))

let explore_sweep_4d =
  let w = explore_workload () in
  Test.make ~name:"explore/sweep 64 scheds 4 domains"
    (stage (fun () -> Explore.sweep ~domains:4 ~max_steps:40 ~budget:64 ~seed:21 w))

(* Fault-plane overhead: the same two conflicting Block-Updates run with
   no control hook at all, with the hook installed but an empty fault
   plan (the faults-off cost every supervised run now pays per
   H-operation), and with a real injected crash. The first two should be
   indistinguishable. *)
let bu_run ?control () =
  let aug = Aug.create ~f:2 ~m:2 () in
  Aug.F.run ?control ~sched:Schedule.round_robin ~apply:(Aug.apply aug)
    [
      (fun _ -> ignore (Aug.block_update aug ~me:0 [ (0, Value.Int 1) ]));
      (fun _ -> ignore (Aug.block_update aug ~me:1 [ (1, Value.Int 2) ]));
    ]

let faults_no_hook =
  Test.make ~name:"faults/bu-run no hook" (stage (fun () -> bu_run ()))

let faults_empty_plan =
  Test.make ~name:"faults/bu-run empty plan (off)"
    (stage (fun () ->
         let plan = Faults.plan ~adapter:Aug.fault_adapter [] in
         bu_run ~control:(Faults.control plan) ()))

let faults_crash =
  let specs =
    match Faults.of_string "crash@1:3" with Ok s -> s | Error _ -> assert false
  in
  Test.make ~name:"faults/bu-run crash@1:3"
    (stage (fun () ->
         let plan = Faults.plan ~adapter:Aug.fault_adapter specs in
         bu_run ~control:(Faults.control plan) ()))

let substrate_regsnap =
  Test.make ~name:"substrate/regsnap scan f=3"
    (stage (fun () ->
         let t = Regsnap.create ~f:3 in
         ignore
           (Regsnap.F.run ~sched:Schedule.round_robin ~apply:(Regsnap.apply t)
              [
                (fun _ -> Regsnap.update t ~me:0 (Value.Int 1));
                (fun _ -> Regsnap.update t ~me:1 (Value.Int 2));
                (fun _ -> ignore (Regsnap.scan t ~me:2));
              ])))

let substrate_sperner =
  Test.make ~name:"substrate/sperner walk s=12"
    (stage (fun () ->
         let coloring = Sperner.random_coloring ~s:12 ~seed:99 in
         Sperner.find_by_walk ~s:12 ~coloring))

let tests =
  [
    e1_aug_ops;
    e2_yield_probe;
    e3_spec_check;
    e4_replay;
    e5_reduction_small;
    e5_reduction_mid;
    e5_reduction_direct;
    e6_complexity;
    e7_tables;
    e8_solo_search;
    e8_derand_run;
    explore_exhaustive;
    explore_sweep_1d;
    explore_sweep_4d;
    faults_no_hook;
    faults_empty_plan;
    faults_crash;
    substrate_regsnap;
    substrate_sperner;
  ]

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-36s %14s %10s\n" "benchmark" "time/run" "r2";
  print_endline (String.make 64 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let estimates = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          let human t =
            if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
            else Printf.sprintf "%8.0f ns" t
          in
          Printf.printf "%-36s %14s %10s\n" name (human time) r2)
        estimates)
    tests

(* -------- explorer throughput: schedules per second -------- *)

let explore_throughput () =
  let w = explore_workload () in
  let report name executions dt =
    Printf.printf "%-36s %8d scheds %8.2f s %10.0f scheds/s\n" name executions
      dt
      (if dt > 0. then float_of_int executions /. dt else nan)
  in
  let t0 = Unix.gettimeofday () in
  let rep = Explore.exhaustive ~max_steps:10 w in
  report "exhaustive f=2 m=2 <=10"
    (rep.Explore.complete + rep.Explore.truncated)
    (Unix.gettimeofday () -. t0);
  let budget = 2048 in
  List.iter
    (fun domains ->
      let t0 = Unix.gettimeofday () in
      let rep = Explore.sweep ~domains ~max_steps:60 ~budget ~seed:31 w in
      report
        (Printf.sprintf "sweep %d scheds %d domain%s" budget domains
           (if domains = 1 then "" else "s"))
        rep.Explore.executions
        (Unix.gettimeofday () -. t0))
    [ 1; 2; 4 ]

(* -------- explorer snapshot: BENCH_explore.json -------- *)

(* Measure the parallel prefix-sharing engine against the pre-PR
   sequential DFS (kept as [Explore.exhaustive_naive]) on the standard
   f=2 m=2 conflicting Block-Update workload, plus how exhaustive
   throughput scales with domains on a fixed tree (pruning off so every
   domain count does identical work). Written to BENCH_explore.json so
   CI can track the engine's speedup and scaling across commits. *)
let explore_snapshot () =
  let w = explore_workload () in
  let max_steps = 12 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* warm up the allocator / code paths before timing *)
  ignore (Explore.exhaustive ~max_steps:8 w);
  let naive, dt_naive =
    time (fun () -> Explore.exhaustive_naive ~max_steps w)
  in
  let engine, dt_engine = time (fun () -> Explore.exhaustive ~max_steps w) in
  let speedup = if dt_engine > 0. then dt_naive /. dt_engine else nan in
  let rate n dt = if dt > 0. then float_of_int n /. dt else nan in
  let scale_steps = 14 in
  let scaling =
    List.map
      (fun domains ->
        let rep, dt =
          time (fun () ->
              Explore.exhaustive ~max_steps:scale_steps ~domains ~dedup:false
                ~independence:false w)
        in
        (domains, rep.Explore.executions, dt, rate rep.Explore.executions dt))
      [ 1; 2; 4 ]
  in
  let rate_at d =
    match List.find_opt (fun (d', _, _, _) -> d' = d) scaling with
    | Some (_, _, _, r) -> r
    | None -> nan
  in
  let scaling_1_to_4 =
    if rate_at 1 > 0. then rate_at 4 /. rate_at 1 else nan
  in
  let side name (rep : Explore.exhaustive_report) dt =
    ( name,
      Obs.Json.Obj
        [
          ("wall_s", Obs.Json.Float dt);
          ("executions", Obs.Json.Int rep.Explore.executions);
          ("prefixes", Obs.Json.Int rep.Explore.prefixes);
          ("complete", Obs.Json.Int rep.Explore.complete);
          ("truncated", Obs.Json.Int rep.Explore.truncated);
          ("dedup_hits", Obs.Json.Int rep.Explore.dedup_hits);
          ("pruned", Obs.Json.Int rep.Explore.pruned);
          ("domains", Obs.Json.Int rep.Explore.domains);
          ("violations", Obs.Json.Int (List.length rep.Explore.violations));
        ] )
  in
  let j =
    Obs.Json.Obj
      [
        ("workload", Obs.Json.Str "bu-conflict f=2 m=2");
        ("max_steps", Obs.Json.Int max_steps);
        side "naive" naive dt_naive;
        side "engine" engine dt_engine;
        ("speedup_vs_naive", Obs.Json.Float speedup);
        ("scaling_max_steps", Obs.Json.Int scale_steps);
        ( "scaling",
          Obs.Json.Arr
            (List.map
               (fun (domains, executions, dt, r) ->
                 Obs.Json.Obj
                   [
                     ("domains", Obs.Json.Int domains);
                     ("executions", Obs.Json.Int executions);
                     ("wall_s", Obs.Json.Float dt);
                     ("scheds_per_sec", Obs.Json.Float r);
                   ])
               scaling) );
        ("scaling_1_to_4", Obs.Json.Float scaling_1_to_4);
      ]
  in
  let oc = open_out "BENCH_explore.json" in
  output_string oc (Obs.Json.to_string_pretty j);
  output_string oc "\n";
  close_out oc;
  Printf.printf "%-36s %8.3f s  %6d executions\n" "naive DFS (pre-PR engine)"
    dt_naive naive.Explore.executions;
  Printf.printf "%-36s %8.3f s  %6d executions  (%.1fx)\n"
    "parallel prefix-sharing engine" dt_engine engine.Explore.executions
    speedup;
  List.iter
    (fun (domains, executions, dt, r) ->
      Printf.printf "%-36s %8.3f s  %6d executions  %10.0f scheds/s\n"
        (Printf.sprintf "exhaustive (pruning off) %d domain%s" domains
           (if domains = 1 then "" else "s"))
        dt executions r)
    scaling;
  Printf.printf "%-36s %10.2fx\n" "scaling 1 -> 4 domains" scaling_1_to_4;
  print_endline "wrote BENCH_explore.json"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* -------- certification snapshot: BENCH_certify.json -------- *)

(* Measure what [--certify-independence] costs: the same exhaustive
   exploration with runtime validation of every sleep-set prune off and
   on, over a workload whose operations actually commute (bu-then-scan,
   where prunes happen and claims are checked) and over the all-conflict
   workload (where certification's footprint bookkeeping runs but no
   pair is ever claimed). Written to BENCH_certify.json; the snapshot
   asserts the certified run stays under [max_overhead]x the plain run,
   so CI catches the validation layer becoming accidentally hot. *)
let certify_snapshot () =
  let max_steps = 12 in
  let max_overhead = 2.5 in
  let wl name =
    match
      Explore.Aug_target.builtin
        ~oracles:[ Explore.Aug_target.no_failure; Explore.Aug_target.spec ]
        ~name ~f:2 ~m:2 ()
    with
    | Some w -> w
    | None -> assert false
  in
  let side name =
    let w = wl name in
    ignore (Explore.exhaustive ~max_steps:8 w);
    (* warmed up *)
    let _plain, dt_plain = time (fun () -> Explore.exhaustive ~max_steps w) in
    let cert, dt_cert =
      time (fun () -> Explore.exhaustive ~max_steps ~certify:true w)
    in
    let overhead = if dt_plain > 0. then dt_cert /. dt_plain else nan in
    Printf.printf
      "%-36s %8.3f s plain, %8.3f s certified (%.2fx), %d claims checked, %d \
       violations\n"
      name dt_plain dt_cert overhead cert.Explore.certify_checks
      cert.Explore.certify_violations;
    ( overhead,
      cert.Explore.certify_violations,
      Obs.Json.Obj
        [
          ("workload", Obs.Json.Str name);
          ("wall_s_plain", Obs.Json.Float dt_plain);
          ("wall_s_certified", Obs.Json.Float dt_cert);
          ("overhead_x", Obs.Json.Float overhead);
          ("executions", Obs.Json.Int cert.Explore.executions);
          ("certify_checks", Obs.Json.Int cert.Explore.certify_checks);
          ("certify_violations", Obs.Json.Int cert.Explore.certify_violations);
        ] )
  in
  let sides = List.map side [ "bu-then-scan"; "bu-conflict" ] in
  let worst =
    List.fold_left
      (fun acc (o, _, _) -> if o > acc then o else acc)
      0. sides
  in
  let violations = List.fold_left (fun acc (_, v, _) -> acc + v) 0 sides in
  let ok = worst < max_overhead && violations = 0 in
  let j =
    Obs.Json.Obj
      [
        ("max_steps", Obs.Json.Int max_steps);
        ("max_overhead_x", Obs.Json.Float max_overhead);
        ("worst_overhead_x", Obs.Json.Float worst);
        ("certify_violations", Obs.Json.Int violations);
        ("pass", Obs.Json.Bool ok);
        ("workloads", Obs.Json.Arr (List.map (fun (_, _, j) -> j) sides));
      ]
  in
  let oc = open_out "BENCH_certify.json" in
  output_string oc (Obs.Json.to_string_pretty j);
  output_string oc "\n";
  close_out oc;
  Printf.printf "%-36s %10.2fx (budget %.1fx)\n" "worst certify overhead" worst
    max_overhead;
  print_endline "wrote BENCH_certify.json";
  if not ok then begin
    Printf.eprintf
      "FAIL: certify overhead %.2fx >= %.1fx or %d unsound prunes\n" worst
      max_overhead violations;
    exit 1
  end

(* -------- observability snapshot: BENCH_obs.json -------- *)

(* Measure what the observability plane costs and what it reports:
   sweep schedules/sec with the tracer off (the default) and on
   (sampled), and raw augmented-snapshot op throughput. Written to
   BENCH_obs.json so CI can track the obs-on overhead and the
   throughput numbers across commits. *)
let obs_snapshot () =
  let w = explore_workload () in
  let budget = 1024 and max_steps = 60 in
  let sweep () = Explore.sweep ~domains:1 ~max_steps ~budget ~seed:31 w in
  ignore (sweep ());
  (* warmed up *)
  let rep_off, dt_off = time sweep in
  Obs.Trace.start ~sample:16 ();
  let _, dt_on = time sweep in
  Obs.Trace.stop ();
  let trace_events = Obs.Trace.length () in
  Obs.Trace.clear ();
  let n_runs = 2048 in
  let total_ops, dt_ops =
    time (fun () ->
        let total = ref 0 in
        for _ = 1 to n_runs do
          let r = bu_run () in
          total := !total + r.Aug.F.total_ops
        done;
        !total)
  in
  let rate n dt = if dt > 0. then float_of_int n /. dt else nan in
  let sched_off = rate rep_off.Explore.executions dt_off in
  let sched_on = rate rep_off.Explore.executions dt_on in
  let overhead_pct =
    if dt_off > 0. then (dt_on -. dt_off) /. dt_off *. 100. else nan
  in
  let j =
    Obs.Json.Obj
      [
        ("sweep_budget", Obs.Json.Int budget);
        ("sweep_max_steps", Obs.Json.Int max_steps);
        ("schedules_per_sec_obs_off", Obs.Json.Float sched_off);
        ("schedules_per_sec_obs_on", Obs.Json.Float sched_on);
        ("obs_on_overhead_pct", Obs.Json.Float overhead_pct);
        ("trace_events", Obs.Json.Int trace_events);
        ("bu_runs", Obs.Json.Int n_runs);
        ("aug_ops_per_sec", Obs.Json.Float (rate total_ops dt_ops));
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Obs.Json.to_string_pretty j);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "%-36s %10.0f scheds/s\n%-36s %10.0f scheds/s (%+.1f%%)\n%-36s %10.0f ops/s\n"
    "sweep obs-off" sched_off "sweep obs-on (trace, 1/16 sampled)" sched_on
    overhead_pct "augmented-snapshot H ops" (rate total_ops dt_ops);
  print_endline "wrote BENCH_obs.json"

let () =
  if Array.exists (( = ) "--explore-only") Sys.argv then begin
    print_endline "======================================================";
    print_endline " Explorer snapshot (BENCH_explore.json)";
    print_endline "======================================================";
    explore_snapshot ();
    exit 0
  end;
  if Array.exists (( = ) "--certify-only") Sys.argv then begin
    print_endline "======================================================";
    print_endline " Certification snapshot (BENCH_certify.json)";
    print_endline "======================================================";
    certify_snapshot ();
    exit 0
  end;
  if Array.exists (( = ) "--obs-only") Sys.argv then begin
    print_endline "======================================================";
    print_endline " Observability snapshot (BENCH_obs.json)";
    print_endline "======================================================";
    obs_snapshot ();
    exit 0
  end;
  print_endline "======================================================";
  print_endline " Experiment tables (EXPERIMENTS.md, E1..E10)";
  print_endline "======================================================";
  Rsim_experiments.Experiments.print_all Format.std_formatter;
  Format.pp_print_flush Format.std_formatter ();
  print_newline ();
  print_endline "======================================================";
  print_endline " Micro-benchmarks (bechamel, monotonic clock)";
  print_endline "======================================================";
  run_benchmarks ();
  print_newline ();
  print_endline "======================================================";
  print_endline " Explorer throughput (schedules per second)";
  print_endline "======================================================";
  explore_throughput ();
  print_newline ();
  print_endline "======================================================";
  print_endline " Explorer snapshot (BENCH_explore.json)";
  print_endline "======================================================";
  explore_snapshot ();
  print_newline ();
  print_endline "======================================================";
  print_endline " Certification snapshot (BENCH_certify.json)";
  print_endline "======================================================";
  certify_snapshot ();
  print_newline ();
  print_endline "======================================================";
  print_endline " Observability snapshot (BENCH_obs.json)";
  print_endline "======================================================";
  obs_snapshot ()
