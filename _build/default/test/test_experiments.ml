(* Integration tests over the experiment harness: every experiment runs,
   produces non-trivial output, and reports no internal check failures.
   These are the same code paths `dune exec bench/main.exe` prints. *)

open Rsim_experiments

let contains_no sub lines =
  not
    (List.exists
       (fun line ->
         let rec search i =
           i + String.length sub <= String.length line
           && (String.sub line i (String.length sub) = sub || search (i + 1))
         in
         String.length sub <= String.length line && search 0)
       lines)

let run_experiment id () =
  match Experiments.find id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some e ->
    let lines = e.Experiments.run () in
    Alcotest.(check bool) "produces output" true (List.length lines >= 3);
    Alcotest.(check bool) "no FAIL marker" true (contains_no "FAIL" lines);
    Alcotest.(check bool) "no EXCEEDED marker" true (contains_no "EXCEEDED" lines)

let test_registry () =
  Alcotest.(check int) "eleven experiments" 11 (List.length Experiments.all);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Experiments.id ^ " has a title")
        true
        (String.length e.Experiments.title > 10))
    Experiments.all;
  Alcotest.(check bool) "find is case-insensitive" true
    (Experiments.find "e5b" <> None)

let test_e2_q0_atomic () =
  match Experiments.find "E2" with
  | None -> Alcotest.fail "E2 missing"
  | Some e ->
    let lines = e.Experiments.run () in
    Alcotest.(check bool) "q0 always atomic" true
      (List.exists
         (fun l ->
           let sub = "q0 always atomic: yes" in
           String.length l >= String.length sub
           && String.sub l 0 (String.length sub) = sub)
         lines)

let test_e5b_finds_witness () =
  match Experiments.find "E5b" with
  | None -> Alcotest.fail "E5b missing"
  | Some e ->
    let lines = e.Experiments.run () in
    Alcotest.(check bool) "some witness found" true
      (List.exists
         (fun l ->
           let rec has i =
             i + 10 <= String.length l
             && (String.sub l i 10 = "first seed" || has (i + 1))
           in
           has 0)
         lines)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "experiments registered" `Quick test_registry;
        ] );
      ( "runs",
        List.map
          (fun e ->
            Alcotest.test_case
              (e.Experiments.id ^ " clean")
              `Slow
              (run_experiment e.Experiments.id))
          Experiments.all );
      ( "content",
        [
          Alcotest.test_case "E2: q0 atomic" `Slow test_e2_q0_atomic;
          Alcotest.test_case "E5b: witness found" `Slow test_e5b_finds_witness;
        ] );
    ]
