open Rsim_value
open Rsim_augmented

let ts a = Vts.of_array a

let test_vts_order () =
  Alcotest.(check bool) "lex <" true (Vts.compare (ts [| 0; 1 |]) (ts [| 1; 0 |]) < 0);
  Alcotest.(check bool) "lex >" true (Vts.compare (ts [| 1; 0 |]) (ts [| 0; 5 |]) > 0);
  Alcotest.(check bool) "eq" true (Vts.equal (ts [| 2; 3 |]) (ts [| 2; 3 |]));
  Alcotest.(check bool) "geq refl" true (Vts.geq (ts [| 2; 3 |]) (ts [| 2; 3 |]))

let test_vts_make () =
  let t = Vts.make ~counts:[| 3; 1; 2 |] ~me:1 in
  Alcotest.(check (array int)) "increments own entry" [| 3; 2; 2 |] (Vts.to_array t)

let triple comp value tsv = { Hrep.comp; value = Value.Int value; ts = ts tsv }

let test_count_bu () =
  let c =
    Hrep.append_triples Hrep.empty_component
      [ triple 0 1 [| 1; 0 |]; triple 1 2 [| 1; 0 |] ]
  in
  Alcotest.(check int) "one BU, two triples" 1 (Hrep.count_bu c);
  let c = Hrep.append_triples c [ triple 0 3 [| 2; 0 |] ] in
  Alcotest.(check int) "two BUs" 2 (Hrep.count_bu c);
  Alcotest.(check int) "empty" 0 (Hrep.count_bu Hrep.empty_component)

let test_prefix () =
  let h = Hrep.create ~f:2 in
  let h1 = Array.copy h in
  h1.(0) <- Hrep.append_triples h.(0) [ triple 0 1 [| 1; 0 |] ];
  let h2 = Array.copy h1 in
  h2.(1) <- Hrep.append_triples h1.(1) [ triple 1 2 [| 1; 1 |] ];
  Alcotest.(check bool) "h prefix h1" true (Hrep.is_prefix h h1);
  Alcotest.(check bool) "h1 prefix h2" true (Hrep.is_prefix h1 h2);
  Alcotest.(check bool) "h prefix h2 (transitive)" true (Hrep.is_prefix h h2);
  Alcotest.(check bool) "h2 not prefix h1" false (Hrep.is_prefix h2 h1);
  Alcotest.(check bool) "proper" true (Hrep.is_proper_prefix h h1);
  Alcotest.(check bool) "not proper of self" false (Hrep.is_proper_prefix h1 h1);
  Alcotest.(check bool) "equal_triples of self" true (Hrep.equal_triples h1 h1)

let test_lrecords_ignored_by_equality () =
  let h = Hrep.create ~f:2 in
  let h' = Array.copy h in
  h'.(0) <-
    Hrep.append_lrecords h.(0) [ { Hrep.dest = 1; index = 0; payload = h } ];
  Alcotest.(check bool) "lrecords invisible to equal_triples" true
    (Hrep.equal_triples h h');
  Alcotest.(check bool) "lrecords invisible to prefix" true (Hrep.is_prefix h' h)

let test_get_view () =
  let h = Hrep.create ~f:2 in
  h.(0) <- Hrep.append_triples h.(0) [ triple 0 10 [| 1; 0 |] ];
  h.(1) <-
    Hrep.append_triples h.(1)
      [ triple 0 20 [| 1; 1 |]; triple 1 30 [| 1; 1 |] ];
  let view = Hrep.get_view ~m:3 h in
  Alcotest.(check bool) "comp 0 = larger ts wins" true
    (Value.equal view.(0) (Value.Int 20));
  Alcotest.(check bool) "comp 1" true (Value.equal view.(1) (Value.Int 30));
  Alcotest.(check bool) "comp 2 untouched" true (Value.is_bot view.(2))

let test_new_timestamp_dominates () =
  (* Corollary 8: a timestamp generated from h is larger than any
     timestamp contained in h. *)
  let h = Hrep.create ~f:3 in
  h.(0) <- Hrep.append_triples h.(0) [ triple 0 1 [| 1; 0; 0 |] ];
  h.(1) <- Hrep.append_triples h.(1) [ triple 1 2 [| 1; 1; 0 |] ];
  List.iter
    (fun me ->
      let t = Hrep.new_timestamp h ~me in
      List.iter
        (fun (_, tr) ->
          Alcotest.(check bool)
            (Printf.sprintf "fresh ts by %d dominates" me)
            true
            (Vts.compare t tr.Hrep.ts > 0))
        (Hrep.all_triples h))
    [ 0; 1; 2 ]

let test_read_l () =
  let h = Hrep.create ~f:2 in
  let payload1 = Hrep.create ~f:2 in
  let payload2 = Hrep.create ~f:2 in
  payload2.(0) <- Hrep.append_triples payload2.(0) [ triple 0 1 [| 1; 0 |] ];
  h.(0) <-
    Hrep.append_lrecords h.(0)
      [ { Hrep.dest = 1; index = 0; payload = payload1 } ];
  h.(0) <-
    Hrep.append_lrecords h.(0)
      [ { Hrep.dest = 1; index = 0; payload = payload2 } ];
  (match Hrep.read_l h ~writer:0 ~reader:1 ~index:0 with
  | Some p ->
    Alcotest.(check bool) "last write wins" true (Hrep.equal_triples p payload2)
  | None -> Alcotest.fail "expected a record");
  Alcotest.(check bool) "missing index is bot" true
    (Hrep.read_l h ~writer:0 ~reader:1 ~index:5 = None);
  Alcotest.(check bool) "wrong reader is bot" true
    (Hrep.read_l h ~writer:0 ~reader:0 ~index:0 = None)

let test_contains_ts () =
  let h = Hrep.create ~f:2 in
  h.(0) <- Hrep.append_triples h.(0) [ triple 0 1 [| 1; 0 |] ];
  Alcotest.(check bool) "contains" true (Hrep.contains_ts h (ts [| 1; 0 |]));
  Alcotest.(check bool) "not contains" false (Hrep.contains_ts h (ts [| 2; 0 |]))

(* qcheck: prefix relation is a partial order on randomly grown H states. *)
let grow_sequence_gen =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map string_of_int ops))
    QCheck.Gen.(list_size (int_bound 8) (int_bound 1))

let states_of_growth ops =
  (* Grow a 2-process H; record every intermediate state. *)
  let h = ref (Hrep.create ~f:2) in
  let k = ref 0 in
  let states = ref [ Array.copy !h ] in
  List.iter
    (fun writer ->
      incr k;
      let h' = Array.copy !h in
      h'.(writer) <-
        Hrep.append_triples h'.(writer)
          [ { Hrep.comp = 0; value = Value.Int !k;
              ts = ts (if writer = 0 then [| !k; 0 |] else [| 0; !k |]) } ];
      h := h';
      states := Array.copy h' :: !states)
    ops;
  List.rev !states

let prop_prefix_chain =
  QCheck.Test.make ~name:"growth states form a prefix chain" ~count:100
    grow_sequence_gen (fun ops ->
      let states = states_of_growth ops in
      let rec chain = function
        | a :: (b :: _ as rest) -> Hrep.is_prefix a b && chain rest
        | _ -> true
      in
      chain states)

let prop_prefix_antisym =
  QCheck.Test.make ~name:"mutual prefix implies triple-equality" ~count:100
    grow_sequence_gen (fun ops ->
      let states = states_of_growth ops in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              if Hrep.is_prefix a b && Hrep.is_prefix b a then
                Hrep.equal_triples a b
              else true)
            states)
        states)

let prop_counts_monotone =
  QCheck.Test.make ~name:"#h_j monotone along growth" ~count:100 grow_sequence_gen
    (fun ops ->
      let states = states_of_growth ops in
      let rec chain = function
        | a :: (b :: _ as rest) ->
          let ca = Hrep.counts a and cb = Hrep.counts b in
          ca.(0) <= cb.(0) && ca.(1) <= cb.(1) && chain rest
        | _ -> true
      in
      chain states)

let () =
  Alcotest.run "hrep"
    [
      ( "vts",
        [
          Alcotest.test_case "lexicographic order" `Quick test_vts_order;
          Alcotest.test_case "new-timestamp" `Quick test_vts_make;
        ] );
      ( "hrep",
        [
          Alcotest.test_case "count_bu" `Quick test_count_bu;
          Alcotest.test_case "prefix" `Quick test_prefix;
          Alcotest.test_case "lrecords ignored" `Quick test_lrecords_ignored_by_equality;
          Alcotest.test_case "get_view" `Quick test_get_view;
          Alcotest.test_case "corollary 8" `Quick test_new_timestamp_dominates;
          Alcotest.test_case "read_l" `Quick test_read_l;
          Alcotest.test_case "contains_ts" `Quick test_contains_ts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prefix_chain; prop_prefix_antisym; prop_counts_monotone ] );
    ]
