test/test_experiments.ml: Alcotest Experiments List Rsim_experiments String
