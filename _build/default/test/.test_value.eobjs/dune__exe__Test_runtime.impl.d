test/test_runtime.ml: Alcotest Array Fiber List QCheck QCheck_alcotest Rsim_runtime Rsim_shmem Schedule
