test/test_solo.ml: Aba Alcotest Array Derandomize Fun List Mrun Nd_examples Ndproto Objects Printf QCheck QCheck_alcotest Rsim_shmem Rsim_solo Rsim_value Schedule Solo_path Value
