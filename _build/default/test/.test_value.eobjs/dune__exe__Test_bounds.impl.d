test/test_bounds.ml: Alcotest Buffer Format List Lower Printf QCheck QCheck_alcotest Rsim_bounds Tables Upper
