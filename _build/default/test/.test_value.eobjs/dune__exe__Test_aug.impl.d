test/test_aug.ml: Alcotest Array Aug Aug_spec Fun List Printf Prng QCheck QCheck_alcotest Rsim_augmented Rsim_runtime Rsim_shmem Rsim_value Schedule String Value
