test/test_aug.mli:
