test/test_topology.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Rsim_topology Sperner
