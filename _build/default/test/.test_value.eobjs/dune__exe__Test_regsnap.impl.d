test/test_regsnap.ml: Alcotest Array Fun Linearize List Printf Prng QCheck QCheck_alcotest Regsnap Rsim_regsnap Rsim_runtime Rsim_shmem Rsim_value Schedule Value
