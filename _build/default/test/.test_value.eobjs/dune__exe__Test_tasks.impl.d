test/test_tasks.ml: Alcotest Gen Int List QCheck QCheck_alcotest Rsim_tasks Rsim_value Task Value
