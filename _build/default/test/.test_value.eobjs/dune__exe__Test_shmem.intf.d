test/test_shmem.mli:
