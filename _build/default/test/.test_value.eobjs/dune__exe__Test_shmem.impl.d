test/test_shmem.ml: Alcotest Array Exec Fun List Objects Printf Proc QCheck QCheck_alcotest Result Rsim_protocols Rsim_shmem Rsim_value Run Schedule Snapshot Value
