test/test_regsnap.mli:
