test/test_linearize.ml: Alcotest Array Linearize List Prng QCheck QCheck_alcotest Rsim_shmem Rsim_value Value
