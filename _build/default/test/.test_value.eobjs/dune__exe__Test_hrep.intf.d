test/test_hrep.mli:
