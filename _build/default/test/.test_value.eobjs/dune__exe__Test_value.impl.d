test/test_value.ml: Alcotest Int List Prng QCheck QCheck_alcotest Rsim_value Value
