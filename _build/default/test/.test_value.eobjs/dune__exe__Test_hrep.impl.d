test/test_hrep.ml: Alcotest Array Hrep List Printf QCheck QCheck_alcotest Rsim_augmented Rsim_value String Value Vts
