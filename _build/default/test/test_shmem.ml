open Rsim_value
open Rsim_shmem

(* A minimal Assumption-1 protocol: scan, write own input to a slot,
   scan, output own input. *)
let writer ~slot ~input =
  let poised s =
    match s with
    | 0, _ -> Proc.Scan
    | 1, v -> Proc.Update (slot, v)
    | 2, _ -> Proc.Scan
    | _, v -> Proc.Output v
  in
  Proc.make
    ~name:(Printf.sprintf "writer%d" slot)
    ~init:(0, input)
    ~poised
    ~on_scan:(fun (ph, v) _view -> (ph + 1, v))
    ~on_update:(fun (ph, v) -> (ph + 1, v))

(* A protocol that scans forever (never outputs): for failure injection. *)
let spinner =
  let poised (ph, _) = if ph mod 2 = 0 then Proc.Scan else Proc.Update (0, Value.Int 0) in
  Proc.make ~name:"spinner" ~init:(0, ())
    ~poised
    ~on_scan:(fun (ph, u) _ -> (ph + 1, u))
    ~on_update:(fun (ph, u) -> (ph + 1, u))

(* A deliberately broken protocol: starts poised to update. *)
let broken =
  Proc.make ~name:"broken" ~init:()
    ~poised:(fun () -> Proc.Update (0, Value.Int 1))
    ~on_scan:(fun () _ -> ())
    ~on_update:(fun () -> ())

let test_proc_basics () =
  let p = writer ~slot:0 ~input:(Value.Int 9) in
  Alcotest.(check bool) "starts with scan" true (Proc.poised p = Proc.Scan);
  let p = Proc.step_scan p [| Value.Bot |] in
  (match Proc.poised p with
  | Proc.Update (0, Value.Int 9) -> ()
  | _ -> Alcotest.fail "expected update");
  let p = Proc.step_update p in
  Alcotest.(check bool) "scan again" true (Proc.poised p = Proc.Scan);
  let p = Proc.step_scan p [| Value.Int 9 |] in
  Alcotest.(check bool) "done" true (Proc.is_done p);
  Alcotest.(check bool) "output" true (Proc.output p = Some (Value.Int 9))

let test_proc_wrong_step () =
  let p = writer ~slot:0 ~input:(Value.Int 1) in
  Alcotest.check_raises "step_update when poised to scan"
    (Invalid_argument "Proc.step_update: writer0 is not poised to update")
    (fun () -> ignore (Proc.step_update p))

let test_snapshot () =
  let s = Snapshot.create ~m:3 in
  Alcotest.(check bool) "initial bot" true (Value.is_bot (Snapshot.get s 1));
  let s2 = Snapshot.update s 1 (Value.Int 5) in
  Alcotest.(check bool) "persistent: original unchanged" true
    (Value.is_bot (Snapshot.get s 1));
  Alcotest.(check bool) "updated" true
    (Value.equal (Snapshot.get s2 1) (Value.Int 5));
  let view = Snapshot.scan s2 in
  view.(0) <- Value.Int 99;
  Alcotest.(check bool) "scan returns a copy" true
    (Value.is_bot (Snapshot.get s2 0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Snapshot.update: component 3 out of range") (fun () ->
      ignore (Snapshot.update s 3 Value.Bot))

let test_schedule_round_robin () =
  let rec take sched live n acc =
    if n = 0 then List.rev acc
    else
      match Schedule.next sched ~live with
      | None -> List.rev acc
      | Some (pid, sched') -> take sched' live (n - 1) (pid :: acc)
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2 ]
    (take Schedule.round_robin [ 0; 1; 2 ] 6 []);
  Alcotest.(check (list int)) "skips missing" [ 0; 2; 0; 2 ]
    (take Schedule.round_robin [ 0; 2 ] 4 [])

let test_schedule_solo_script () =
  let rec take sched live n acc =
    if n = 0 then List.rev acc
    else
      match Schedule.next sched ~live with
      | None -> List.rev acc
      | Some (pid, sched') -> take sched' live (n - 1) (pid :: acc)
  in
  Alcotest.(check (list int)) "solo" [ 1; 1; 1 ] (take (Schedule.solo 1) [ 0; 1 ] 3 []);
  Alcotest.(check (list int)) "solo not live" [] (take (Schedule.solo 5) [ 0; 1 ] 3 []);
  Alcotest.(check (list int)) "script skips dead" [ 0; 1 ]
    (take (Schedule.script [ 0; 9; 1 ]) [ 0; 1 ] 5 [])

let test_schedule_random_deterministic () =
  let rec take sched live n acc =
    if n = 0 then List.rev acc
    else
      match Schedule.next sched ~live with
      | None -> List.rev acc
      | Some (pid, sched') -> take sched' live (n - 1) (pid :: acc)
  in
  let a = take (Schedule.random ~seed:5) [ 0; 1; 2 ] 20 [] in
  let b = take (Schedule.random ~seed:5) [ 0; 1; 2 ] 20 [] in
  Alcotest.(check (list int)) "same seed" a b;
  List.iter (fun p -> Alcotest.(check bool) "live" true (List.mem p [ 0; 1; 2 ])) a

let test_schedule_among () =
  let rec take sched live n acc =
    if n = 0 then List.rev acc
    else
      match Schedule.next sched ~live with
      | None -> List.rev acc
      | Some (pid, sched') -> take sched' live (n - 1) (pid :: acc)
  in
  let picks = take (Schedule.among ~procs:[ 1; 2 ] ~seed:0) [ 0; 1; 2; 3 ] 30 [] in
  Alcotest.(check int) "30 picks" 30 (List.length picks);
  List.iter
    (fun p -> Alcotest.(check bool) "only among" true (List.mem p [ 1; 2 ]))
    picks

let test_schedule_crashes () =
  let rec take sched live n acc =
    if n = 0 then List.rev acc
    else
      match Schedule.next sched ~live with
      | None -> List.rev acc
      | Some (pid, sched') -> take sched' live (n - 1) (pid :: acc)
  in
  (* pid 0 crashes after 2 steps. *)
  let sched = Schedule.with_crashes [ (0, 2) ] Schedule.round_robin in
  let picks = take sched [ 0; 1 ] 10 [] in
  Alcotest.(check int) "pid 0 took exactly 2 steps" 2
    (List.length (List.filter (fun p -> p = 0) picks))

let test_run_all_done () =
  let procs = [ writer ~slot:0 ~input:(Value.Int 1); writer ~slot:1 ~input:(Value.Int 2) ] in
  let c = Run.init ~m:2 procs in
  let c', outcome = Run.run ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "all done" true (outcome = Run.All_done);
  Alcotest.(check int) "two outputs" 2 (List.length (Run.outputs c'));
  Alcotest.(check bool) "mem has values" true
    (Value.equal (Snapshot.get (Run.mem c') 0) (Value.Int 1));
  let trace = Run.trace c' in
  Alcotest.(check int) "6 events" 6 (List.length trace)

let test_run_step_limit () =
  let c = Run.init ~m:1 [ spinner ] in
  let _, outcome = Run.run ~max_steps:50 ~sched:Schedule.round_robin c in
  Alcotest.(check bool) "hits limit" true (outcome = Run.Step_limit)

let test_run_rejects_broken () =
  Alcotest.(check bool) "broken protocol rejected" true
    (try
       ignore (Run.init ~m:1 [ broken ]);
       false
     with Failure _ -> true)

let test_solo_terminates () =
  let c = Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); spinner ] in
  Alcotest.(check bool) "writer solo-terminates" true (Run.solo_terminates c 0);
  Alcotest.(check bool) "spinner does not" false
    (Run.solo_terminates ~max_steps:100 c 1)

let test_obstruction_free_from () =
  let c =
    Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); writer ~slot:1 ~input:(Value.Int 2) ]
  in
  Alcotest.(check bool) "both terminate" true
    (Run.obstruction_free_from c ~procs:[ 0; 1 ]);
  let c2 = Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); spinner ] in
  Alcotest.(check bool) "spinner blocks the pair" false
    (Run.obstruction_free_from ~max_steps:200 c2 ~procs:[ 0; 1 ])

let test_objects () =
  let open Objects in
  (match apply Register Value.Bot (Write (Value.Int 3)) with
  | Ok (v, _) -> Alcotest.(check bool) "write" true (Value.equal v (Value.Int 3))
  | Error e -> Alcotest.fail e);
  (match apply Max_register (Value.Int 5) (Write_max (Value.Int 3)) with
  | Ok (v, _) -> Alcotest.(check bool) "writemax keeps max" true (Value.equal v (Value.Int 5))
  | Error e -> Alcotest.fail e);
  (match apply Fetch_and_increment (Value.Int 7) Fetch_inc with
  | Ok (v, r) ->
    Alcotest.(check bool) "fai incremented" true (Value.equal v (Value.Int 8));
    Alcotest.(check bool) "fai returns old" true (Value.equal r (Value.Int 7))
  | Error e -> Alcotest.fail e);
  (match apply Swap (Value.Int 1) (Swap_write (Value.Int 2)) with
  | Ok (v, r) ->
    Alcotest.(check bool) "swap state" true (Value.equal v (Value.Int 2));
    Alcotest.(check bool) "swap old" true (Value.equal r (Value.Int 1))
  | Error e -> Alcotest.fail e);
  (match apply Compare_and_swap (Value.Int 1) (Cas { expected = Value.Int 1; desired = Value.Int 9 }) with
  | Ok (v, r) ->
    Alcotest.(check bool) "cas success state" true (Value.equal v (Value.Int 9));
    Alcotest.(check bool) "cas success resp" true (Value.equal r (Value.Bool true))
  | Error e -> Alcotest.fail e);
  (match apply Compare_and_swap (Value.Int 2) (Cas { expected = Value.Int 1; desired = Value.Int 9 }) with
  | Ok (v, r) ->
    Alcotest.(check bool) "cas fail state" true (Value.equal v (Value.Int 2));
    Alcotest.(check bool) "cas fail resp" true (Value.equal r (Value.Bool false))
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "register unsupported op" true
    (Result.is_error (apply Register Value.Bot Fetch_inc));
  Alcotest.(check bool) "fai initial" true
    (Value.equal (initial Fetch_and_increment) (Value.Int 0));
  Alcotest.(check bool) "register can aba" true (can_aba Register);
  Alcotest.(check bool) "maxreg cannot aba" false (can_aba Max_register)

(* ---- Exec: indistinguishability and the covering argument ---- *)

let test_indistinguishable_basics () =
  let mk () = Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); writer ~slot:1 ~input:(Value.Int 2) ] in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "fresh configs indistinguishable" true
    (Exec.indistinguishable a b ~procs:[ 0; 1 ]);
  let a' = Run.step_pid a 0 in
  (* p0 scanned: memory unchanged, p0 now poised to update *)
  Alcotest.(check bool) "p0 distinguishes" false
    (Exec.indistinguishable a' b ~procs:[ 0 ]);
  Alcotest.(check bool) "p1 cannot distinguish" true
    (Exec.indistinguishable a' b ~procs:[ 1 ])

let test_covering_detection () =
  let c = Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); writer ~slot:1 ~input:(Value.Int 2) ] in
  Alcotest.(check (list int)) "nobody covering yet" [] (Exec.covering c 0);
  let c = Run.step_pid c 0 in
  Alcotest.(check (list int)) "p0 covers slot 0" [ 0 ] (Exec.covering c 0);
  Alcotest.(check (list int)) "slot 1 uncovered" [] (Exec.covering c 1)

let test_block_write () =
  let c = Run.init ~m:2 [ writer ~slot:0 ~input:(Value.Int 1); writer ~slot:1 ~input:(Value.Int 2) ] in
  let c = Run.step_pid (Run.step_pid c 0) 1 in
  (* both covering *)
  let c' = Exec.block_write c [ 0; 1 ] in
  Alcotest.(check bool) "both written" true
    (Value.equal (Snapshot.get (Run.mem c') 0) (Value.Int 1)
    && Value.equal (Snapshot.get (Run.mem c') 1) (Value.Int 2));
  Alcotest.check_raises "non-covering pid rejected"
    (Invalid_argument "Exec.block_write: process 0 is not covering") (fun () ->
      ignore (Exec.block_write c' [ 0 ]))

let test_covering_argument_replay () =
  (* The covering argument of the consensus lower bound, executed: after
     p1's stale (covering) write obliterates the single register, the
     configuration is indistinguishable TO P1 from one in which p0 never
     ran — so p1's solo run transfers and decides its own value, while
     p0 already decided differently. *)
  let procs () =
    List.mapi
      (fun pid inp -> (Rsim_protocols.Racing.protocol ~m:1 ()) pid inp)
      [ Value.Int 1; Value.Int 2 ]
  in
  (* World A: p1 scans, p0 runs to a decision, p1's stale write lands. *)
  let a = Run.step_pid (Run.init ~m:1 (procs ())) 1 in
  let a, _ = Run.run ~max_steps:1_000 ~sched:(Schedule.solo 0) a in
  Alcotest.(check bool) "p0 decided 1" true
    (Run.outputs a |> List.assoc_opt 0 = Some (Value.Int 1));
  let a = Exec.block_write a [ 1 ] in
  (* World B: p1 scans and writes with p0 asleep. *)
  let b = Run.step_pid (Run.init ~m:1 (procs ())) 1 in
  let b = Exec.block_write b [ 1 ] in
  Alcotest.(check bool) "worlds indistinguishable to p1" true
    (Exec.indistinguishable a b ~procs:[ 1 ]);
  (* p1's solo run transfers between the worlds... *)
  let a', b' = Exec.transfer ~from_:a ~to_:b ~procs:[ 1 ] [ 1; 1; 1; 1; 1; 1; 1; 1 ] in
  ignore b';
  (* ...and in world A it produces the disagreement the lower bound
     promises. *)
  let a', _ = Run.run ~max_steps:1_000 ~sched:(Schedule.solo 1) a' in
  Alcotest.(check bool) "p1 decided 2" true
    (Run.outputs a' |> List.assoc_opt 1 = Some (Value.Int 2));
  Alcotest.(check int) "two distinct decisions" 2
    (List.length (Value.distinct (List.map snd (Run.outputs a'))))

(* qcheck: a random run under a random schedule keeps every written value
   equal to some process input (memory safety of the engine). *)
let prop_run_values_from_inputs =
  QCheck.Test.make ~name:"run: memory holds only written inputs" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 5))
    (fun (seed, n) ->
      let procs = List.init n (fun i -> writer ~slot:i ~input:(Value.Int (100 + i))) in
      let c = Run.init ~m:n procs in
      let c', _ = Run.run ~sched:(Schedule.random ~seed) c in
      let mem = Run.mem c' in
      List.for_all
        (fun j ->
          let x = Snapshot.get mem j in
          Value.is_bot x || Value.equal x (Value.Int (100 + j)))
        (List.init n Fun.id))

let prop_run_deterministic =
  QCheck.Test.make ~name:"run: deterministic given seed" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let mk () =
        Run.init ~m:3
          [ writer ~slot:0 ~input:(Value.Int 1);
            writer ~slot:1 ~input:(Value.Int 2);
            writer ~slot:2 ~input:(Value.Int 3) ]
      in
      let c1, _ = Run.run ~sched:(Schedule.random ~seed) (mk ()) in
      let c2, _ = Run.run ~sched:(Schedule.random ~seed) (mk ()) in
      List.map (fun (e : Run.event) -> (e.pid, e.idx)) (Run.trace c1)
      = List.map (fun (e : Run.event) -> (e.pid, e.idx)) (Run.trace c2))

let () =
  Alcotest.run "shmem"
    [
      ( "proc",
        [
          Alcotest.test_case "basics" `Quick test_proc_basics;
          Alcotest.test_case "wrong step raises" `Quick test_proc_wrong_step;
        ] );
      ("snapshot", [ Alcotest.test_case "persistent ops" `Quick test_snapshot ]);
      ( "schedule",
        [
          Alcotest.test_case "round robin" `Quick test_schedule_round_robin;
          Alcotest.test_case "solo and script" `Quick test_schedule_solo_script;
          Alcotest.test_case "random deterministic" `Quick test_schedule_random_deterministic;
          Alcotest.test_case "among" `Quick test_schedule_among;
          Alcotest.test_case "crashes" `Quick test_schedule_crashes;
        ] );
      ( "run",
        [
          Alcotest.test_case "all done" `Quick test_run_all_done;
          Alcotest.test_case "step limit" `Quick test_run_step_limit;
          Alcotest.test_case "rejects broken protocol" `Quick test_run_rejects_broken;
          Alcotest.test_case "solo termination" `Quick test_solo_terminates;
          Alcotest.test_case "obstruction-free from" `Quick test_obstruction_free_from;
        ] );
      ("objects", [ Alcotest.test_case "semantics" `Quick test_objects ]);
      ( "exec",
        [
          Alcotest.test_case "indistinguishability" `Quick
            test_indistinguishable_basics;
          Alcotest.test_case "covering detection" `Quick test_covering_detection;
          Alcotest.test_case "block write" `Quick test_block_write;
          Alcotest.test_case "covering argument replay" `Quick
            test_covering_argument_replay;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_run_values_from_inputs; prop_run_deterministic ] );
    ]
