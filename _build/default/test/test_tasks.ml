open Rsim_value
open Rsim_tasks

let i n = Value.Int n
let fl x = Value.Float x

let ok = function Ok () -> true | Error _ -> false

let test_consensus () =
  let t = Task.consensus in
  Alcotest.(check bool) "agree" true
    (ok (Task.check t ~inputs:[ i 1; i 2 ] ~outputs:[ i 1; i 1 ]));
  Alcotest.(check bool) "disagree" false
    (ok (Task.check t ~inputs:[ i 1; i 2 ] ~outputs:[ i 1; i 2 ]));
  Alcotest.(check bool) "invented value" false
    (ok (Task.check t ~inputs:[ i 1; i 2 ] ~outputs:[ i 3 ]));
  Alcotest.(check bool) "no outputs fine" true
    (ok (Task.check t ~inputs:[ i 1 ] ~outputs:[]));
  Alcotest.(check bool) "no inputs invalid" false
    (ok (Task.check t ~inputs:[] ~outputs:[]));
  Alcotest.(check bool) "bot input invalid" false
    (ok (Task.check t ~inputs:[ Value.Bot ] ~outputs:[]))

let test_kset () =
  let t = Task.kset ~k:2 in
  Alcotest.(check bool) "two values ok" true
    (ok (Task.check t ~inputs:[ i 1; i 2; i 3 ] ~outputs:[ i 1; i 2; i 1 ]));
  Alcotest.(check bool) "three values bad" false
    (ok (Task.check t ~inputs:[ i 1; i 2; i 3 ] ~outputs:[ i 1; i 2; i 3 ]));
  Alcotest.(check bool) "invented value bad" false
    (ok (Task.check t ~inputs:[ i 1; i 2 ] ~outputs:[ i 9 ]));
  Alcotest.(check bool) "k=1 is consensus" false
    (ok (Task.check (Task.kset ~k:1) ~inputs:[ i 1; i 2 ] ~outputs:[ i 1; i 2 ]));
  Alcotest.check_raises "k=0 rejected" (Invalid_argument "Task.kset: k must be >= 1")
    (fun () -> ignore (Task.kset ~k:0))

let test_approx () =
  let t = Task.approx ~eps:0.25 in
  Alcotest.(check bool) "close outputs ok" true
    (ok (Task.check t ~inputs:[ fl 0.0; fl 1.0 ] ~outputs:[ fl 0.5; fl 0.6 ]));
  Alcotest.(check bool) "spread outputs bad" false
    (ok (Task.check t ~inputs:[ fl 0.0; fl 1.0 ] ~outputs:[ fl 0.1; fl 0.9 ]));
  Alcotest.(check bool) "outside hull bad" false
    (ok (Task.check t ~inputs:[ fl 0.4; fl 0.5 ] ~outputs:[ fl 0.1 ]));
  Alcotest.(check bool) "int inputs ok" true
    (ok (Task.check t ~inputs:[ i 0; i 0 ] ~outputs:[ fl 0.0 ]));
  Alcotest.(check bool) "non-numeric output bad" false
    (ok (Task.check t ~inputs:[ fl 0.0 ] ~outputs:[ Value.Str "x" ]));
  Alcotest.check_raises "eps<=0 rejected"
    (Invalid_argument "Task.approx: eps must be positive") (fun () ->
      ignore (Task.approx ~eps:0.0))

(* property: consensus outputs drawn uniformly from a single input are
   always valid; from two distinct inputs, valid iff all equal. *)
let prop_consensus_characterization =
  QCheck.Test.make ~name:"consensus valid iff outputs all-equal subset of inputs"
    ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 5) (int_bound 3))
              (list_of_size Gen.(int_bound 5) (int_bound 3)))
    (fun (ins, outs) ->
      let inputs = List.map i ins and outputs = List.map i outs in
      let expected =
        List.for_all (fun o -> List.mem o ins) outs
        && List.length (List.sort_uniq Int.compare outs) <= 1
      in
      ok (Task.check Task.consensus ~inputs ~outputs) = expected)

let prop_kset_monotone_in_k =
  QCheck.Test.make ~name:"kset: valid for k implies valid for k+1" ~count:200
    QCheck.(triple (int_range 1 4)
              (list_of_size Gen.(int_range 1 5) (int_bound 4))
              (list_of_size Gen.(int_bound 5) (int_bound 4)))
    (fun (k, ins, outs) ->
      let inputs = List.map i ins and outputs = List.map i outs in
      let v k = ok (Task.check (Task.kset ~k) ~inputs ~outputs) in
      if v k then v (k + 1) else true)

let () =
  Alcotest.run "tasks"
    [
      ( "tasks",
        [
          Alcotest.test_case "consensus" `Quick test_consensus;
          Alcotest.test_case "kset" `Quick test_kset;
          Alcotest.test_case "approx" `Quick test_approx;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_consensus_characterization; prop_kset_monotone_in_k ] );
    ]
