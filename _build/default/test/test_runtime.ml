open Rsim_shmem
open Rsim_runtime

module Counter_ops = struct
  type op = Incr | Get
  type res = Ack | Val of int
end

module F = Fiber.Make (Counter_ops)

let make_counter () =
  let state = ref 0 in
  let apply ~pid:_ (op : Counter_ops.op) : Counter_ops.res =
    match op with
    | Counter_ops.Incr ->
      incr state;
      Counter_ops.Ack
    | Counter_ops.Get -> Counter_ops.Val !state
  in
  (state, apply)

let get () = match F.op Counter_ops.Get with Counter_ops.Val n -> n | _ -> assert false
let increment () = ignore (F.op Counter_ops.Incr)

let test_single_fiber () =
  let state, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _pid -> increment (); increment (); increment ()) ]
  in
  Alcotest.(check int) "three increments" 3 !state;
  Alcotest.(check int) "three ops" 3 result.F.total_ops;
  Alcotest.(check bool) "done" true (result.F.statuses.(0) = Fiber.Done)

let test_round_robin_interleaving () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); increment ());
        (fun _ -> increment (); increment ()) ]
  in
  let pids = List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace in
  Alcotest.(check (list int)) "alternating" [ 0; 1; 0; 1 ] pids

let test_local_values_observed () =
  (* Fiber 1 reads the counter after fiber 0 increments twice, under a
     scripted schedule. *)
  let _, apply = make_counter () in
  let seen = ref (-1) in
  let _result =
    F.run ~sched:(Schedule.script [ 0; 0; 1 ]) ~apply
      [ (fun _ -> increment (); increment ()); (fun _ -> seen := get ()) ]
  in
  Alcotest.(check int) "fiber 1 saw both increments" 2 !seen

let test_budget () =
  let _, apply = make_counter () in
  let result =
    F.run ~max_ops:5 ~sched:Schedule.round_robin ~apply
      [ (fun _ -> for _ = 1 to 100 do increment () done) ]
  in
  Alcotest.(check int) "budget respected" 5 result.F.total_ops;
  Alcotest.(check bool) "still pending" true (result.F.statuses.(0) = Fiber.Pending)

let test_failure_captured () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment (); failwith "boom"); (fun _ -> increment ()) ]
  in
  (match result.F.statuses.(0) with
  | Fiber.Failed (Failure msg) -> Alcotest.(check string) "exn kept" "boom" msg
  | _ -> Alcotest.fail "expected Failed");
  Alcotest.(check bool) "other fiber unaffected" true
    (result.F.statuses.(1) = Fiber.Done)

let test_crash_via_schedule () =
  let state, apply = make_counter () in
  let sched = Schedule.with_crashes [ (0, 2) ] Schedule.round_robin in
  let result =
    F.run ~sched ~apply
      [ (fun _ -> for _ = 1 to 10 do increment () done);
        (fun _ -> increment ()) ]
  in
  Alcotest.(check int) "crashed fiber took 2 steps" 2 result.F.ops_per_fiber.(0);
  Alcotest.(check int) "total" 3 !state;
  Alcotest.(check bool) "crashed fiber left pending" true
    (result.F.statuses.(0) = Fiber.Pending)

let test_determinism () =
  let run seed =
    let _, apply = make_counter () in
    let result =
      F.run
        ~sched:(Schedule.random ~seed)
        ~apply
        [ (fun _ -> for _ = 1 to 5 do increment () done);
          (fun _ -> for _ = 1 to 5 do increment () done);
          (fun _ -> for _ = 1 to 5 do increment () done) ]
    in
    List.map (fun (e : F.trace_entry) -> e.pid) result.F.trace
  in
  Alcotest.(check (list int)) "same seed, same trace" (run 11) (run 11)

let test_ops_counted_per_fiber () =
  let _, apply = make_counter () in
  let result =
    F.run ~sched:Schedule.round_robin ~apply
      [ (fun _ -> increment ()); (fun _ -> increment (); increment ()) ]
  in
  Alcotest.(check int) "fiber 0 ops" 1 result.F.ops_per_fiber.(0);
  Alcotest.(check int) "fiber 1 ops" 2 result.F.ops_per_fiber.(1)

let test_no_op_fiber () =
  let _, apply = make_counter () in
  let result = F.run ~sched:Schedule.round_robin ~apply [ (fun _ -> ()) ] in
  Alcotest.(check int) "zero ops" 0 result.F.total_ops;
  Alcotest.(check bool) "done" true (result.F.statuses.(0) = Fiber.Done)

let prop_total_equals_sum =
  QCheck.Test.make ~name:"total ops = sum of per-fiber ops" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 4))
    (fun (seed, n) ->
      let _, apply = make_counter () in
      let result =
        F.run
          ~sched:(Schedule.random ~seed)
          ~apply
          (List.init n (fun i -> fun _ -> for _ = 0 to i do increment () done))
      in
      result.F.total_ops = Array.fold_left ( + ) 0 result.F.ops_per_fiber)

let () =
  Alcotest.run "runtime"
    [
      ( "fiber",
        [
          Alcotest.test_case "single fiber" `Quick test_single_fiber;
          Alcotest.test_case "round robin" `Quick test_round_robin_interleaving;
          Alcotest.test_case "scripted visibility" `Quick test_local_values_observed;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "failure captured" `Quick test_failure_captured;
          Alcotest.test_case "crash via schedule" `Quick test_crash_via_schedule;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "per-fiber counts" `Quick test_ops_counted_per_fiber;
          Alcotest.test_case "no-op fiber" `Quick test_no_op_fiber;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_total_equals_sum ]);
    ]
