open Rsim_bounds

let test_cor33 () =
  (* ⌊(n − x)/(k + 1 − x)⌋ + 1 *)
  Alcotest.(check int) "n=8 k=2 x=1" 4 (Lower.kset ~n:8 ~k:2 ~x:1);
  Alcotest.(check int) "n=8 k=2 x=2" 7 (Lower.kset ~n:8 ~k:2 ~x:2);
  Alcotest.(check int) "n=10 k=3 x=1" 4 (Lower.kset ~n:10 ~k:3 ~x:1);
  Alcotest.check_raises "x > k rejected"
    (Invalid_argument "Lower.kset: need 1 <= x <= k < n") (fun () ->
      ignore (Lower.kset ~n:8 ~k:2 ~x:3));
  Alcotest.check_raises "k >= n rejected"
    (Invalid_argument "Lower.kset: need 1 <= x <= k < n") (fun () ->
      ignore (Lower.kset ~n:4 ~k:4 ~x:1))

let test_consensus_tight () =
  (* Corollary 33, k = x = 1: exactly n; matches the upper bound. *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "consensus lower at n=%d" n)
        n (Lower.consensus ~n);
      Alcotest.(check int)
        (Printf.sprintf "upper matches at n=%d" n)
        (Lower.consensus ~n) (Upper.consensus ~n))
    [ 2; 3; 5; 10; 100; 1000 ]

let test_nminus1_tight () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "(n-1)-set at n=%d" n)
        2 (Lower.nminus1_set ~n);
      Alcotest.(check int) "upper" 2 (Upper.kset ~n ~k:(n - 1) ~x:1))
    [ 3; 4; 10; 64 ]

let test_lower_le_upper () =
  (* Sanity: the lower bound never exceeds the upper bound. *)
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          List.iter
            (fun x ->
              if 1 <= x && x <= k && k < n then
                Alcotest.(check bool)
                  (Printf.sprintf "n=%d k=%d x=%d" n k x)
                  true
                  (Lower.kset ~n ~k ~x <= Upper.kset ~n ~k ~x))
            [ 1; 2; 3; 5 ])
        [ 1; 2; 3; 5; 7 ])
    [ 2; 4; 8; 16; 33 ]

let test_monotonicity () =
  (* More processes need more registers; tolerating more concurrency (x)
     needs more registers; easier tasks (larger k) need fewer. *)
  Alcotest.(check bool) "monotone in n" true
    (Lower.kset ~n:20 ~k:3 ~x:1 >= Lower.kset ~n:10 ~k:3 ~x:1);
  Alcotest.(check bool) "monotone in x" true
    (Lower.kset ~n:20 ~k:3 ~x:3 >= Lower.kset ~n:20 ~k:3 ~x:1);
  Alcotest.(check bool) "antitone in k" true
    (Lower.kset ~n:20 ~k:5 ~x:1 <= Lower.kset ~n:20 ~k:2 ~x:1)

let test_approx_bound () =
  (* The √(log₂ log₃ 1/ε) − 2 term grows so slowly that it dominates the
     min for every float-representable ε (to reach the ⌊n/2⌋+1 cap at
     n = 8 one would need ε ≤ 3^(-2^49)). Check the formula directly and
     its monotonicity. *)
  let formula ~n ~eps =
    let inner = log (1.0 /. eps) /. log 3.0 in
    if inner <= 1.0 then 1
    else
      max 1
        (min ((n / 2) + 1)
           (int_of_float (floor (sqrt (log inner /. log 2.0) -. 2.0))))
  in
  List.iter
    (fun (n, eps) ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d eps=%g" n eps)
        (formula ~n ~eps) (Lower.approx ~n ~eps))
    [ (8, 1e-300); (1000, 1e-3); (2, 0.5); (64, 1e-100) ];
  Alcotest.(check bool) "monotone as eps shrinks" true
    (Lower.approx ~n:64 ~eps:1e-200 >= Lower.approx ~n:64 ~eps:1e-2);
  Alcotest.(check bool) "bound at least 1" true (Lower.approx ~n:2 ~eps:0.5 >= 1);
  Alcotest.check_raises "eps >= 1 rejected"
    (Invalid_argument "Lower.approx: need 0 < eps < 1") (fun () ->
      ignore (Lower.approx ~n:4 ~eps:1.5))

let test_thm21 () =
  Alcotest.(check int) "unsolvable case = Cor 33 shape" 4
    (Lower.thm21_unsolvable ~n:10 ~f:4 ~x:1);
  Alcotest.(check bool) "step-complexity case bounded by n/f+1" true
    (Lower.thm21_step_complexity ~n:12 ~f:2 ~step_lower_bound:1e30 <= 7)

let test_upper_bounds () =
  Alcotest.(check int) "BRS n=8 k=3 x=2" 7 (Upper.kset ~n:8 ~k:3 ~x:2);
  Alcotest.(check int) "Schenk eps=0.25" 2 (Upper.approx_schenk ~eps:0.25);
  Alcotest.(check int) "Schenk eps=0.1" 4 (Upper.approx_schenk ~eps:0.1);
  Alcotest.(check int) "committee" 9 (Upper.kset_committee ~n:9)

let test_tables () =
  let rows = Tables.kset_rows ~ns:[ 8 ] ~ks:[ 1; 2 ] ~xs:[ 1; 2 ] in
  (* valid combos: (8,1,1), (8,2,1), (8,2,2) *)
  Alcotest.(check int) "row count" 3 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "consensus row tight" true r.Tables.tight;
  let arows = Tables.approx_rows ~ns:[ 4 ] ~epss:[ 0.1; 0.01 ] in
  Alcotest.(check int) "approx rows" 2 (List.length arows);
  (* printers do not raise *)
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Tables.print_kset fmt rows;
  Tables.print_approx fmt arows;
  Tables.print_headline fmt ~ns:[ 4; 8 ];
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "non-empty output" true (Buffer.length buf > 100)

let prop_cor33_formula =
  QCheck.Test.make ~name:"Cor 33 closed form" ~count:300
    QCheck.(triple (int_range 2 200) (int_range 1 50) (int_range 1 50))
    (fun (n, k, x) ->
      QCheck.assume (1 <= x && x <= k && k < n);
      Lower.kset ~n ~k ~x = ((n - x) / (k + 1 - x)) + 1)

let prop_consensus_tight =
  QCheck.Test.make ~name:"consensus tight for all n" ~count:100
    QCheck.(int_range 2 10_000)
    (fun n -> Lower.consensus ~n = n && Upper.consensus ~n = n)

let () =
  Alcotest.run "bounds"
    [
      ( "lower",
        [
          Alcotest.test_case "Corollary 33" `Quick test_cor33;
          Alcotest.test_case "consensus tight" `Quick test_consensus_tight;
          Alcotest.test_case "(n-1)-set tight" `Quick test_nminus1_tight;
          Alcotest.test_case "lower <= upper" `Quick test_lower_le_upper;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "Corollary 34" `Quick test_approx_bound;
          Alcotest.test_case "Theorem 21 forms" `Quick test_thm21;
        ] );
      ("upper", [ Alcotest.test_case "known upper bounds" `Quick test_upper_bounds ]);
      ("tables", [ Alcotest.test_case "rows and printers" `Quick test_tables ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cor33_formula; prop_consensus_tight ] );
    ]
