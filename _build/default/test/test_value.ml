open Rsim_value

let v = Alcotest.testable Value.pp Value.equal

let test_equal () =
  Alcotest.(check bool) "bot = bot" true (Value.equal Value.Bot Value.Bot);
  Alcotest.(check bool) "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int neq" false (Value.equal (Value.Int 3) (Value.Int 4));
  Alcotest.(check bool)
    "pair eq" true
    (Value.equal
       (Value.Pair (Value.Int 1, Value.Str "a"))
       (Value.Pair (Value.Int 1, Value.Str "a")))

let test_compare_total () =
  let vs =
    [
      Value.Bot;
      Value.Bool false;
      Value.Int 0;
      Value.Int 5;
      Value.Float 1.5;
      Value.Str "x";
      Value.Pair (Value.Int 1, Value.Int 2);
      Value.List [ Value.Int 1 ];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        vs)
    vs

let test_projections () =
  Alcotest.(check int) "int_exn" 7 (Value.int_exn (Value.Int 7));
  Alcotest.check v "pair fst" (Value.Int 1)
    (fst (Value.pair_exn (Value.Pair (Value.Int 1, Value.Int 2))));
  Alcotest.(check bool)
    "int_exn raises" true
    (try
       ignore (Value.int_exn Value.Bot);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (float 1e-9)) "as_float of int" 3.0 (Value.as_float_exn (Value.Int 3))

let test_distinct () =
  let d =
    Value.distinct [ Value.Int 2; Value.Bot; Value.Int 1; Value.Int 2; Value.Bot ]
  in
  Alcotest.(check int) "two distinct" 2 (List.length d);
  Alcotest.(check bool) "no bot" true (List.for_all (fun x -> not (Value.is_bot x)) d)

let test_minmax () =
  Alcotest.check v "max" (Value.Int 5) (Value.max_value (Value.Int 3) (Value.Int 5));
  Alcotest.check v "min" (Value.Int 3) (Value.min_value (Value.Int 3) (Value.Int 5));
  Alcotest.check v "bot is smallest" (Value.Int 0)
    (Value.max_value Value.Bot (Value.Int 0))

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let draw seed =
    let g = Prng.make seed in
    let a, g = Prng.int g 1000 in
    let b, g = Prng.int g 1000 in
    let c, _ = Prng.int g 1000 in
    (a, b, c)
  in
  Alcotest.(check bool) "same seed same draws" true (draw 42 = draw 42);
  Alcotest.(check bool) "diff seed diff draws" true (draw 42 <> draw 43)

let test_prng_bounds () =
  let g = ref (Prng.make 7) in
  for _ = 1 to 1000 do
    let k, g' = Prng.int !g 10 in
    g := g';
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10)
  done

let test_prng_choose () =
  let g = Prng.make 1 in
  let x, _ = Prng.choose g [ "a"; "b"; "c" ] in
  Alcotest.(check bool) "member" true (List.mem x [ "a"; "b"; "c" ])

let test_prng_shuffle () =
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys, _ = Prng.shuffle (Prng.make 3) xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort Int.compare ys)

let test_prng_float () =
  let g = ref (Prng.make 99) in
  for _ = 1 to 1000 do
    let x, g' = Prng.float !g in
    g := g';
    Alcotest.(check bool) "unit interval" true (x >= 0.0 && x < 1.0)
  done

(* qcheck properties *)

let value_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [
            return Value.Bot;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) small_signed_int;
            map (fun s -> Value.Str s) (string_size (int_bound 4));
          ]
      in
      if n <= 1 then base
      else
        frequency
          [
            (3, base);
            ( 1,
              map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2)) );
            (1, map (fun l -> Value.List l) (list_size (int_bound 3) (self (n / 2))));
          ])

let value_arb = QCheck.make ~print:Value.show value_gen

let prop_compare_reflexive =
  QCheck.Test.make ~name:"Value.compare reflexive" ~count:200 value_arb (fun x ->
      Value.compare x x = 0)

let prop_equal_iff_compare =
  QCheck.Test.make ~name:"Value.equal iff compare=0" ~count:200
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:200
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      if Value.compare a b <= 0 && Value.compare b c <= 0 then
        Value.compare a c <= 0
      else true)

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "compare total" `Quick test_compare_total;
          Alcotest.test_case "projections" `Quick test_projections;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "minmax" `Quick test_minmax;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
          Alcotest.test_case "float" `Quick test_prng_float;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compare_reflexive; prop_equal_iff_compare; prop_compare_transitive ]
      );
    ]
