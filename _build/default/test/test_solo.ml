open Rsim_value
open Rsim_shmem
open Rsim_solo

let i n = Value.Int n

(* ---- Ndproto basics ---- *)

let test_expected_response () =
  let nd = Nd_examples.ticket in
  let ep = Ndproto.initial_ep nd in
  Alcotest.(check bool) "fai initial ep" true (Value.equal ep.(0) (i 0));
  let r = Ndproto.expected_response nd ~ep (Ndproto.Nop (0, Objects.Fetch_inc)) in
  Alcotest.(check bool) "fai returns old" true (Value.equal r (i 0));
  let ep' =
    Ndproto.update_ep nd ~ep (Ndproto.Nop (0, Objects.Fetch_inc)) ~response:r
  in
  Alcotest.(check bool) "ep advanced" true (Value.equal ep'.(0) (i 1))

let test_scan_response_roundtrip () =
  let nd = Nd_examples.coin_consensus ~me:0 () in
  let ep = Ndproto.initial_ep nd in
  let r = Ndproto.expected_response nd ~ep Ndproto.Nscan in
  (match r with
  | Value.List [ Value.Bot; Value.Bot ] -> ()
  | _ -> Alcotest.fail "expected list of bots");
  let fake = Value.List [ i 1; i 2 ] in
  let ep' = Ndproto.update_ep nd ~ep Ndproto.Nscan ~response:fake in
  Alcotest.(check bool) "scan adopts real response" true
    (Value.equal ep'.(0) (i 1) && Value.equal ep'.(1) (i 2))

let test_maxreg_semantics_in_ep () =
  (* Ndproto's expected-view machinery must track non-register kinds:
     max-registers keep the lexicographic maximum. *)
  let nd =
    {
      Ndproto.name = "maxreg-probe";
      m = 1;
      kinds = [| Objects.Max_register |];
      init = (fun v -> v);
      view = (fun _ -> `Step (Ndproto.Nop (0, Objects.Write_max (i 5))));
      delta = (fun s _ -> [ s ]);
    }
  in
  let ep = Ndproto.initial_ep nd in
  let step = Ndproto.Nop (0, Objects.Write_max (i 5)) in
  let ep1 = Ndproto.update_ep nd ~ep step ~response:Value.Bot in
  Alcotest.(check bool) "first write sticks" true (Value.equal ep1.(0) (i 5));
  let ep2 =
    Ndproto.update_ep nd ~ep:ep1 (Ndproto.Nop (0, Objects.Write_max (i 3)))
      ~response:Value.Bot
  in
  Alcotest.(check bool) "smaller write ignored" true (Value.equal ep2.(0) (i 5));
  let r = Ndproto.expected_response nd ~ep:ep2 (Ndproto.Nop (0, Objects.Read)) in
  Alcotest.(check bool) "read sees the max" true (Value.equal r (i 5))

let test_successors_sorted () =
  let nd = Nd_examples.ticket in
  let maybe = Value.Pair (Value.Str "maybe", i 3) in
  let succ = Ndproto.successors nd maybe (Value.List [ i 0 ]) in
  Alcotest.(check int) "two successors" 2 (List.length succ);
  let sorted = List.sort Value.compare succ in
  Alcotest.(check bool) "sorted" true (succ = sorted)

(* ---- Solo paths ---- *)

let test_shortest_ticket () =
  let nd = Nd_examples.ticket in
  let s0 = nd.Ndproto.init (i 0) in
  let ep = Ndproto.initial_ep nd in
  Alcotest.(check (option int)) "two steps to decide" (Some 2)
    (Solo_path.shortest nd ~state:s0 ~ep ~cap:10_000)

let test_shortest_coin () =
  let nd = Nd_examples.coin_consensus ~me:0 () in
  let s0 = nd.Ndproto.init (i 5) in
  let ep = Ndproto.initial_ep nd in
  Alcotest.(check (option int)) "write + scan = 2" (Some 2)
    (Solo_path.shortest nd ~state:s0 ~ep ~cap:10_000);
  (* From a state where the other register holds a different value: the
     shortest path adopts (write, scan, decide): still finite. *)
  let ep_conflict = [| Value.Bot; i 9 |] in
  let s_scan = Value.Pair (Value.Str "s", Value.Pair (i 5, i 0)) in
  match Solo_path.shortest nd ~state:s_scan ~ep:ep_conflict ~cap:10_000 with
  | Some d -> Alcotest.(check bool) "finite under conflict" true (d <= 4)
  | None -> Alcotest.fail "expected a solo path"

let test_hopeless_no_path () =
  let nd = Nd_examples.hopeless in
  let s0 = nd.Ndproto.init (i 0) in
  let ep = Ndproto.initial_ep nd in
  Alcotest.(check (option int)) "no path" None
    (Solo_path.shortest nd ~state:s0 ~ep ~cap:2_000)

let test_first_move () =
  let nd = Nd_examples.ticket in
  let maybe = Value.Pair (Value.Str "maybe", i 7) in
  let ep = [| i 1 |] in
  match Solo_path.first_move nd ~state:maybe ~ep ~cap:10_000 with
  | Some (Ndproto.Nscan, s') ->
    Alcotest.(check bool) "moves to decide" true
      (Value.equal s' (Value.Pair (Value.Str "d", i 7)))
  | _ -> Alcotest.fail "expected a scan move to the deciding state"

(* ---- Derandomization (Theorem 35) ---- *)

let test_ticket_derandomized_decides_first () =
  let p = Derandomize.convert Nd_examples.ticket ~cap:10_000 ~input:(i 0) in
  let c = Mrun.init [ p ] in
  let c', outcome = Mrun.run ~sched:(Schedule.solo 0) c in
  Alcotest.(check bool) "terminates" true (outcome = Mrun.All_done);
  Alcotest.(check bool) "decides ticket 0" true
    (Mrun.outputs c' = [ (0, i 0) ])

let test_ticket_two_processes_distinct () =
  List.iter
    (fun seed ->
      let procs =
        List.init 2 (fun _ ->
            Derandomize.convert Nd_examples.ticket ~cap:10_000 ~input:(i 0))
      in
      let c = Mrun.init procs in
      let c', outcome = Mrun.run ~sched:(Schedule.random ~seed) c in
      Alcotest.(check bool) "both terminate" true (outcome = Mrun.All_done);
      match List.map snd (Mrun.outputs c') with
      | [ a; b ] ->
        Alcotest.(check bool) "distinct tickets" false (Value.equal a b)
      | _ -> Alcotest.fail "expected two outputs")
    (List.init 20 Fun.id)

let coin_pair ?tagged () =
  [
    Derandomize.convert
      (Nd_examples.coin_consensus ?tagged ~me:0 ())
      ~cap:10_000 ~input:(i 1);
    Derandomize.convert
      (Nd_examples.coin_consensus ?tagged ~me:1 ())
      ~cap:10_000 ~input:(i 2);
  ]

let test_coin_derandomized_agreement () =
  List.iter
    (fun seed ->
      let c = Mrun.init (coin_pair ()) in
      let c', _ = Mrun.run ~max_steps:2_000 ~sched:(Schedule.random ~seed) c in
      match List.map snd (Mrun.outputs c') with
      | [ a; b ] -> Alcotest.(check bool) "agreement" true (Value.equal a b)
      | _ -> () (* not all decided within the budget: fine for OF *))
    (List.init 40 Fun.id)

let test_theorem35_obstruction_freedom () =
  (* From any reachable configuration of the derandomized protocol
     (random prefix), every process terminates solo. *)
  List.iter
    (fun seed ->
      let c = Mrun.init (coin_pair ()) in
      let prefix_len = seed mod 17 in
      let sched =
        Schedule.phased ~prefix_len ~prefix:(Schedule.random ~seed)
          ~suffix:(Schedule.script [])
      in
      let c', _ = Mrun.run ~sched c in
      List.iter
        (fun pid ->
          Alcotest.(check bool)
            (Printf.sprintf "pid %d solo-terminates (seed %d)" pid seed)
            true
            (Mrun.solo_terminates ~max_steps:200 c' pid))
        (Mrun.live c'))
    (List.init 40 Fun.id)

let test_solo_distance_decreases () =
  (* Theorem 35's invariant: along a solo run, the shortest-solo-path
     length decreases by exactly 1 on every step whose response matches
     the process's expectation. The first step after a contended prefix
     may see an unexpected response (fallback transition); after it the
     run is truly solo and the invariant must hold at every step. *)
  let c = Mrun.init (coin_pair ()) in
  (* random prefix to desynchronize *)
  let c, _ = Mrun.run ~max_steps:3 ~sched:(Schedule.random ~seed:7) c in
  let expected_matches c pid =
    let p = Mrun.proc c pid in
    match Derandomize.poised p with
    | `Output _ -> true
    | `Step step ->
      let nd = Derandomize.nd p in
      let expected =
        Ndproto.expected_response nd ~ep:(Derandomize.expected p) step
      in
      let actual =
        match step with
        | Ndproto.Nscan -> Ndproto.view_of_ep (Mrun.mem c)
        | Ndproto.Nop (j, op) -> (
          match Objects.apply nd.Ndproto.kinds.(j) (Mrun.mem c).(j) op with
          | Ok (_, resp) -> resp
          | Error e -> Alcotest.fail e)
      in
      Value.equal expected actual
  in
  let rec walk c pid steps =
    if steps > 50 then Alcotest.fail "did not terminate"
    else
      match Derandomize.poised (Mrun.proc c pid) with
      | `Output _ ->
        Alcotest.(check (option int)) "final distance 0" (Some 0)
          (Derandomize.solo_distance (Mrun.proc c pid))
      | `Step _ ->
        let before = Derandomize.solo_distance (Mrun.proc c pid) in
        let matches = expected_matches c pid in
        let c' = Mrun.step_pid c pid in
        let after = Derandomize.solo_distance (Mrun.proc c' pid) in
        (if matches then
           match (before, after) with
           | Some b, Some a ->
             Alcotest.(check int) "distance decreases by 1" (b - 1) a
           | _ -> Alcotest.fail "distance must stay finite on expected steps");
        walk c' pid (steps + 1)
  in
  walk c 0 0

let test_hopeless_convert () =
  let p = Derandomize.convert Nd_examples.hopeless ~cap:500 ~input:(i 0) in
  Alcotest.(check (option int)) "no solo path" None (Derandomize.solo_distance p);
  let c = Mrun.init [ p ] in
  let _, outcome = Mrun.run ~max_steps:100 ~sched:(Schedule.solo 0) c in
  Alcotest.(check bool) "never terminates" true (outcome = Mrun.Step_limit)

(* ---- ABA (§5.3) ---- *)

let test_has_aba () =
  Alcotest.(check bool) "aba" true (Aba.has_aba [ i 1; i 2; i 1 ]);
  Alcotest.(check bool) "no aba monotone" false (Aba.has_aba [ i 1; i 2; i 3 ]);
  Alcotest.(check bool) "no aba repeat" false (Aba.has_aba [ i 1; i 1; i 2 ]);
  Alcotest.(check bool) "empty" false (Aba.has_aba []);
  Alcotest.(check bool) "aba long" true (Aba.has_aba [ i 3; i 1; i 2; i 2; i 3 ])

let find_aba_run ~tagged =
  (* Search schedules for a run of coin consensus whose register history
     exhibits ABA. Untagged: value flip-flops can recur. Tagged: the
     sequence number makes every written value fresh. *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 300 do
    let c = Mrun.init (coin_pair ~tagged ()) in
    let c', _ = Mrun.run ~max_steps:400 ~sched:(Schedule.random ~seed:!seed) c in
    (match Aba.check c' with Error _ -> found := true | Ok () -> ());
    incr seed
  done;
  !found

let test_untagged_can_aba () =
  Alcotest.(check bool) "untagged coin consensus exhibits ABA somewhere" true
    (find_aba_run ~tagged:false)

let test_tagged_never_aba () =
  Alcotest.(check bool) "tagged variant is ABA-free across 300 schedules" false
    (find_aba_run ~tagged:true)

let test_fai_never_aba () =
  List.iter
    (fun seed ->
      let procs =
        List.init 3 (fun _ ->
            Derandomize.convert Nd_examples.ticket ~cap:10_000 ~input:(i 0))
      in
      let c = Mrun.init procs in
      let c', _ = Mrun.run ~sched:(Schedule.random ~seed) c in
      match Aba.check c' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fetch-and-increment ABA?! %s" e)
    (List.init 20 Fun.id)

(* ---- properties ---- *)

let prop_derandomized_deterministic =
  QCheck.Test.make ~name:"derandomized runs deterministic in the seed" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let go () =
        let c = Mrun.init (coin_pair ()) in
        let c', _ = Mrun.run ~max_steps:500 ~sched:(Schedule.random ~seed) c in
        Mrun.outputs c'
      in
      go () = go ())

let prop_coin_validity =
  QCheck.Test.make ~name:"coin consensus validity" ~count:50
    QCheck.(pair (int_bound 10_000) (pair (int_range 0 5) (int_range 0 5)))
    (fun (seed, (a, b)) ->
      let procs =
        [
          Derandomize.convert
            (Nd_examples.coin_consensus ~me:0 ())
            ~cap:10_000 ~input:(i a);
          Derandomize.convert
            (Nd_examples.coin_consensus ~me:1 ())
            ~cap:10_000 ~input:(i b);
        ]
      in
      let c = Mrun.init procs in
      let c', _ = Mrun.run ~max_steps:1_000 ~sched:(Schedule.random ~seed) c in
      List.for_all
        (fun (_, v) -> Value.equal v (i a) || Value.equal v (i b))
        (Mrun.outputs c'))

let () =
  Alcotest.run "solo"
    [
      ( "ndproto",
        [
          Alcotest.test_case "expected response" `Quick test_expected_response;
          Alcotest.test_case "scan roundtrip" `Quick test_scan_response_roundtrip;
          Alcotest.test_case "max-register semantics" `Quick test_maxreg_semantics_in_ep;
          Alcotest.test_case "successors sorted" `Quick test_successors_sorted;
        ] );
      ( "solo paths",
        [
          Alcotest.test_case "ticket shortest" `Quick test_shortest_ticket;
          Alcotest.test_case "coin shortest" `Quick test_shortest_coin;
          Alcotest.test_case "hopeless has none" `Quick test_hopeless_no_path;
          Alcotest.test_case "first move" `Quick test_first_move;
        ] );
      ( "derandomize",
        [
          Alcotest.test_case "ticket decides first" `Quick
            test_ticket_derandomized_decides_first;
          Alcotest.test_case "tickets distinct" `Quick
            test_ticket_two_processes_distinct;
          Alcotest.test_case "coin agreement" `Quick test_coin_derandomized_agreement;
          Alcotest.test_case "Theorem 35: obstruction-free" `Quick
            test_theorem35_obstruction_freedom;
          Alcotest.test_case "solo distance decreases" `Quick
            test_solo_distance_decreases;
          Alcotest.test_case "hopeless stays hopeless" `Quick test_hopeless_convert;
        ] );
      ( "aba",
        [
          Alcotest.test_case "has_aba" `Quick test_has_aba;
          Alcotest.test_case "untagged can ABA" `Quick test_untagged_can_aba;
          Alcotest.test_case "tagged never ABA" `Quick test_tagged_never_aba;
          Alcotest.test_case "fetch-inc never ABA" `Quick test_fai_never_aba;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_derandomized_deterministic; prop_coin_validity ] );
    ]
