open Rsim_topology

let test_structure () =
  Alcotest.(check int) "vertices at s=3" 10 (List.length (Sperner.vertices ~s:3));
  Alcotest.(check int) "triangles at s=3" 9 (List.length (Sperner.triangles ~s:3));
  Alcotest.(check int) "triangles at s=5" 25 (List.length (Sperner.triangles ~s:5));
  (* every cell's vertices are subdivision vertices *)
  let vs = Sperner.vertices ~s:4 in
  List.iter
    (fun (a, b, c) ->
      List.iter
        (fun v -> Alcotest.(check bool) "vertex in range" true (List.mem v vs))
        [ a; b; c ])
    (Sperner.triangles ~s:4)

let test_allowed_colors () =
  Alcotest.(check (list int)) "corner A" [ 0 ] (Sperner.allowed_colors ~s:3 (3, 0));
  Alcotest.(check (list int)) "corner B" [ 1 ] (Sperner.allowed_colors ~s:3 (0, 3));
  Alcotest.(check (list int)) "corner C" [ 2 ] (Sperner.allowed_colors ~s:3 (0, 0));
  Alcotest.(check (list int)) "AB edge" [ 0; 1 ] (Sperner.allowed_colors ~s:3 (1, 2));
  Alcotest.(check (list int)) "interior" [ 0; 1; 2 ]
    (Sperner.allowed_colors ~s:3 (1, 1))

let test_validity () =
  let corners_only v =
    match Sperner.allowed_colors ~s:2 v with c :: _ -> c | [] -> 0
  in
  Alcotest.(check bool) "first-allowed coloring valid" true
    (Sperner.valid ~s:2 ~coloring:corners_only);
  Alcotest.(check bool) "constant coloring invalid" false
    (Sperner.valid ~s:2 ~coloring:(fun _ -> 0))

let test_sperner_parity_random () =
  (* Sperner's lemma: every valid coloring has an odd number of
     trichromatic cells. *)
  List.iter
    (fun seed ->
      List.iter
        (fun s ->
          let coloring = Sperner.random_coloring ~s ~seed in
          Alcotest.(check bool) "coloring valid" true (Sperner.valid ~s ~coloring);
          let count = List.length (Sperner.trichromatic ~s ~coloring) in
          Alcotest.(check bool)
            (Printf.sprintf "odd count (s=%d seed=%d count=%d)" s seed count)
            true
            (count mod 2 = 1))
        [ 1; 2; 3; 5; 8 ])
    (List.init 20 Fun.id)

let test_walk_finds_one () =
  List.iter
    (fun seed ->
      List.iter
        (fun s ->
          let coloring = Sperner.random_coloring ~s ~seed in
          match Sperner.find_by_walk ~s ~coloring with
          | Some t ->
            Alcotest.(check bool) "walk result is trichromatic" true
              (List.mem t (Sperner.trichromatic ~s ~coloring))
          | None -> Alcotest.failf "walk found nothing (s=%d seed=%d)" s seed)
        [ 1; 2; 3; 5; 8 ])
    (List.init 20 Fun.id)

let test_walk_rejects_invalid () =
  Alcotest.(check bool) "invalid coloring refused" true
    (Sperner.find_by_walk ~s:3 ~coloring:(fun _ -> 0) = None)

let prop_parity =
  QCheck.Test.make ~name:"Sperner parity over random colorings" ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 10))
    (fun (seed, s) ->
      let coloring = Sperner.random_coloring ~s ~seed in
      List.length (Sperner.trichromatic ~s ~coloring) mod 2 = 1)

let prop_walk_agrees =
  QCheck.Test.make ~name:"walk finds a trichromatic cell" ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 10))
    (fun (seed, s) ->
      let coloring = Sperner.random_coloring ~s ~seed in
      match Sperner.find_by_walk ~s ~coloring with
      | Some t -> List.mem t (Sperner.trichromatic ~s ~coloring)
      | None -> false)

let () =
  Alcotest.run "topology"
    [
      ( "sperner",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "allowed colors" `Quick test_allowed_colors;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "parity (the lemma)" `Quick test_sperner_parity_random;
          Alcotest.test_case "constructive walk" `Quick test_walk_finds_one;
          Alcotest.test_case "invalid rejected" `Quick test_walk_rejects_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_parity; prop_walk_agrees ] );
    ]
