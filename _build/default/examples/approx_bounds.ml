(* Approximate agreement (Corollary 34).

   The paper lower-bounds the registers needed for obstruction-free
   eps-approximate agreement via a reduction to the Hoest-Shavit step
   complexity lower bound. This example:

   - runs the wait-free round-based midpoint protocol (one register per
     process, the [9]-style upper bound) across adversarial schedules
     and checks eps-agreement and validity;
   - prints the Corollary 34 lower bound against the two known upper
     bounds across a sweep of eps.

   Run with: dune exec examples/approx_bounds.exe *)

open Core

let () =
  let eps = 0.05 in
  let rounds = Approx_agreement.rounds_for ~eps in
  Printf.printf "protocol: %d rounds for eps = %g, inputs in [0,1]\n" rounds eps;
  let inputs = [ 0.0; 1.0; 0.25; 0.75 ] in
  let ok = ref 0 in
  let runs = 100 in
  let worst_spread = ref 0.0 in
  for seed = 0 to runs - 1 do
    let procs =
      List.mapi
        (fun pid v -> (Approx_agreement.protocol ~rounds ()) pid (Value.Float v))
        inputs
    in
    let c = Run.init ~m:(List.length inputs) procs in
    let c', _ = Run.run ~sched:(Schedule.random ~seed) c in
    let outs = List.map (fun (_, v) -> Value.as_float_exn v) (Run.outputs c') in
    let lo = List.fold_left min infinity outs
    and hi = List.fold_left max neg_infinity outs in
    worst_spread := max !worst_spread (hi -. lo);
    match
      Task.check (Task.approx ~eps)
        ~inputs:(List.map (fun v -> Value.Float v) inputs)
        ~outputs:(List.map (fun v -> Value.Float v) outs)
    with
    | Ok () -> incr ok
    | Error e -> Printf.printf "seed %d: %s\n" seed e
  done;
  Printf.printf "valid in %d/%d runs; worst output spread %.4f (eps = %g)\n\n" !ok
    runs !worst_spread eps;
  print_endline "Corollary 34 lower bound vs upper bounds:";
  Tables.print_approx Format.std_formatter
    (Tables.approx_rows ~ns:[ 4; 16; 64; 256 ]
       ~epss:[ 0.1; 1e-3; 1e-6; 1e-12; 1e-24; 1e-48 ])
