(* The headline reduction (Corollary 33, consensus case).

   Any obstruction-free consensus protocol for n processes needs at
   least n registers. The proof: if a protocol used fewer, two
   simulators could run the revisionist simulation and wait-free solve
   2-process consensus — impossible.

   This example makes the reduction concrete on both sides of the bound:

   - ENOUGH SPACE (one simulator, m components, m simulated processes):
     every schedule produces valid consensus.
   - TOO LITTLE SPACE (two simulators over m < n components): the
     simulation stays wait-free (Theorem 21!) — and because no correct
     protocol can exist there, our concrete racing protocol is driven to
     actual disagreement on many schedules.

   Run with: dune exec examples/consensus_reduction.exe *)

open Core

let run_case ~label ~n ~m ~f ~seeds =
  let spec =
    {
      Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
      n;
      m;
      f;
      d = 0;
      inputs = List.init f (fun p -> Value.Int (p + 1));
    }
  in
  let wait_free = ref 0 and violations = ref 0 in
  let first = ref None in
  for seed = 0 to seeds - 1 do
    let result = Harness.run ~sched:(Schedule.random ~seed) spec in
    if result.Harness.all_done then incr wait_free;
    match Harness.validate spec result ~task:Task.consensus with
    | Error _ when result.Harness.all_done ->
      incr violations;
      if !first = None then first := Some (seed, result.Harness.outputs)
    | _ -> ()
  done;
  Printf.printf "%s: n=%d m=%d f=%d | wait-free %d/%d | violations %d/%d\n" label
    n m f !wait_free seeds !violations seeds;
  match !first with
  | Some (seed, outputs) ->
    Printf.printf "  e.g. seed %d: %s\n" seed
      (String.concat ", "
         (List.map
            (fun (i, v) -> Printf.sprintf "q%d->%s" i (Value.show v))
            outputs))
  | None -> ()

let () =
  let n = 4 in
  Printf.printf "Corollary 33: obstruction-free consensus among n=%d needs >= %d registers.\n\n"
    n (Lower.consensus ~n);
  run_case ~label:"enough space      " ~n:3 ~m:3 ~f:1 ~seeds:100;
  run_case ~label:"too little, f=2   " ~n ~m:2 ~f:2 ~seeds:100;
  run_case ~label:"too little, f=3   " ~n:6 ~m:2 ~f:3 ~seeds:100;
  print_newline ();
  print_endline
    "Wait-freedom holds in every case (Theorem 21): the simulators never hang.";
  print_endline
    "Below the bound, the reduction exposes the protocol: disagreement executions";
  print_endline
    "exist, which is exactly why no correct protocol can live there."
