(* Quickstart: the three layers of the library in one file.

   1. Use the augmented snapshot directly: Block-Updates return views of
      the past (§3).
   2. Run a protocol in the simulated system.
   3. Run the revisionist simulation end to end (§4) and let the
      Lemma 26 analysis replay what happened.

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  print_endline "== 1. The augmented snapshot object ==";
  let aug = Aug.create ~f:2 ~m:3 () in
  let show view =
    String.concat "; " (List.map Value.show (Array.to_list view))
  in
  let body0 _ =
    (match Aug.block_update aug ~me:0 [ (0, Value.Int 10); (2, Value.Int 30) ] with
    | `View v -> Printf.printf "q0 Block-Update was atomic; past view = [%s]\n" (show v)
    | `Yield -> print_endline "q0 yielded (impossible: q0 has the lowest id)");
    let v = Aug.scan aug ~me:0 in
    Printf.printf "q0 Scan = [%s]\n" (show v)
  in
  let body1 _ =
    match Aug.block_update aug ~me:1 [ (1, Value.Int 20) ] with
    | `View v -> Printf.printf "q1 Block-Update was atomic; past view = [%s]\n" (show v)
    | `Yield -> print_endline "q1 yielded: a lower-id update landed inside its interval"
  in
  let result =
    Aug.F.run ~sched:Rsim_shmem.Schedule.round_robin ~apply:(Aug.apply aug)
      [ body0; body1 ]
  in
  let report = Aug_spec.check aug result.Aug.F.trace in
  Printf.printf "spec check (Lemmas 2-19, Thm 20): %s\n\n"
    (if report.Aug_spec.ok then "all hold" else "FAILED");

  print_endline "== 2. A protocol in the simulated system ==";
  let inputs = [ Value.Int 7; Value.Int 9 ] in
  let procs =
    List.mapi (fun pid input -> (Racing.protocol ~m:2 ()) pid input) inputs
  in
  let c = Run.init ~m:2 procs in
  let c', _ = Run.run ~sched:(Schedule.random ~seed:42) c in
  List.iter
    (fun (pid, v) -> Printf.printf "process %d decided %s\n" pid (Value.show v))
    (Run.outputs c');
  print_newline ();

  print_endline "== 3. The revisionist simulation ==";
  let spec =
    {
      Harness.protocol = (fun pid input -> (Racing.protocol ~m:2 ()) pid input);
      n = 4;
      m = 2;
      f = 2;
      d = 0;
      inputs = [ Value.Int 1; Value.Int 2 ];
    }
  in
  print_string (Harness.architecture spec);
  let result = Harness.run ~sched:(Schedule.random ~seed:7) spec in
  Printf.printf "wait-free: %b, H-operations: %d\n" result.Harness.all_done
    result.Harness.total_ops;
  List.iter
    (fun (i, v) -> Printf.printf "simulator q%d output %s\n" i (Value.show v))
    result.Harness.outputs;
  let rep = Analysis.check spec result in
  Printf.printf
    "Lemma 26 replay: %s (%d linearized steps, %d revisions, %d hidden steps)\n"
    (if rep.Analysis.ok then "ok" else "FAILED")
    rep.Analysis.stats.Analysis.n_lin_items rep.Analysis.stats.Analysis.n_revisions
    rep.Analysis.stats.Analysis.n_hidden_steps
