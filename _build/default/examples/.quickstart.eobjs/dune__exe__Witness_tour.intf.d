examples/witness_tour.mli:
