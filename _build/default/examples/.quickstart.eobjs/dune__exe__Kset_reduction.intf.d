examples/kset_reduction.mli:
