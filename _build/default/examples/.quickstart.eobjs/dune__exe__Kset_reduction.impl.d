examples/kset_reduction.ml: Core Format Harness Lower Printf Racing Schedule Tables Task Upper Value
