examples/approx_bounds.ml: Approx_agreement Core Format List Printf Run Schedule Tables Task Value
