examples/derandomize_demo.ml: Core Derandomize List Mrun Nd_examples Ndproto Printf Rsim_shmem Schedule Value
