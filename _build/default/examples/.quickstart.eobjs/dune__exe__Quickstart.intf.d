examples/quickstart.mli:
