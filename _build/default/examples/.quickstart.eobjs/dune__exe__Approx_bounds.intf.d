examples/approx_bounds.mli:
