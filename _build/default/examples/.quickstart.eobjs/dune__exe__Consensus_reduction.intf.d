examples/consensus_reduction.mli:
