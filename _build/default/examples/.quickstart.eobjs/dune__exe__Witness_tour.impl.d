examples/witness_tour.ml: Analysis Core Covering_witness Format Harness List Printf Racing Schedule Sperner String Task Trace_pp Value
