examples/derandomize_demo.mli:
