examples/quickstart.ml: Analysis Array Aug Aug_spec Core Harness List Printf Racing Rsim_shmem Run Schedule String Value
