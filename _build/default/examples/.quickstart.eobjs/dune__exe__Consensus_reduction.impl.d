examples/consensus_reduction.ml: Core Harness List Lower Printf Racing Schedule String Task Value
