(* Derandomization (Theorem 35): watching the solo distance tick down.

   A nondeterministic solo-terminating protocol is converted into a
   deterministic obstruction-free one: whenever a process's observed
   response matches what a solo run would return, it follows a shortest
   solo path, so the distance-to-decision drops by 1 per step. When
   another process interferes, the distance can jump — but a fresh solo
   path always exists from the new state.

   Run with: dune exec examples/derandomize_demo.exe *)

open Core

let show_step = function
  | Ndproto.Nscan -> "scan"
  | Ndproto.Nop (j, op) ->
    Printf.sprintf "%s@%d" (Rsim_shmem.Objects.op_name op) j

let () =
  let procs =
    [
      Derandomize.convert (Nd_examples.coin_consensus ~me:0 ()) ~cap:10_000
        ~input:(Value.Int 1);
      Derandomize.convert (Nd_examples.coin_consensus ~me:1 ()) ~cap:10_000
        ~input:(Value.Int 2);
    ]
  in
  let c = ref (Mrun.init procs) in
  (* An adversarial prefix: strictly alternate for 4 steps. *)
  print_endline "adversarial prefix (alternating):";
  List.iter
    (fun pid ->
      let p = Mrun.proc !c pid in
      (match Derandomize.poised p with
      | `Step s ->
        Printf.printf "  p%d %-12s (solo distance %s)\n" pid (show_step s)
          (match Derandomize.solo_distance p with
          | Some d -> string_of_int d
          | None -> "-")
      | `Output _ -> ());
      c := Mrun.step_pid !c pid)
    [ 0; 1; 0; 1 ];
  print_endline "now p0 runs solo; Theorem 35 says its distance decreases by 1";
  print_endline "on every step whose response matches its expectation:";
  let steps = ref 0 in
  let finished = ref false in
  while (not !finished) && !steps < 20 do
    (match Derandomize.poised (Mrun.proc !c 0) with
    | `Output v ->
      Printf.printf "  p0 decides %s\n" (Value.show v);
      finished := true
    | `Step s ->
      Printf.printf "  p0 %-12s distance %s -> " (show_step s)
        (match Derandomize.solo_distance (Mrun.proc !c 0) with
        | Some d -> string_of_int d
        | None -> "-");
      c := Mrun.step_pid !c 0;
      Printf.printf "%s\n"
        (match Derandomize.solo_distance (Mrun.proc !c 0) with
        | Some d -> string_of_int d
        | None -> "-"));
    incr steps
  done;
  (* p1 also terminates solo from here: obstruction-freedom. *)
  let c', _ = Mrun.run ~sched:(Schedule.solo 1) !c in
  List.iter
    (fun (pid, v) -> Printf.printf "p%d decided %s\n" pid (Value.show v))
    (Mrun.outputs c');
  match List.map snd (Mrun.outputs c') with
  | [ a; b ] when Value.equal a b -> print_endline "agreement holds."
  | _ -> print_endline "??"
