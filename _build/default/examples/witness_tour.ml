(* A guided tour of the impossibility machinery.

   1. Sperner's lemma — the combinatorial fact behind "wait-free k-set
      agreement is impossible", the reduction's target.
   2. A deterministic covering adversary breaking an under-provisioned
      protocol (no random search).
   3. The full revisionist simulation run on the same regime, printed as
      a readable timeline showing an actual revision of the past.

   Run with: dune exec examples/witness_tour.exe *)

open Core

let () =
  print_endline "== 1. Sperner's lemma, executably ==";
  let s = 6 in
  let coloring = Sperner.random_coloring ~s ~seed:2024 in
  let tri = Sperner.trichromatic ~s ~coloring in
  Printf.printf
    "random Sperner coloring at scale %d: %d trichromatic cells (odd, as the\n\
     lemma demands); the door-to-door walk finds one constructively: %s\n\n"
    s (List.length tri)
    (match Sperner.find_by_walk ~s ~coloring with
    | Some ((a1, a2), (b1, b2), (c1, c2)) ->
      Printf.sprintf "{(%d,%d) (%d,%d) (%d,%d)}" a1 a2 b1 b2 c1 c2
    | None -> "??");

  print_endline "== 2. A deterministic covering adversary ==";
  let procs =
    List.init 2 (fun pid -> (Racing.protocol ~m:2 ()) pid (Value.Int pid))
  in
  (match
     Covering_witness.phase_shifted ~procs ~m:2 ~task:Task.consensus ~max_turn:8
   with
  | Some w ->
    Printf.printf
      "racing consensus on m = n = 2 registers falls to a %s:\n  outputs %s\n\n"
      w.Covering_witness.description
      (String.concat ", "
         (List.map
            (fun (p, v) -> Printf.sprintf "p%d->%s" p (Value.show v))
            w.Covering_witness.outputs))
  | None -> print_endline "unexpectedly survived\n");

  print_endline "== 3. The revisionist simulation, annotated ==";
  let spec =
    {
      Harness.protocol = (fun pid input -> (Racing.protocol ~m:2 ()) pid input);
      n = 4;
      m = 2;
      f = 2;
      d = 0;
      inputs = [ Value.Int 1; Value.Int 2 ];
    }
  in
  let result = Harness.run ~sched:(Schedule.random ~seed:5) spec in
  Trace_pp.pp_run Format.std_formatter spec result;
  let rep = Analysis.check spec result in
  Format.printf "Lemma 26 replay: %s@."
    (if rep.Analysis.ok then "the revised execution is a legal run of the protocol"
     else "FAILED")
