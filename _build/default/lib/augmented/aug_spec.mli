(** Executable specification of the augmented snapshot (§3.1, §3.3).

    Given the complete trace of [H] operations and the log of completed
    M-operations from an {!Aug} execution, [check] reconstructs the
    paper's linearization and verifies every checkable claim of §3:

    - {b Lemma 2} (step complexity): each Block-Update performs at most 6
      [H]-steps; each Scan performs at most [2k+3] steps, where [k] is
      the number of triple-appending updates by other processes
      concurrent with it.
    - {b Lemma 9}: all Block-Update timestamps are distinct.
    - {b Lemma 11}: the Updates of an atomic Block-Update linearize at
      its Line-4 update [X], consecutively, in component order.
    - {b Lemma 12}: the Updates of a yielding Block-Update linearize
      after its Line-2 scan and no later than its [X].
    - {b Corollary 15}: every completed Scan returns, for each component,
      the value of the last Update linearized before it.
    - {b Lemmas 16–19} (windows): each atomic Block-Update returns the
      contents of M at a point [L] inside its execution interval and
      before [X]; no Scan linearizes in the window [(L, X]]; windows of
      distinct atomic Block-Updates are pairwise disjoint; only Updates
      of non-atomic Block-Updates by other processes linearize inside a
      window.
    - {b Theorem 20}: a Block-Update yields only if a lower-identifier
      process appended triples during its execution interval; process 0
      never yields.

    The linearization point of an Update to component [j] with timestamp
    [t] is the first trace index at which [H] contains a triple for [j]
    with timestamp [≽ t]; ties are ordered by timestamp then component
    (§3.3). Scans linearize at their final [H.scan]. *)

(** {2 Linearization reconstruction}

    Used by [check] below and by the simulation's execution analysis
    (Lemma 26 replay). *)

(** One item of the linearized execution of M-operations. *)
type litem =
  | L_scan of { proc : int; view : Rsim_value.Value.t array; end_idx : int }
      (** a completed M.Scan, linearized at its final [H.scan] *)
  | L_update of {
      writer : int;
      ts : Vts.t;
      comp : int;
      value : Rsim_value.Value.t;
      x_idx : int;  (** index of the Line-4 update that appended it *)
      lin_idx : int;  (** linearization point (trace index) *)
    }

(** The linearized sequence of M.Scans and M.Updates of an execution, in
    linearization order (§3.3). Includes the Updates of Block-Updates
    that executed their Line-4 update but never completed. *)
val linearize : Aug.t -> Aug.F.trace_entry list -> litem list

(** [window_start ~trace ~last ~x_idx] locates the point [L] of an atomic
    Block-Update: the last [H.scan] before [x_idx] whose result is
    triple-equal to the recorded ℓ ([last]). *)
val window_start :
  trace:Aug.F.trace_entry list -> last:Hrep.snap -> x_idx:int -> int option

type stats = {
  n_scans : int;
  n_bus : int;
  n_atomic : int;
  n_yield : int;
  n_incomplete_bus : int;  (** X executed but the M-op never completed *)
  max_scan_ops : int;
  max_bu_ops : int;
}

type report = { ok : bool; errors : string list; stats : stats }

val pp_report : Format.formatter -> report -> unit

(** [check aug trace] validates one finished execution. [trace] is the
    [F.run] trace of the same run. *)
val check : Aug.t -> Aug.F.trace_entry list -> report
