type t = int array

let make ~counts ~me =
  let t = Array.copy counts in
  if me < 0 || me >= Array.length t then invalid_arg "Vts.make: me out of range";
  t.(me) <- t.(me) + 1;
  t

let compare (a : t) (b : t) =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Vts.compare: length mismatch";
  let rec go i =
    if i >= n then 0
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0
let geq a b = compare a b >= 0
let to_array = Array.copy
let of_array = Array.copy

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))

let show t = Format.asprintf "%a" pp t
