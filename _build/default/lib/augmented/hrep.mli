(** Representation of the single-writer snapshot [H] of §3.2.

    Component [i] of [H] belongs to real process [q_i] and holds, in
    append order:
    - {b update triples} [(j, v, t)]: "q_i's Block-Update with timestamp
      [t] set component [j] of M to [v]" (appended by Line 4 of
      Algorithm 4);
    - {b L-records} [(dest, b, h)]: the representation of the unbounded
      helping registers [L_{i,dest}[b] := h] (appended by the helping
      writes of Algorithms 3 and 4). An L-record's payload is itself a
      scan result of [H].

    The prefix relation, the equality used by [Scan]'s
    "two consecutive identical results" test, and the counts [#h_j] are
    all over update triples only: L-records are helping metadata, not
    Block-Updates. (Otherwise [Scan]'s own helping writes would prevent
    its termination, contradicting Lemma 2, and Theorem 20's proof —
    "only possible if a new triple is appended by Line 4" — would fail.) *)

open Rsim_value

type triple = { comp : int; value : Value.t; ts : Vts.t }

type lrecord = {
  dest : int;  (** the reader this record helps *)
  index : int;  (** the [b] in [L_{i,dest}[b]] *)
  payload : snap;  (** the scan result written *)
}

and component = {
  triples : triple list;  (** oldest first *)
  lrecords : lrecord list;  (** oldest first *)
}

and snap = component array
(** The result of an atomic scan of [H]: one component per real process. *)

val empty_component : component

(** A fresh [H] with [f] empty components. *)
val create : f:int -> snap

(** [#h_i]: the number of Block-Updates recorded in a component = the
    number of distinct timestamps among its triples. *)
val count_bu : component -> int

(** [counts h] is the vector [#h_1 .. #h_f]. *)
val counts : snap -> int array

(** Append the triples of one Block-Update (all sharing one timestamp). *)
val append_triples : component -> triple list -> component

val append_lrecords : component -> lrecord list -> component

(** Equality over update triples only (the [until h = h'] test). *)
val equal_triples : snap -> snap -> bool

(** [is_prefix h h']: every component's triple list of [h] is a prefix of
    the corresponding list of [h'] (Observation 1's relation). *)
val is_prefix : snap -> snap -> bool

(** Prefix and differing in at least one component. *)
val is_proper_prefix : snap -> snap -> bool

(** [Get-View] (Algorithm 2): for each of the [m] components of M, the
    value of the triple with the lexicographically largest timestamp, or
    ⊥ if none. *)
val get_view : m:int -> snap -> Value.t array

(** [New-Timestamp] (Algorithm 1) for process [me]. *)
val new_timestamp : snap -> me:int -> Vts.t

(** [read_l h ~writer ~reader ~index] is the current value of
    [L_{writer,reader}[index]] as seen in [h]: the payload of the last
    matching L-record in component [writer], or [None] (⊥). *)
val read_l : snap -> writer:int -> reader:int -> index:int -> snap option

(** All triples of [h], tagged with the component of [H] they live in:
    [(writer, triple)]. *)
val all_triples : snap -> (int * triple) list

(** Whether [h] contains a triple with this exact timestamp. *)
val contains_ts : snap -> Vts.t -> bool
