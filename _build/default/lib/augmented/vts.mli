(** Vector timestamps (§3.2, Algorithm 1).

    A timestamp is an [f]-component vector of non-negative integers,
    ordered lexicographically. Process [i] generates a new timestamp from
    a scan result [h] by taking [t_j = #h_j] for [j ≠ i] and
    [t_i = #h_i + 1], where [#h_j] counts the Block-Updates recorded in
    component [j]. Corollary 8: a timestamp generated from [h] is
    lexicographically larger than every timestamp contained in [h];
    Lemma 9: all Block-Update timestamps are distinct. *)

type t

(** [make ~counts ~me] implements [New-Timestamp]: [counts] is the vector
    [#h_1 .. #h_f]; the [me] entry is incremented. *)
val make : counts:int array -> me:int -> t

(** Lexicographic order. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [t' ≽ t] (lexicographically at least as large). *)
val geq : t -> t -> bool

val to_array : t -> int array
val of_array : int array -> t
val pp : Format.formatter -> t -> unit
val show : t -> string
