open Rsim_value

type triple = { comp : int; value : Value.t; ts : Vts.t }

type lrecord = { dest : int; index : int; payload : snap }

and component = { triples : triple list; lrecords : lrecord list }

and snap = component array

let empty_component = { triples = []; lrecords = [] }
let create ~f = Array.make f empty_component

let count_bu c =
  (* Triples of one Block-Update share a timestamp and are appended
     together, so counting groups of equal adjacent timestamps counts
     Block-Updates. *)
  let rec go last n = function
    | [] -> n
    | t :: rest -> (
      match last with
      | Some ts when Vts.equal ts t.ts -> go last n rest
      | _ -> go (Some t.ts) (n + 1) rest)
  in
  go None 0 c.triples

let counts h = Array.map count_bu h

let append_triples c ts = { c with triples = c.triples @ ts }
let append_lrecords c ls = { c with lrecords = c.lrecords @ ls }

let triple_equal a b =
  a.comp = b.comp && Value.equal a.value b.value && Vts.equal a.ts b.ts

let rec list_is_prefix eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' -> eq x y && list_is_prefix eq xs' ys'

let equal_triples a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ca cb ->
         List.length ca.triples = List.length cb.triples
         && List.for_all2 triple_equal ca.triples cb.triples)
       a b

let is_prefix a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun ca cb -> list_is_prefix triple_equal ca.triples cb.triples) a b

let is_proper_prefix a b = is_prefix a b && not (equal_triples a b)

let all_triples h =
  let acc = ref [] in
  Array.iteri (fun writer c -> List.iter (fun t -> acc := (writer, t) :: !acc) c.triples) h;
  List.rev !acc

let get_view ~m h =
  let view = Array.make m Value.Bot in
  let best = Array.make m None in
  List.iter
    (fun (_, t) ->
      if t.comp >= 0 && t.comp < m then
        match best.(t.comp) with
        | Some ts when Vts.geq ts t.ts -> ()
        | _ ->
          best.(t.comp) <- Some t.ts;
          view.(t.comp) <- t.value)
    (all_triples h);
  view

let new_timestamp h ~me = Vts.make ~counts:(counts h) ~me

let read_l h ~writer ~reader ~index =
  let matching =
    List.filter (fun l -> l.dest = reader && l.index = index) h.(writer).lrecords
  in
  match List.rev matching with
  | [] -> None
  | last :: _ -> Some last.payload

let contains_ts h ts =
  List.exists (fun (_, t) -> Vts.equal t.ts ts) (all_triples h)
