open Rsim_value

(* ---------------------------------------------------------------- *)
(* Linearization reconstruction (§3.3)                               *)
(* ---------------------------------------------------------------- *)

type litem =
  | L_scan of { proc : int; view : Value.t array; end_idx : int }
  | L_update of {
      writer : int;
      ts : Vts.t;
      comp : int;
      value : Value.t;
      x_idx : int;
      lin_idx : int;
    }

type bu_kind = Atomic_bu | Yield_bu | Incomplete_bu

(* One Update (a single-component write that is part of a Block-Update),
   as reconstructed from the trace. *)
type update_item = {
  u_comp : int;
  u_value : Value.t;
  u_ts : Vts.t;
  u_writer : int;
  u_x_idx : int;
  mutable u_lin : int;  (* linearization point (trace index); -1 = unset *)
  u_kind : bu_kind;
}

(* Reconstruct every Update from the trace (including those of
   Block-Updates that executed X but never completed), classifying each
   via [kind_of (pid, ts)]. *)
let reconstruct_updates ~kind_of trace =
  let updates = ref [] in
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match e.op with
      | Aug.Ops.Happend_triples (({ ts; _ } :: _) as triples) ->
        let kind = kind_of (e.pid, ts) in
        List.iter
          (fun (tr : Hrep.triple) ->
            updates :=
              {
                u_comp = tr.comp;
                u_value = tr.value;
                u_ts = tr.ts;
                u_writer = e.pid;
                u_x_idx = e.idx;
                u_lin = -1;
                u_kind = kind;
              }
              :: !updates)
          triples
      | Aug.Ops.Happend_triples [] | Aug.Ops.Hscan | Aug.Ops.Happend_lrecords _ ->
        ())
    trace;
  List.rev !updates

(* The linearization point of an Update (j, t) is the first trace index
   at which H contains a triple for component j with timestamp ≽ t.
   Sweep the trace maintaining the largest timestamp per component. *)
let assign_lin_points ~m trace updates =
  let pending = Array.make m [] in
  List.iter (fun u -> pending.(u.u_comp) <- u :: pending.(u.u_comp)) updates;
  Array.iteri
    (fun j us -> pending.(j) <- List.sort (fun a b -> Vts.compare a.u_ts b.u_ts) us)
    pending;
  let maxts = Array.make m None in
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match e.op with
      | Aug.Ops.Happend_triples triples ->
        List.iter
          (fun (tr : Hrep.triple) ->
            (match maxts.(tr.comp) with
            | Some t when Vts.geq t tr.ts -> ()
            | _ -> maxts.(tr.comp) <- Some tr.ts);
            let rec pop () =
              match pending.(tr.comp) with
              | u :: rest
                when (match maxts.(tr.comp) with
                     | Some t -> Vts.geq t u.u_ts
                     | None -> false) ->
                u.u_lin <- e.idx;
                pending.(tr.comp) <- rest;
                pop ()
              | _ -> ()
            in
            pop ())
          triples
      | Aug.Ops.Hscan | Aug.Ops.Happend_lrecords _ -> ())
    trace

type lin_internal = U of update_item | S of Aug.mop (* always a Scan_op *)

let lin_idx_of = function
  | U u -> u.u_lin
  | S (Aug.Scan_op { end_idx; _ }) -> end_idx
  | S (Aug.Bu_op _) -> assert false

(* Updates linearized at the same point are ordered by timestamp then
   component (§3.3). Scan and Update points never collide: they sit at
   Hscan and Happend_triples events respectively. *)
let sort_lin items =
  let compare_items a b =
    let c = Int.compare (lin_idx_of a) (lin_idx_of b) in
    if c <> 0 then c
    else
      match (a, b) with
      | U ua, U ub ->
        let c = Vts.compare ua.u_ts ub.u_ts in
        if c <> 0 then c else Int.compare ua.u_comp ub.u_comp
      | S _, S _ | U _, S _ | S _, U _ -> 0
  in
  List.stable_sort compare_items items

let internal_linearize aug trace ~kind_of =
  let m = Aug.m aug in
  let scans =
    List.filter_map
      (function Aug.Scan_op _ as s -> Some s | Aug.Bu_op _ -> None)
      (Aug.log aug)
  in
  let updates = reconstruct_updates ~kind_of trace in
  assign_lin_points ~m trace updates;
  let items = List.map (fun u -> U u) updates @ List.map (fun s -> S s) scans in
  (sort_lin items, updates)

let linearize aug trace =
  let items, _ = internal_linearize aug trace ~kind_of:(fun _ -> Incomplete_bu) in
  List.map
    (function
      | U u ->
        L_update
          {
            writer = u.u_writer;
            ts = u.u_ts;
            comp = u.u_comp;
            value = u.u_value;
            x_idx = u.u_x_idx;
            lin_idx = u.u_lin;
          }
      | S (Aug.Scan_op { proc; view; end_idx; _ }) -> L_scan { proc; view; end_idx }
      | S (Aug.Bu_op _) -> assert false)
    items

(* The paper's scan-result equality is over update triples (the prefix
   relation of Observation 1), so "the last scan that returns ℓ" means
   the last scan whose result is triple-equal to ℓ. H's triples are
   append-only, so per-component triple counts identify the state. *)
let window_start ~trace ~last ~x_idx =
  let profile (s : Hrep.snap) =
    Array.map (fun c -> List.length c.Hrep.triples) s
  in
  let target = profile last in
  let best = ref None in
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match (e.op, e.res) with
      | Aug.Ops.Hscan, Aug.Ops.Snap s when e.idx < x_idx && profile s = target ->
        best := Some e.idx
      | _ -> ())
    trace;
  !best

(* ---------------------------------------------------------------- *)
(* The checker                                                       *)
(* ---------------------------------------------------------------- *)

type stats = {
  n_scans : int;
  n_bus : int;
  n_atomic : int;
  n_yield : int;
  n_incomplete_bus : int;
  max_scan_ops : int;
  max_bu_ops : int;
}

type report = { ok : bool; errors : string list; stats : stats }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>ok=%b scans=%d bus=%d (atomic=%d yield=%d incomplete=%d)@,errors:@,%a@]"
    r.ok r.stats.n_scans r.stats.n_bus r.stats.n_atomic r.stats.n_yield
    r.stats.n_incomplete_bus
    (Format.pp_print_list Format.pp_print_string)
    r.errors

let check aug trace =
  let m = Aug.m aug in
  let log = Aug.log aug in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in

  let completed_bu_key = Hashtbl.create 16 in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; result; _ } ->
        let kind =
          match result with Aug.Atomic _ -> Atomic_bu | Aug.Yield -> Yield_bu
        in
        Hashtbl.replace completed_bu_key (proc, Vts.to_array ts) kind
      | Aug.Scan_op _ -> ())
    log;
  let n_incomplete = ref 0 in
  let kind_of (pid, ts) =
    match Hashtbl.find_opt completed_bu_key (pid, Vts.to_array ts) with
    | Some k -> k
    | None ->
      incr n_incomplete;
      Incomplete_bu
  in
  let order, updates = internal_linearize aug trace ~kind_of in

  (* Lemma 9: timestamps of distinct Block-Updates are distinct. *)
  let ts_seen = Hashtbl.create 16 in
  List.iter
    (fun u ->
      let key = Vts.to_array u.u_ts in
      match Hashtbl.find_opt ts_seen key with
      | Some writer when writer <> u.u_writer ->
        err "Lemma 9: timestamp %s used by both q%d and q%d" (Vts.show u.u_ts)
          writer u.u_writer
      | _ -> Hashtbl.replace ts_seen key u.u_writer)
    updates;
  List.iter
    (fun u ->
      if u.u_lin < 0 then
        err "internal: update to %d by q%d never linearized" u.u_comp u.u_writer)
    updates;

  (* Corollary 15: replay M along the linearization; every Scan's view
     must match. *)
  let contents = Array.make m Value.Bot in
  List.iter
    (fun item ->
      match item with
      | U u -> contents.(u.u_comp) <- u.u_value
      | S (Aug.Scan_op { proc; view; end_idx; _ }) ->
        if not (Array.for_all2 Value.equal contents view) then
          err "Corollary 15: Scan by q%d at idx %d returned a stale view" proc
            end_idx
      | S (Aug.Bu_op _) -> assert false)
    order;

  (* Lemma 11 / Lemma 12. *)
  let updates_of_bu proc ts =
    List.filter (fun u -> u.u_writer = proc && Vts.equal u.u_ts ts) updates
  in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; x_idx; start_idx; result; _ } -> (
        let us = updates_of_bu proc ts in
        match result with
        | Aug.Atomic _ ->
          List.iter
            (fun u ->
              if u.u_lin <> x_idx then
                err
                  "Lemma 11: atomic Block-Update by q%d (ts %s): update to %d \
                   linearized at %d, not at X=%d"
                  proc (Vts.show ts) u.u_comp u.u_lin x_idx)
            us
        | Aug.Yield ->
          List.iter
            (fun u ->
              if not (u.u_lin > start_idx && u.u_lin <= x_idx) then
                err
                  "Lemma 12: yield Block-Update by q%d (ts %s): update to %d \
                   linearized at %d outside (%d, %d]"
                  proc (Vts.show ts) u.u_comp u.u_lin start_idx x_idx)
            us)
      | Aug.Scan_op _ -> ())
    log;

  (* Lemma 11 contiguity: in the final order, the updates of each atomic
     Block-Update appear consecutively. *)
  let order_arr = Array.of_list order in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; result = Aug.Atomic _; _ } ->
        let positions = ref [] in
        Array.iteri
          (fun pos item ->
            match item with
            | U u when u.u_writer = proc && Vts.equal u.u_ts ts ->
              positions := pos :: !positions
            | _ -> ())
          order_arr;
        let ps = List.sort Int.compare !positions in
        (match ps with
        | [] -> ()
        | first :: _ ->
          List.iteri
            (fun k p ->
              if p <> first + k then
                err
                  "Lemma 11: updates of atomic Block-Update by q%d (ts %s) \
                   are not consecutive in the linearization"
                  proc (Vts.show ts))
            ps)
      | Aug.Bu_op _ | Aug.Scan_op _ -> ())
    log;

  (* ---- Windows (Lemmas 16-19). ---- *)
  let windows = ref [] in
  List.iter
    (function
      | Aug.Bu_op
          { proc; ts; x_idx; start_idx; result = Aug.Atomic { view; last }; _ }
        -> (
        match window_start ~trace ~last ~x_idx with
        | None ->
          err "Lemma 16: atomic Block-Update by q%d (ts %s): cannot locate L"
            proc (Vts.show ts)
        | Some l_idx ->
          if l_idx < start_idx then
            err
              "Lemma 16: atomic Block-Update by q%d (ts %s): L=%d before its \
               first scan %d"
              proc (Vts.show ts) l_idx start_idx;
          windows := (proc, ts, l_idx, x_idx) :: !windows;
          (* Lemma 19: returned view = contents of M at L. *)
          let at_l = Array.make m Value.Bot in
          List.iter
            (fun item ->
              match item with
              | U u when u.u_lin < l_idx -> at_l.(u.u_comp) <- u.u_value
              | _ -> ())
            order;
          if not (Array.for_all2 Value.equal at_l view) then
            err
              "Lemma 19: atomic Block-Update by q%d (ts %s): returned view \
               differs from M at L=%d"
              proc (Vts.show ts) l_idx;
          (* Lemma 17: no Scan linearized in (L, X). *)
          List.iter
            (function
              | Aug.Scan_op { proc = sp; end_idx = sidx; _ } ->
                if sidx > l_idx && sidx < x_idx then
                  err
                    "Lemma 17: Scan by q%d linearized at %d inside window \
                     (%d, %d) of q%d"
                    sp sidx l_idx x_idx proc
              | Aug.Bu_op _ -> ())
            log;
          (* Lemma 19: only Updates of non-atomic Block-Updates by other
             processes linearize strictly inside the window. *)
          List.iter
            (fun u ->
              if u.u_lin > l_idx && u.u_lin < x_idx then
                match u.u_kind with
                | Atomic_bu ->
                  err
                    "Lemma 19: update by q%d (atomic BU) linearized at %d \
                     inside window (%d, %d) of q%d"
                    u.u_writer u.u_lin l_idx x_idx proc
                | Yield_bu | Incomplete_bu ->
                  if u.u_writer = proc then
                    err
                      "Lemma 19: update by the window owner q%d linearized \
                       inside its own window (%d, %d)"
                      proc l_idx x_idx)
            updates)
      | Aug.Bu_op _ | Aug.Scan_op _ -> ())
    log;
  (* Lemma 18: windows pairwise disjoint. *)
  let rec pairs = function
    | [] -> ()
    | (p1, t1, l1, x1) :: rest ->
      List.iter
        (fun (p2, t2, l2, x2) ->
          let overlap = l1 < x2 && l2 < x1 in
          if overlap && not (x1 = x2 && p1 = p2 && Vts.equal t1 t2) then
            err "Lemma 18: windows (%d,%d] of q%d and (%d,%d] of q%d intersect"
              l1 x1 p1 l2 x2 p2)
        rest;
      pairs rest
  in
  pairs !windows;

  (* ---- Theorem 20 and Lemma 2. ---- *)
  let triple_appends_between ~lo ~hi ~pred =
    List.filter
      (fun (e : Aug.F.trace_entry) ->
        e.idx > lo && e.idx < hi && Aug.Ops.appends_triples e.op && pred e.pid)
      trace
  in
  List.iter
    (function
      | Aug.Bu_op { proc; ts; start_idx; end_idx; n_ops; result; _ } ->
        if n_ops > 6 then
          err "Lemma 2: Block-Update by q%d took %d > 6 steps" proc n_ops;
        (match result with
        | Aug.Yield ->
          if proc = 0 then
            err "Theorem 20: q0's Block-Update (ts %s) returned Y" (Vts.show ts);
          if
            triple_appends_between ~lo:start_idx ~hi:end_idx ~pred:(fun p ->
                p < proc)
            = []
          then
            err
              "Theorem 20: Block-Update by q%d (ts %s) yielded without a \
               lower-id update in its interval (%d, %d)"
              proc (Vts.show ts) start_idx end_idx
        | Aug.Atomic _ -> ())
      | Aug.Scan_op { proc; start_idx; end_idx; n_ops; _ } ->
        let k =
          List.length
            (triple_appends_between ~lo:start_idx ~hi:end_idx ~pred:(fun p ->
                 p <> proc))
        in
        if n_ops > (2 * k) + 3 then
          err "Lemma 2: Scan by q%d took %d > 2k+3 = %d steps" proc n_ops
            ((2 * k) + 3))
    log;

  let stats =
    {
      n_scans =
        List.length
          (List.filter (function Aug.Scan_op _ -> true | _ -> false) log);
      n_bus =
        List.length (List.filter (function Aug.Bu_op _ -> true | _ -> false) log);
      n_atomic =
        List.length
          (List.filter
             (function
               | Aug.Bu_op { result = Aug.Atomic _; _ } -> true | _ -> false)
             log);
      n_yield =
        List.length
          (List.filter
             (function Aug.Bu_op { result = Aug.Yield; _ } -> true | _ -> false)
             log);
      n_incomplete_bus = !n_incomplete;
      max_scan_ops =
        List.fold_left
          (fun acc -> function Aug.Scan_op { n_ops; _ } -> max acc n_ops | _ -> acc)
          0 log;
      max_bu_ops =
        List.fold_left
          (fun acc -> function Aug.Bu_op { n_ops; _ } -> max acc n_ops | _ -> acc)
          0 log;
    }
  in
  { ok = !errors = []; errors = List.rev !errors; stats }
