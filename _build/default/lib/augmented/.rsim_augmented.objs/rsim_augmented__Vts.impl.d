lib/augmented/vts.ml: Array Format Stdlib String
