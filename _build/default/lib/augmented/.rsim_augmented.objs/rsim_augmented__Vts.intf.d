lib/augmented/vts.mli: Format
