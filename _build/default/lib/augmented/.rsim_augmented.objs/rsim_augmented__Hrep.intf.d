lib/augmented/hrep.mli: Rsim_value Value Vts
