lib/augmented/aug_spec.ml: Array Aug Format Hashtbl Hrep Int List Rsim_value Value Vts
