lib/augmented/aug.ml: Array Fun Hrep Int List Rsim_runtime Rsim_value Value Vts
