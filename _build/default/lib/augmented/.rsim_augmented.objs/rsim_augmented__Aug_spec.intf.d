lib/augmented/aug_spec.mli: Aug Format Hrep Rsim_value Vts
