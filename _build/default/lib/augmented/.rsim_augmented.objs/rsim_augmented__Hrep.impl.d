lib/augmented/hrep.ml: Array List Rsim_value Value Vts
