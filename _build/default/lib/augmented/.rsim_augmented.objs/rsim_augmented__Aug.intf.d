lib/augmented/aug.mli: Hrep Rsim_runtime Rsim_shmem Rsim_value Value Vts
