open Rsim_value

type event = {
  idx : int;
  pid : int;
  action : Proc.action;
  view : Value.t array option;
}

type config = {
  mem : Snapshot.t;
  procs : Proc.t array;
  steps : int array;
  rev_trace : event list;
  next_idx : int;
}

let init ~m procs =
  let procs = Array.of_list procs in
  Array.iteri
    (fun i p ->
      match Proc.violates_assumption1 p with
      | None -> ()
      | Some reason ->
        failwith (Printf.sprintf "Run.init: process %d (%s): %s" i (Proc.name p) reason))
    procs;
  {
    mem = Snapshot.create ~m;
    procs;
    steps = Array.make (Array.length procs) 0;
    rev_trace = [];
    next_idx = 0;
  }

let mem c = c.mem
let proc c pid = c.procs.(pid)
let n_procs c = Array.length c.procs

let live c =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if Proc.is_done c.procs.(i) then acc else i :: acc)
  in
  go (Array.length c.procs - 1) []

let step_counts c = Array.copy c.steps
let trace c = List.rev c.rev_trace

let check_a1 pid p =
  match Proc.violates_assumption1 p with
  | None -> ()
  | Some reason ->
    failwith (Printf.sprintf "process %d (%s): %s" pid (Proc.name p) reason)

let step_pid c pid =
  let p = c.procs.(pid) in
  let action = Proc.poised p in
  let mem', p', view =
    match action with
    | Proc.Scan ->
      let v = Snapshot.scan c.mem in
      (c.mem, Proc.step_scan p v, Some v)
    | Proc.Update (j, v) -> (Snapshot.update c.mem j v, Proc.step_update p, None)
    | Proc.Output _ ->
      invalid_arg (Printf.sprintf "Run.step_pid: process %d already output" pid)
  in
  check_a1 pid p';
  let procs' = Array.copy c.procs in
  procs'.(pid) <- p';
  let steps' = Array.copy c.steps in
  steps'.(pid) <- steps'.(pid) + 1;
  {
    mem = mem';
    procs = procs';
    steps = steps';
    rev_trace = { idx = c.next_idx; pid; action; view } :: c.rev_trace;
    next_idx = c.next_idx + 1;
  }

type outcome = All_done | Step_limit | Schedule_exhausted

let run ?(max_steps = 100_000) ~sched c =
  let rec go c sched budget =
    match live c with
    | [] -> (c, All_done)
    | live_pids ->
      if budget <= 0 then (c, Step_limit)
      else begin
        match Schedule.next sched ~live:live_pids with
        | None -> (c, Schedule_exhausted)
        | Some (pid, sched') -> go (step_pid c pid) sched' (budget - 1)
      end
  in
  go c sched max_steps

let outputs c =
  let acc = ref [] in
  Array.iteri
    (fun pid p ->
      match Proc.output p with
      | Some v -> acc := (pid, v) :: !acc
      | None -> ())
    c.procs;
  List.rev !acc

let solo_terminates ?(max_steps = 100_000) c pid =
  if Proc.is_done c.procs.(pid) then true
  else
    let _, outcome = run ~max_steps ~sched:(Schedule.solo pid) c in
    match outcome with
    | All_done -> true
    | Schedule_exhausted ->
      (* solo schedule exhausts exactly when [pid] has output *)
      true
    | Step_limit -> false

let obstruction_free_from ?(max_steps = 100_000) c ~procs =
  let sched =
    Schedule.fn (fun ~step ~live ->
        let eligible = List.filter (fun p -> List.mem p procs) live in
        match eligible with
        | [] -> None
        | _ -> Some (List.nth eligible (step mod List.length eligible)))
  in
  let c', outcome = run ~max_steps ~sched c in
  match outcome with
  | All_done -> true
  | Schedule_exhausted ->
    (* all of [procs] terminated; others are not scheduled *)
    List.for_all (fun pid -> Proc.is_done c'.procs.(pid)) procs
  | Step_limit -> false
