(** Simulated processes as deterministic state machines.

    This is the paper's §5.1 formalization, specialized to deterministic
    protocols satisfying Assumption 1: every process alternately performs
    [scan] and [update] operations on the shared m-component multi-writer
    snapshot, starting with a [scan], until a scan lets it output a value.

    A process is an immutable value: stepping returns a new process. The
    revisionist simulation depends on this — covering simulators store,
    copy, restore, and locally re-run process states when revising the
    past, which is impossible with opaque mutable state or one-shot
    continuations. *)

open Rsim_value

(** The next step a process is poised to perform. *)
type action =
  | Scan  (** poised to perform a scan of the m-component snapshot *)
  | Update of int * Value.t
      (** [Update (j, v)]: poised to set component [j] to [v] *)
  | Output of Value.t  (** the process has terminated with this output *)

type t

(** [make ~name ~init ~poised ~on_scan ~on_update] builds a process.

    - [poised s] must be [Scan] in the initial state [init].
    - [on_scan s view] is the new state after a scan returning [view].
    - [on_update s] is the new state after the poised update is applied.
    - After [on_scan], [poised] must be [Update _] or [Output _]; after
      [on_update], it must be [Scan] (Assumption 1). The execution engine
      enforces this at runtime. *)
val make :
  name:string ->
  init:'s ->
  poised:('s -> action) ->
  on_scan:('s -> Value.t array -> 's) ->
  on_update:('s -> 's) ->
  t

val name : t -> string
val poised : t -> action

(** [step_scan p view] steps [p], which must be poised to [Scan], feeding
    it the scan result. Raises [Invalid_argument] otherwise. *)
val step_scan : t -> Value.t array -> t

(** [step_update p] steps [p], which must be poised to [Update _].
    Raises [Invalid_argument] otherwise. *)
val step_update : t -> t

val is_done : t -> bool

(** [output p] is the output value if [p] has terminated. *)
val output : t -> Value.t option

(** [violates_assumption1 p] is [Some reason] if the poised action is
    inconsistent with the alternation discipline given the last step kind
    recorded inside [p]. *)
val violates_assumption1 : t -> string option
