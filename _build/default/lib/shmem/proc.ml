open Rsim_value

type action =
  | Scan
  | Update of int * Value.t
  | Output of Value.t

type last_step = Init | Did_scan | Did_update

type t =
  | P : {
      name : string;
      state : 's;
      poised : 's -> action;
      on_scan : 's -> Value.t array -> 's;
      on_update : 's -> 's;
      last : last_step;
    }
      -> t

let make ~name ~init ~poised ~on_scan ~on_update =
  P { name; state = init; poised; on_scan; on_update; last = Init }

let name (P p) = p.name
let poised (P p) = p.poised p.state

let step_scan (P p) view =
  match p.poised p.state with
  | Scan -> P { p with state = p.on_scan p.state view; last = Did_scan }
  | Update _ | Output _ ->
    invalid_arg (Printf.sprintf "Proc.step_scan: %s is not poised to scan" p.name)

let step_update (P p) =
  match p.poised p.state with
  | Update _ -> P { p with state = p.on_update p.state; last = Did_update }
  | Scan | Output _ ->
    invalid_arg (Printf.sprintf "Proc.step_update: %s is not poised to update" p.name)

let is_done p = match poised p with Output _ -> true | Scan | Update _ -> false
let output p = match poised p with Output v -> Some v | Scan | Update _ -> None

let violates_assumption1 (P p as proc) =
  match (p.last, poised proc) with
  | Init, Scan -> None
  | Init, (Update _ | Output _) ->
    Some "process must start poised to scan (Assumption 1)"
  | Did_scan, (Update _ | Output _) -> None
  | Did_scan, Scan -> Some "scan followed by scan (Assumption 1)"
  | Did_update, Scan -> None
  | Did_update, Update _ -> Some "update followed by update (Assumption 1)"
  | Did_update, Output _ -> Some "output decided by an update (Assumption 1)"
