(** Indistinguishability and execution manipulation (§2).

    The paper's configurations-and-executions vocabulary, executable:
    two configurations are indistinguishable to a set of processes P if
    every process in P has the same state in both and the shared memory
    agrees; then any P-only execution applicable at one is applicable at
    the other (the lemma every covering argument leans on). Because
    {!Run.config}s are immutable, these checks and transfers are pure
    functions. *)

type pid_set = int list

(** [indistinguishable c c' ~procs]: same memory contents and, for each
    pid in [procs], the same poised action. Process states are opaque,
    so this is the {e observable} relation — a necessary condition for
    the paper's state equality. [transfer] below re-checks the relation
    {e after} applying a schedule, so any protocol whose hidden state
    diverges despite equal observations is caught at runtime rather than
    silently mis-analyzed. *)
val indistinguishable : Run.config -> Run.config -> procs:pid_set -> bool

(** [steps_of c]: the pid sequence of the execution recorded in [c]. *)
val steps_of : Run.config -> int list

(** [apply_schedule c pids] applies the steps of [pids] in order,
    skipping pids that have already output. *)
val apply_schedule : Run.config -> int list -> Run.config

(** [transfer ~from_ ~to_ ~procs pids]: the transfer lemma, checked at
    runtime. Requires [indistinguishable from_ to_ ~procs] and [pids ⊆
    procs]; applies the schedule to both configurations and checks the
    results are again indistinguishable to [procs], returning both.
    Raises [Invalid_argument] if the premise fails, [Failure] if the
    conclusion fails (which would falsify the model). *)
val transfer :
  from_:Run.config ->
  to_:Run.config ->
  procs:pid_set ->
  int list ->
  Run.config * Run.config

(** Processes covering each component: [covering c j] is the list of
    pids poised to update component [j] (the covering-argument
    primitive). *)
val covering : Run.config -> int -> pid_set

(** A block write: apply the poised updates of [pids] (each must be
    poised to update), in order. Raises if some pid is not poised to
    update. *)
val block_write : Run.config -> pid_set -> Run.config
