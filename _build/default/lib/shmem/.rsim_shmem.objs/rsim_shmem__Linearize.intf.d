lib/shmem/linearize.mli: Rsim_value Value
