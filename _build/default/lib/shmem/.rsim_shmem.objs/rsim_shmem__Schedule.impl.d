lib/shmem/schedule.ml: List Option Prng Rsim_value
