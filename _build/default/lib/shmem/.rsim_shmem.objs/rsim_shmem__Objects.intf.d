lib/shmem/objects.mli: Rsim_value Value
