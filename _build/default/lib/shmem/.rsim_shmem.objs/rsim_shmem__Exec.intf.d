lib/shmem/exec.mli: Run
