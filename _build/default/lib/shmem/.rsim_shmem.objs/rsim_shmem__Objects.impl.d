lib/shmem/objects.ml: Printf Rsim_value Value
