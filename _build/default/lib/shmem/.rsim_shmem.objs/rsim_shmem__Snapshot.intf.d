lib/shmem/snapshot.mli: Format Rsim_value Value
