lib/shmem/schedule.mli:
