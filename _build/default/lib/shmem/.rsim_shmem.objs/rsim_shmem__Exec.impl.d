lib/shmem/exec.ml: Fun List Printf Proc Rsim_value Run Snapshot
