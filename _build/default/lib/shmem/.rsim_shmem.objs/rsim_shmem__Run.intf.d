lib/shmem/run.mli: Proc Rsim_value Schedule Snapshot Value
