lib/shmem/linearize.ml: List Option Rsim_value Value
