lib/shmem/snapshot.ml: Array Format Printf Rsim_value Value
