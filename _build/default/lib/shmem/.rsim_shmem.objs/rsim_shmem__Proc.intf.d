lib/shmem/proc.mli: Rsim_value Value
