lib/shmem/proc.ml: Printf Rsim_value Value
