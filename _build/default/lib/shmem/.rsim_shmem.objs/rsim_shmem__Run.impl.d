lib/shmem/run.ml: Array List Printf Proc Rsim_value Schedule Snapshot Value
