(** Sequential specifications of the base objects of §5.

    Used by the nondeterministic-protocol machinery (§5.2–§5.3): an
    m-component object supports [Scan] plus per-component operations
    drawn from one of these kinds. Each kind is given by a pure
    transition function on component values. *)

open Rsim_value

type kind =
  | Register  (** write / read *)
  | Max_register  (** write-max / read *)
  | Fetch_and_increment
  | Swap
  | Compare_and_swap

type op =
  | Read
  | Write of Value.t
  | Write_max of Value.t  (** keeps the lexicographic maximum *)
  | Fetch_inc  (** adds 1 to an [Int] component, returns the old value *)
  | Swap_write of Value.t  (** writes, returns the old value *)
  | Cas of { expected : Value.t; desired : Value.t }
      (** returns [Bool true] and installs [desired] iff current =
          [expected] *)

val op_name : op -> string

(** Which operations a kind supports (all kinds support [Read]). *)
val supports : kind -> op -> bool

(** [apply kind v op] is [Ok (v', response)]: the new component value and
    the operation's response. [Error] if the kind does not support [op]
    or the value has the wrong shape (e.g. [Fetch_inc] on a non-[Int]). *)
val apply : kind -> Value.t -> op -> (Value.t * Value.t, string) result

(** Initial value for a component of this kind ([Int 0] for
    fetch-and-increment, ⊥ otherwise). *)
val initial : kind -> Value.t

(** Whether a history of this kind's operations can exhibit ABA:
    registers and swap/CAS can revisit old values; max-registers and
    fetch-and-increment cannot (§5.3). *)
val can_aba : kind -> bool
