open Rsim_value

type t = { next : live:int list -> (int * t) option }

let next t ~live = if live = [] then None else t.next ~live

let round_robin =
  let rec make last =
    { next =
        (fun ~live ->
          (* First live pid strictly greater than [last], else wrap. *)
          let candidate =
            match List.find_opt (fun p -> p > last) live with
            | Some p -> p
            | None -> List.hd live
          in
          Some (candidate, make candidate));
    }
  in
  make (-1)

let solo pid =
  let rec t =
    { next = (fun ~live -> if List.mem pid live then Some (pid, t) else None) }
  in
  t

let script pids =
  let rec make = function
    | [] -> { next = (fun ~live:_ -> None) }
    | pid :: rest ->
      { next =
          (fun ~live ->
            if List.mem pid live then Some (pid, make rest)
            else (make rest).next ~live);
      }
  in
  make pids

let random ~seed =
  let rec make rng =
    { next =
        (fun ~live ->
          let pid, rng' = Prng.choose rng live in
          Some (pid, make rng'));
    }
  in
  make (Prng.make seed)

let among ~procs ~seed =
  let rec make rng =
    { next =
        (fun ~live ->
          match List.filter (fun p -> List.mem p procs) live with
          | [] -> None
          | eligible ->
            let pid, rng' = Prng.choose rng eligible in
            Some (pid, make rng'));
    }
  in
  make (Prng.make seed)

let phased ~prefix_len ~prefix ~suffix =
  let rec make k prefix =
    if k <= 0 then suffix
    else
      { next =
          (fun ~live ->
            match prefix.next ~live with
            | Some (pid, prefix') -> Some (pid, make (k - 1) prefix')
            | None -> suffix.next ~live);
      }
  in
  make prefix_len prefix

let with_crashes crashes t =
  (* counts: association list pid -> steps taken so far. *)
  let rec make counts t =
    { next =
        (fun ~live ->
          let alive =
            List.filter
              (fun pid ->
                match List.assoc_opt pid crashes with
                | None -> true
                | Some limit ->
                  let taken =
                    Option.value ~default:0 (List.assoc_opt pid counts)
                  in
                  taken < limit)
              live
          in
          if alive = [] then None
          else
            match t.next ~live:alive with
            | None -> None
            | Some (pid, t') ->
              let taken = Option.value ~default:0 (List.assoc_opt pid counts) in
              let counts' = (pid, taken + 1) :: List.remove_assoc pid counts in
              Some (pid, make counts' t'));
    }
  in
  make [] t

let fn f =
  let rec make step =
    { next =
        (fun ~live ->
          match f ~step ~live with
          | None -> None
          | Some pid ->
            if List.mem pid live then Some (pid, make (step + 1)) else None);
    }
  in
  make 0
