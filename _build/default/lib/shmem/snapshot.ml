open Rsim_value

type t = Value.t array
(* Invariant: never mutated after creation; [update] copies. The arrays
   are small (m components), so copy-on-write is cheap and keeps the
   structure persistent. *)

let create ~m =
  if m <= 0 then invalid_arg "Snapshot.create: m must be positive";
  Array.make m Value.Bot

let size = Array.length

let update t j v =
  if j < 0 || j >= Array.length t then
    invalid_arg (Printf.sprintf "Snapshot.update: component %d out of range" j);
  let t' = Array.copy t in
  t'.(j) <- v;
  t'

let scan t = Array.copy t
let get t j = t.(j)
let of_view view = Array.copy view

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Value.equal a b

let pp fmt t =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       Value.pp)
    t
