open Rsim_value

type kind =
  | Register
  | Max_register
  | Fetch_and_increment
  | Swap
  | Compare_and_swap

type op =
  | Read
  | Write of Value.t
  | Write_max of Value.t
  | Fetch_inc
  | Swap_write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }

let op_name = function
  | Read -> "read"
  | Write _ -> "write"
  | Write_max _ -> "write_max"
  | Fetch_inc -> "fetch_inc"
  | Swap_write _ -> "swap"
  | Cas _ -> "cas"

let supports kind op =
  match (kind, op) with
  | _, Read -> true
  | Register, Write _ -> true
  | Max_register, Write_max _ -> true
  | Fetch_and_increment, Fetch_inc -> true
  | Swap, Swap_write _ -> true
  | Compare_and_swap, Cas _ -> true
  | (Register | Max_register | Fetch_and_increment | Swap | Compare_and_swap), _ ->
    false

let apply kind v op =
  if not (supports kind op) then
    Error (Printf.sprintf "object kind does not support %s" (op_name op))
  else
    match op with
    | Read -> Ok (v, v)
    | Write w -> Ok (w, Value.Bot)
    | Write_max w -> Ok (Value.max_value v w, Value.Bot)
    | Fetch_inc -> (
      match v with
      | Value.Int n -> Ok (Value.Int (n + 1), Value.Int n)
      | _ -> Error "fetch_inc on a non-Int component")
    | Swap_write w -> Ok (w, v)
    | Cas { expected; desired } ->
      if Value.equal v expected then Ok (desired, Value.Bool true)
      else Ok (v, Value.Bool false)

let initial = function
  | Fetch_and_increment -> Value.Int 0
  | Register | Max_register | Swap | Compare_and_swap -> Value.Bot

let can_aba = function
  | Register | Swap | Compare_and_swap -> true
  | Max_register | Fetch_and_increment -> false
