(** Execution engine for the simulated system.

    Runs a set of {!Proc} state machines over one {!Snapshot} under a
    {!Schedule}, recording the execution. Configurations are immutable,
    so executions can be branched (used by obstruction-freedom tests:
    from any reachable configuration, run a solo suffix). *)

open Rsim_value

type event = {
  idx : int;  (** global step index, starting at 0 *)
  pid : int;
  action : Proc.action;  (** the step performed *)
  view : Value.t array option;  (** scan result, for [Scan] steps *)
}

type config

(** [init ~m procs] is the initial configuration: snapshot of [m]
    components all ⊥, processes in their initial states. *)
val init : m:int -> Proc.t list -> config

val mem : config -> Snapshot.t
val proc : config -> int -> Proc.t
val n_procs : config -> int

(** Pids of processes that have not yet output. *)
val live : config -> int list

(** Steps taken by each process so far. *)
val step_counts : config -> int array

(** Events so far, in execution order. *)
val trace : config -> event list

(** [step_pid c pid] applies the next step of [pid] (a scan or an
    update). Raises [Invalid_argument] if [pid] has already output, or
    [Failure] if the process violates Assumption 1. *)
val step_pid : config -> int -> config

type outcome =
  | All_done  (** every process output a value *)
  | Step_limit  (** [max_steps] reached *)
  | Schedule_exhausted  (** the scheduler refused to continue *)

(** [run ?max_steps ~sched c] drives [c] until all processes output, the
    step budget is exhausted, or the schedule ends. *)
val run : ?max_steps:int -> sched:Schedule.t -> config -> config * outcome

(** [(pid, output)] for every terminated process, ascending pid. *)
val outputs : config -> (int * Value.t) list

(** [solo_terminates ?max_steps c pid] runs [pid] solo from [c]; [true]
    iff it outputs within the budget. The building block of
    obstruction-freedom checks. *)
val solo_terminates : ?max_steps:int -> config -> int -> bool

(** [obstruction_free_from ?max_steps c ~procs] runs only [procs] (an
    x-obstruction suffix, scheduled round-robin) and reports whether all
    of them terminate within the budget. *)
val obstruction_free_from : ?max_steps:int -> config -> procs:int list -> bool
