(** Immutable m-component multi-writer snapshot object.

    The shared object of the simulated system (§2.1). [update] is
    persistent: it returns a new snapshot, so configurations can be
    copied, compared, and branched freely by the execution engine and by
    the covering simulators' local simulations. *)

open Rsim_value

type t

(** [create ~m] is a snapshot with [m] components, all [Value.Bot]. *)
val create : m:int -> t

val size : t -> int

(** [update t j v] sets component [j] (0-based) to [v].
    Raises [Invalid_argument] if [j] is out of range. *)
val update : t -> int -> Value.t -> t

(** [scan t] is a fresh array of the current component values. *)
val scan : t -> Value.t array

(** [get t j] is component [j]. *)
val get : t -> int -> Value.t

(** [of_view view] builds a snapshot whose contents equal [view]. Used by
    covering simulators to locally simulate against a returned view. *)
val of_view : Value.t array -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
