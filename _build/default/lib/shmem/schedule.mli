(** Schedulers (adversaries) for asynchronous executions.

    A scheduler repeatedly picks which live process takes the next step.
    Schedulers are pure values: [next] threads the scheduler state, so a
    given scheduler + seed always produces the same execution. They are
    shared by the simulated-system engine ({!Run}) and by the real-system
    fiber runtime. *)

type t

(** [next t ~live] picks a pid among [live] (non-empty, sorted ascending)
    or returns [None] if the schedule is exhausted / refuses to schedule. *)
val next : t -> live:int list -> (int * t) option

(** Cycle through live processes in pid order. *)
val round_robin : t

(** Only ever schedule [pid]; exhausts when [pid] is not live. *)
val solo : int -> t

(** Follow a fixed pid script, skipping entries that are not live;
    exhausts at end of script. *)
val script : int list -> t

(** Uniformly random live process each step. *)
val random : seed:int -> t

(** Random schedule over a fixed set of processes (an x-obstruction
    adversary suffix: only processes in [procs] take steps). *)
val among : procs:int list -> seed:int -> t

(** [phased ~prefix_len ~prefix ~suffix]: run [prefix] for [prefix_len]
    steps, then [suffix]. The standard shape of obstruction-freedom
    tests: adversarial prefix, then P-only suffix. *)
val phased : prefix_len:int -> prefix:t -> suffix:t -> t

(** [with_crashes crashes t]: like [t], but process [pid] is removed from
    the live set after it has taken [steps] steps, for each
    [(pid, steps)] in [crashes]. *)
val with_crashes : (int * int) list -> t -> t

(** Fully custom scheduler. The function receives the global step index
    and the live set. *)
val fn : (step:int -> live:int list -> int option) -> t
