type pid_set = int list

let same_poised a b =
  match (a, b) with
  | Proc.Scan, Proc.Scan -> true
  | Proc.Update (j, v), Proc.Update (j', v') ->
    j = j' && Rsim_value.Value.equal v v'
  | Proc.Output v, Proc.Output v' -> Rsim_value.Value.equal v v'
  | (Proc.Scan | Proc.Update _ | Proc.Output _), _ -> false

let indistinguishable c c' ~procs =
  Snapshot.equal (Run.mem c) (Run.mem c')
  && List.for_all
       (fun pid -> same_poised (Proc.poised (Run.proc c pid)) (Proc.poised (Run.proc c' pid)))
       procs

let steps_of c = List.map (fun (e : Run.event) -> e.pid) (Run.trace c)

let apply_schedule c pids =
  List.fold_left
    (fun c pid ->
      if Proc.is_done (Run.proc c pid) then c else Run.step_pid c pid)
    c pids

let transfer ~from_ ~to_ ~procs pids =
  if not (indistinguishable from_ to_ ~procs) then
    invalid_arg "Exec.transfer: configurations distinguishable to procs";
  if List.exists (fun p -> not (List.mem p procs)) pids then
    invalid_arg "Exec.transfer: schedule mentions processes outside procs";
  let a = apply_schedule from_ pids in
  let b = apply_schedule to_ pids in
  if not (indistinguishable a b ~procs) then
    failwith "Exec.transfer: indistinguishability was not preserved";
  (a, b)

let covering c j =
  List.filter
    (fun pid ->
      match Proc.poised (Run.proc c pid) with
      | Proc.Update (j', _) -> j = j'
      | Proc.Scan | Proc.Output _ -> false)
    (List.init (Run.n_procs c) Fun.id)

let block_write c pids =
  List.fold_left
    (fun c pid ->
      match Proc.poised (Run.proc c pid) with
      | Proc.Update _ -> Run.step_pid c pid
      | Proc.Scan | Proc.Output _ ->
        invalid_arg
          (Printf.sprintf "Exec.block_write: process %d is not covering" pid))
    c pids
