(** ABA-freedom (§5.3, Corollary 36).

    A protocol is ABA-free if no component ever returns to an earlier
    value after holding a different one. Registers can be made ABA-free
    by tagging every write with the writer's identity and a strictly
    increasing sequence number (ignored by reads); max-registers and
    fetch-and-increment objects are ABA-free by construction.

    This module detects ABA patterns in executed runs: it replays a
    {!Mrun} trace to obtain each component's value history and searches
    it for a [v … w … v] pattern ([w ≠ v]). *)

open Rsim_value

(** Whether a value sequence exhibits ABA. *)
val has_aba : Value.t list -> bool

(** Value history of every component along a run (including initial
    values), oldest first. *)
val component_histories : Mrun.config -> Value.t list array

(** [check run] is [Ok ()] if no component of the finished run exhibits
    ABA, [Error msg] naming the first offending component otherwise. *)
val check : Mrun.config -> (unit, string) result
