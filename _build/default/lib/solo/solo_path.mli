(** Shortest solo paths (§5.2).

    A p-solo path from a composite configuration [(state, E_p)] is an
    execution in which every response is the one determined by [E_p]
    (i.e. no other process takes steps), ending in a final state. BFS
    over the composite graph finds the shortest one; Theorem 35's
    derandomized protocol always steps to a successor that decreases
    this length by one. *)

open Rsim_value

(** [shortest nd ~state ~ep ~cap] is the length (number of steps) of a
    shortest solo path from [(state, ep)], or [None] if none exists
    within [cap] explored nodes / depth. *)
val shortest : Ndproto.t -> state:Value.t -> ep:Value.t array -> cap:int -> int option

(** The first step of some shortest solo path, together with the
    successor state chosen (minimal in the state order among those on
    shortest paths). [None] if the state is final or no path exists. *)
val first_move :
  Ndproto.t ->
  state:Value.t ->
  ep:Value.t array ->
  cap:int ->
  (Ndproto.step * Value.t) option
