open Rsim_value

(* BFS over composite nodes (state, ep). Keys are the structural values,
   so visited-set lookups are exact. *)

type node = { state : Value.t; ep : Value.t array }

let key n = (n.state, Array.to_list n.ep)

let children nd n =
  match nd.Ndproto.view n.state with
  | `Output _ -> []
  | `Step step ->
    let response = Ndproto.expected_response nd ~ep:n.ep step in
    let ep' = Ndproto.update_ep nd ~ep:n.ep step ~response in
    List.map
      (fun s' -> (step, { state = s'; ep = ep' }))
      (Ndproto.successors nd n.state response)

let is_final nd n =
  match nd.Ndproto.view n.state with `Output _ -> true | `Step _ -> false

let bfs nd ~state ~ep ~cap =
  let start = { state; ep } in
  if is_final nd start then `Final
  else begin
    let visited = Hashtbl.create 64 in
    Hashtbl.replace visited (key start) ();
    let q = Queue.create () in
    Queue.push (start, 0) q;
    let explored = ref 0 in
    let result = ref `No_path in
    (try
       while not (Queue.is_empty q) do
         let n, depth = Queue.pop q in
         incr explored;
         if !explored > cap then raise Exit;
         List.iter
           (fun (step, child) ->
             if is_final nd child then begin
               result := `Found (depth + 1, step, child);
               raise Exit
             end;
             if not (Hashtbl.mem visited (key child)) then begin
               Hashtbl.replace visited (key child) ();
               Queue.push (child, depth + 1) q
             end)
           (children nd n)
       done
     with Exit -> ());
    !result
  end

(* BFS finds some shortest path, but [first_move] must pick the minimal
   first successor among shortest paths (the paper's "first state s'
   such that there is a shortest p-solo path that begins with s, a, s'").
   We compute the shortest length from each immediate successor and take
   the order-minimal argmin. *)

let shortest nd ~state ~ep ~cap =
  match bfs nd ~state ~ep ~cap with
  | `Final -> Some 0
  | `Found (d, _, _) -> Some d
  | `No_path -> None

let first_move nd ~state ~ep ~cap =
  match nd.Ndproto.view state with
  | `Output _ -> None
  | `Step step -> (
    let response = Ndproto.expected_response nd ~ep step in
    let ep' = Ndproto.update_ep nd ~ep step ~response in
    let succ = Ndproto.successors nd state response in
    let best =
      List.fold_left
        (fun acc s' ->
          match shortest nd ~state:s' ~ep:ep' ~cap with
          | None -> acc
          | Some d -> (
            match acc with
            | Some (dbest, _) when dbest <= d -> acc
            | _ -> Some (d, s')))
        None succ
    in
    match best with Some (_, s') -> Some (step, s') | None -> None)
