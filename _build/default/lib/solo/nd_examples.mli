(** Example nondeterministic solo-terminating protocols (§5 inputs).

    These are the protocols fed to {!Derandomize.convert} in tests,
    examples, and benchmarks. *)


(** Two-process nondeterministic ("coin-flip") consensus on two
    single-writer registers: a process writes its value, scans, decides
    if the registers agree (or the other is silent), and otherwise
    nondeterministically keeps or adopts the other's value before
    retrying. Nondeterministic solo termination: adopting always leads a
    solo run to a decision. Agreement holds in {e every} execution;
    only termination relies on the choices.

    [tagged] makes every write carry a [(writer, seqno)] tag (ignored by
    reads), the ABA-freedom transformation of §5.3. *)
val coin_consensus : ?tagged:bool -> me:int -> unit -> Ndproto.t

(** One fetch-and-increment component: a process grabs a ticket and then
    nondeterministically decides it or grabs another. Solo termination
    is immediate (deciding is always enabled); the derandomized protocol
    decides its first ticket. Outputs are distinct across processes. *)
val ticket : Ndproto.t

(** A protocol that is NOT nondeterministic solo terminating: it loops
    writing forever with no deciding branch. Used for failure-injection
    tests (solo-path search must report no path). *)
val hopeless : Ndproto.t
