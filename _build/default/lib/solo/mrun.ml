open Rsim_value
open Rsim_shmem

type event = { idx : int; pid : int; step : Ndproto.step; response : Value.t }

type config = {
  kinds : Objects.kind array;
  mem : Value.t array;
  procs : Derandomize.t array;
  steps : int array;
  rev_trace : event list;
  next_idx : int;
}

let init procs =
  match procs with
  | [] -> invalid_arg "Mrun.init: no processes"
  | p0 :: rest ->
    let nd0 = Derandomize.nd p0 in
    List.iter
      (fun p ->
        let nd = Derandomize.nd p in
        if nd.Ndproto.m <> nd0.Ndproto.m || nd.Ndproto.kinds <> nd0.Ndproto.kinds
        then invalid_arg "Mrun.init: processes disagree on the shared object")
      rest;
    {
      kinds = nd0.Ndproto.kinds;
      mem = Array.map Objects.initial nd0.Ndproto.kinds;
      procs = Array.of_list procs;
      steps = Array.make (List.length procs) 0;
      rev_trace = [];
      next_idx = 0;
    }

let mem c = Array.copy c.mem
let proc c pid = c.procs.(pid)

let live c =
  List.filter
    (fun pid ->
      match Derandomize.poised c.procs.(pid) with
      | `Step _ -> true
      | `Output _ -> false)
    (List.init (Array.length c.procs) Fun.id)

let trace c = List.rev c.rev_trace
let step_counts c = Array.copy c.steps

let step_pid c pid =
  match Derandomize.poised c.procs.(pid) with
  | `Output _ -> invalid_arg "Mrun.step_pid: process already output"
  | `Step step ->
    let mem', response =
      match step with
      | Ndproto.Nscan -> (c.mem, Ndproto.view_of_ep c.mem)
      | Ndproto.Nop (j, op) -> (
        match Objects.apply c.kinds.(j) c.mem.(j) op with
        | Ok (v', resp) ->
          let mem' = Array.copy c.mem in
          mem'.(j) <- v';
          (mem', resp)
        | Error e -> failwith ("Mrun.step_pid: " ^ e))
    in
    let procs' = Array.copy c.procs in
    procs'.(pid) <- Derandomize.advance c.procs.(pid) ~response;
    let steps' = Array.copy c.steps in
    steps'.(pid) <- steps'.(pid) + 1;
    {
      c with
      mem = mem';
      procs = procs';
      steps = steps';
      rev_trace = { idx = c.next_idx; pid; step; response } :: c.rev_trace;
      next_idx = c.next_idx + 1;
    }

type outcome = All_done | Step_limit | Schedule_exhausted

let run ?(max_steps = 100_000) ~sched c =
  let rec go c sched budget =
    match live c with
    | [] -> (c, All_done)
    | live_pids ->
      if budget <= 0 then (c, Step_limit)
      else begin
        match Schedule.next sched ~live:live_pids with
        | None -> (c, Schedule_exhausted)
        | Some (pid, sched') -> go (step_pid c pid) sched' (budget - 1)
      end
  in
  go c sched max_steps

let outputs c =
  List.filter_map
    (fun pid ->
      match Derandomize.poised c.procs.(pid) with
      | `Output v -> Some (pid, v)
      | `Step _ -> None)
    (List.init (Array.length c.procs) Fun.id)

let solo_terminates ?(max_steps = 100_000) c pid =
  match Derandomize.poised c.procs.(pid) with
  | `Output _ -> true
  | `Step _ -> (
    let c', outcome = run ~max_steps ~sched:(Schedule.solo pid) c in
    match outcome with
    | All_done | Schedule_exhausted ->
      (match Derandomize.poised c'.procs.(pid) with
      | `Output _ -> true
      | `Step _ -> false)
    | Step_limit -> false)
