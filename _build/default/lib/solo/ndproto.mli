(** Nondeterministic protocols over one m-component object (§5.1–§5.2).

    A protocol specifies, for each process, a nondeterministic state
    machine [(S, ν, δ, I, F)]: [view] gives the next step ν (or the
    output, for final states), and [delta] maps a non-final state and the
    response of its step to a {e non-empty} list of successor states.
    States are {!Rsim_value.Value.t}s; the total order on states required
    by Theorem 35's construction is [Value.compare].

    Following §5.2, each process conceptually stores a vector [E_p] — the
    contents it expects a scan to return if no other process has taken
    steps since its last scan. The framework maintains [E_p] outside the
    user state: ops are simulated on it with the sequential object
    semantics, scans overwrite it with the real response. *)

open Rsim_value

type step =
  | Nscan  (** scan of all m components; response is [Value.List …] *)
  | Nop of int * Rsim_shmem.Objects.op  (** operation on one component *)

type t = {
  name : string;
  m : int;
  kinds : Rsim_shmem.Objects.kind array;  (** per-component object kind *)
  init : Value.t -> Value.t;  (** input ↦ initial state *)
  view : Value.t -> [ `Step of step | `Output of Value.t ];
  delta : Value.t -> Value.t -> Value.t list;
      (** state, response ↦ non-empty successor candidates *)
}

(** Initial expected contents (each component's initial value). *)
val initial_ep : t -> Value.t array

(** Encode an m-vector as a scan response. *)
val view_of_ep : Value.t array -> Value.t

(** The response [step] would return if executed against [ep] (the solo
    assumption). Raises [Failure] if the op is unsupported. *)
val expected_response : t -> ep:Value.t array -> step -> Value.t

(** [E_p] after performing [step] whose {e real} response was
    [response]: scans adopt the response; component ops are simulated on
    [ep]. *)
val update_ep : t -> ep:Value.t array -> step -> response:Value.t -> Value.t array

(** Successors of [state] under [response], sorted by the state order
    (deduplicated). Raises [Failure] if [delta] returns an empty list. *)
val successors : t -> Value.t -> Value.t -> Value.t list
