(** Theorem 35: nondeterministic solo termination ⇒ obstruction-freedom.

    [convert] turns a nondeterministic solo-terminating protocol into a
    {e deterministic} protocol over the same m-component object by fixing
    the transition relation: when the observed response [a] equals the
    response a solo run would get (the process "is alone as far as it can
    tell"), [δ'(s, a)] is the first successor state lying on a shortest
    solo path; otherwise it is the first successor in the state order.
    Every execution of the converted protocol is an execution of the
    original (δ' ⊆ δ), and along any solo run the shortest-solo-path
    length decreases by one per step, so the converted protocol is
    obstruction-free. *)

open Rsim_value

type t

(** [convert nd ~cap ~input]: [cap] bounds each solo-path search (nodes
    explored); it must exceed the protocol's longest shortest-solo-path.
    The converted process starts in [nd.init input] with the initial
    expected contents. *)
val convert : Ndproto.t -> cap:int -> input:Value.t -> t

val nd : t -> Ndproto.t
val state : t -> Value.t
val expected : t -> Value.t array

(** The deterministic process's next step, or its output. *)
val poised : t -> [ `Step of Ndproto.step | `Output of Value.t ]

(** Apply δ' for the observed [response] of the poised step. Raises
    [Invalid_argument] on a final state. *)
val advance : t -> response:Value.t -> t

(** Length of the shortest solo path from the current composite state
    ([Some 0] iff final); the quantity Theorem 35's proof shows is
    strictly decreasing along solo runs. *)
val solo_distance : t -> int option
