open Rsim_value

type t = {
  nd : Ndproto.t;
  state : Value.t;
  ep : Value.t array;
  cap : int;
}

let convert nd ~cap ~input =
  { nd; state = nd.Ndproto.init input; ep = Ndproto.initial_ep nd; cap }

let nd t = t.nd
let state t = t.state
let expected t = Array.copy t.ep
let poised t = t.nd.Ndproto.view t.state

let advance t ~response =
  match poised t with
  | `Output _ -> invalid_arg "Derandomize.advance: process already output"
  | `Step step ->
    let expected_resp = Ndproto.expected_response t.nd ~ep:t.ep step in
    let ep' = Ndproto.update_ep t.nd ~ep:t.ep step ~response in
    let succ = Ndproto.successors t.nd t.state response in
    let fallback () =
      match succ with s :: _ -> s | [] -> assert false
    in
    let state' =
      if Value.equal response expected_resp then begin
        (* Choose the order-first successor on a shortest solo path. *)
        let best =
          List.fold_left
            (fun acc s' ->
              match Solo_path.shortest t.nd ~state:s' ~ep:ep' ~cap:t.cap with
              | None -> acc
              | Some d -> (
                match acc with
                | Some (dbest, _) when dbest <= d -> acc
                | _ -> Some (d, s')))
            None succ
        in
        match best with Some (_, s') -> s' | None -> fallback ()
      end
      else fallback ()
    in
    { t with state = state'; ep = ep' }

let solo_distance t =
  Solo_path.shortest t.nd ~state:t.state ~ep:t.ep ~cap:t.cap
