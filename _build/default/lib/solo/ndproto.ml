open Rsim_value
open Rsim_shmem

type step = Nscan | Nop of int * Objects.op

type t = {
  name : string;
  m : int;
  kinds : Objects.kind array;
  init : Value.t -> Value.t;
  view : Value.t -> [ `Step of step | `Output of Value.t ];
  delta : Value.t -> Value.t -> Value.t list;
}

let initial_ep t = Array.map Objects.initial t.kinds
let view_of_ep ep = Value.List (Array.to_list ep)

let apply_op t ~ep j op =
  if j < 0 || j >= t.m then failwith "Ndproto: component out of range";
  match Objects.apply t.kinds.(j) ep.(j) op with
  | Ok (v', resp) -> (v', resp)
  | Error e -> failwith ("Ndproto: " ^ e)

let expected_response t ~ep = function
  | Nscan -> view_of_ep ep
  | Nop (j, op) -> snd (apply_op t ~ep j op)

let update_ep t ~ep step ~response =
  match step with
  | Nscan -> (
    match response with
    | Value.List vs when List.length vs = t.m -> Array.of_list vs
    | _ -> failwith "Ndproto: malformed scan response")
  | Nop (j, op) ->
    let ep' = Array.copy ep in
    ep'.(j) <- fst (apply_op t ~ep j op);
    ep'

let successors t state response =
  match t.delta state response with
  | [] ->
    failwith
      (Printf.sprintf "Ndproto %s: delta returned no successors" t.name)
  | ss -> List.sort_uniq Value.compare ss
