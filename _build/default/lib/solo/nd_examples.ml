open Rsim_value
open Rsim_shmem

let str s = Value.Str s
let pair a b = Value.Pair (a, b)

(* ---- coin consensus ---- *)

(* States: ("w", v) poised to write; ("s", v) poised to scan;
   ("d", v) final. [seq] tracks the per-process write counter in the
   tagged variant: states carry (v, seq). *)

let coin_consensus ?(tagged = false) ~me () =
  if me <> 0 && me <> 1 then invalid_arg "coin_consensus: me must be 0 or 1";
  let other = 1 - me in
  let mk phase v seq = pair (str phase) (pair v (Value.Int seq)) in
  let parse state =
    match state with
    | Value.Pair (Value.Str phase, Value.Pair (v, Value.Int seq)) ->
      (phase, v, seq)
    | _ -> failwith "coin_consensus: malformed state"
  in
  let tag v seq = if tagged then pair v (pair (Value.Int me) (Value.Int seq)) else v in
  let untag cell =
    if tagged then
      match cell with
      | Value.Pair (v, Value.Pair (Value.Int _, Value.Int _)) -> v
      | other -> other
    else cell
  in
  let view state =
    match parse state with
    | "w", v, seq -> `Step (Ndproto.Nop (me, Objects.Write (tag v seq)))
    | "s", _, _ -> `Step Ndproto.Nscan
    | "d", v, _ -> `Output v
    | _ -> failwith "coin_consensus: unknown phase"
  in
  let delta state response =
    match parse state with
    | "w", v, seq -> [ mk "s" v seq ]
    | "s", v, seq -> (
      match response with
      | Value.List cells -> (
        let theirs = untag (List.nth cells other) in
        match theirs with
        | Value.Bot -> [ mk "d" v seq ]
        | u when Value.equal u v -> [ mk "d" v seq ]
        | u -> [ mk "w" v (seq + 1); mk "w" u (seq + 1) ])
      | _ -> failwith "coin_consensus: bad scan response")
    | _ -> failwith "coin_consensus: no transition from a final state"
  in
  {
    Ndproto.name = Printf.sprintf "coin-consensus-%d%s" me (if tagged then "-tagged" else "");
    m = 2;
    kinds = [| Objects.Register; Objects.Register |];
    init = (fun input -> mk "w" input 0);
    view;
    delta;
  }

(* ---- ticket ---- *)

let ticket =
  (* State encodings sort so that deciding states come first in the
     total order on states: Theorem 35's fallback transition ("the first
     state in δ(s, a)") then prefers deciding over regrabbing when the
     scan response differs from the expectation. *)
  let start = pair (str "start") Value.Bot in
  let view state =
    match state with
    | Value.Pair (Value.Str "start", Value.Bot) ->
      `Step (Ndproto.Nop (0, Objects.Fetch_inc))
    | Value.Pair (Value.Str "maybe", Value.Int _) -> `Step Ndproto.Nscan
    | Value.Pair (Value.Str "d", Value.Int t) -> `Output (Value.Int t)
    | _ -> failwith "ticket: malformed state"
  in
  let delta state response =
    match (state, response) with
    | Value.Pair (Value.Str "start", Value.Bot), Value.Int t ->
      [ pair (str "maybe") (Value.Int t) ]
    | Value.Pair (Value.Str "maybe", Value.Int t), _ ->
      [ pair (str "d") (Value.Int t); start ]
    | _ -> failwith "ticket: no transition"
  in
  {
    Ndproto.name = "ticket";
    m = 1;
    kinds = [| Objects.Fetch_and_increment |];
    init = (fun _ -> start);
    view;
    delta;
  }

(* ---- hopeless ---- *)

let hopeless =
  let view state =
    match state with
    | Value.Int k -> `Step (Ndproto.Nop (0, Objects.Write (Value.Int k)))
    | _ -> failwith "hopeless: malformed state"
  in
  let delta state _ =
    match state with
    | Value.Int k -> [ Value.Int (k + 1) ]
    | _ -> failwith "hopeless: no transition"
  in
  {
    Ndproto.name = "hopeless";
    m = 1;
    kinds = [| Objects.Register |];
    init = (fun _ -> Value.Int 0);
    view;
    delta;
  }
