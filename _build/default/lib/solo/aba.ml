open Rsim_value
open Rsim_shmem

let has_aba vs =
  (* v ... w ... v with w <> v: for each position, does the value recur
     after an intervening different value? *)
  let arr = Array.of_list vs in
  let n = Array.length arr in
  let rec outer i =
    if i >= n then false
    else begin
      let rec mid j saw_diff =
        if j >= n then false
        else if Value.equal arr.(j) arr.(i) then
          if saw_diff then true else mid (j + 1) saw_diff
        else mid (j + 1) true
      in
      if mid (i + 1) false then true else outer (i + 1)
    end
  in
  outer 0

let component_histories run =
  let nd0 = Derandomize.nd (Mrun.proc run 0) in
  let kinds = nd0.Ndproto.kinds in
  let mem = Array.map Objects.initial kinds in
  let hists = Array.map (fun v -> ref [ v ]) mem in
  List.iter
    (fun (e : Mrun.event) ->
      match e.step with
      | Ndproto.Nscan -> ()
      | Ndproto.Nop (j, op) -> (
        match Objects.apply kinds.(j) mem.(j) op with
        | Ok (v', _) ->
          if not (Value.equal v' mem.(j)) then hists.(j) := v' :: !(hists.(j));
          mem.(j) <- v'
        | Error e -> failwith ("Aba.component_histories: " ^ e)))
    (Mrun.trace run);
  Array.map (fun r -> List.rev !r) hists

let check run =
  let hists = component_histories run in
  let rec go j =
    if j >= Array.length hists then Ok ()
    else if has_aba hists.(j) then
      Error (Printf.sprintf "component %d exhibits ABA" j)
    else go (j + 1)
  in
  go 0
