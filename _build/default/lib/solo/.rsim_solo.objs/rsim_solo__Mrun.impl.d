lib/solo/mrun.ml: Array Derandomize Fun List Ndproto Objects Rsim_shmem Rsim_value Schedule Value
