lib/solo/derandomize.mli: Ndproto Rsim_value Value
