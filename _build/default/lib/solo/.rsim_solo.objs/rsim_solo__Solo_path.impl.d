lib/solo/solo_path.ml: Array Hashtbl List Ndproto Queue Rsim_value Value
