lib/solo/derandomize.ml: Array List Ndproto Rsim_value Solo_path Value
