lib/solo/mrun.mli: Derandomize Ndproto Rsim_shmem Rsim_value Value
