lib/solo/nd_examples.mli: Ndproto
