lib/solo/ndproto.mli: Rsim_shmem Rsim_value Value
