lib/solo/aba.ml: Array Derandomize List Mrun Ndproto Objects Printf Rsim_shmem Rsim_value Value
