lib/solo/aba.mli: Mrun Rsim_value Value
