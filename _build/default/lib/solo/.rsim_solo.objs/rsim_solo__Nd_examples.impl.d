lib/solo/nd_examples.ml: List Ndproto Objects Printf Rsim_shmem Rsim_value Value
