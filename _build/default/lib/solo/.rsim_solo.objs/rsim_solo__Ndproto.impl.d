lib/solo/ndproto.ml: Array List Objects Printf Rsim_shmem Rsim_value Value
