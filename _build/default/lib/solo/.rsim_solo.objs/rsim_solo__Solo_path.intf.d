lib/solo/solo_path.mli: Ndproto Rsim_value Value
