(** Execution engine for derandomized protocols over an m-component
    object (§5.2).

    The analogue of {!Rsim_shmem.Run} for processes produced by
    {!Derandomize.convert}: one shared m-component object whose
    components carry the kinds declared by the protocol, atomic steps,
    pluggable {!Rsim_shmem.Schedule}s, immutable configurations. *)

open Rsim_value

type event = {
  idx : int;
  pid : int;
  step : Ndproto.step;
  response : Value.t;
}

type config

(** All processes must share the same object declaration ([m], kinds). *)
val init : Derandomize.t list -> config

val mem : config -> Value.t array
val proc : config -> int -> Derandomize.t
val live : config -> int list
val trace : config -> event list
val step_counts : config -> int array
val step_pid : config -> int -> config

type outcome = All_done | Step_limit | Schedule_exhausted

val run :
  ?max_steps:int -> sched:Rsim_shmem.Schedule.t -> config -> config * outcome

val outputs : config -> (int * Value.t) list

(** Obstruction-freedom probe: run [pid] solo; [true] iff it outputs
    within the budget. *)
val solo_terminates : ?max_steps:int -> config -> int -> bool
