lib/regsnap/regsnap.ml: Array List Rsim_runtime Rsim_value Value
