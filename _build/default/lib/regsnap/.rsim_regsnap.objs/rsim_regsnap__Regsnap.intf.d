lib/regsnap/regsnap.mli: Rsim_runtime Rsim_shmem Rsim_value Value
