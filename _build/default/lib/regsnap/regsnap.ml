open Rsim_value

module Ops = struct
  type op = Read of int | Write of int * Value.t
  type res = Got of Value.t | Ack
end

module F = Rsim_runtime.Fiber.Make (Ops)

type cell = { value : Value.t; seq : int; view : Value.t array }

let bot_cell = { value = Value.Bot; seq = 0; view = [||] }

type hop =
  | Update_op of { proc : int; value : Value.t; inv : int; ret : int; n_ops : int }
  | Scan_op of {
      proc : int;
      view : Value.t array;
      inv : int;
      ret : int;
      borrowed : bool;
      n_ops : int;  (* this process's own register steps *)
    }

type t = {
  f : int;
  regs : cell array;  (* register i written only by process i *)
  mutable clock : int;
  mutable rev_history : hop list;
}

let create ~f =
  if f <= 0 then invalid_arg "Regsnap.create: f must be positive";
  { f; regs = Array.make f bot_cell; clock = 0; rev_history = [] }

(* Registers hold [cell]s, but the fiber op interface carries [Value.t];
   we smuggle the cell through an association table keyed by a fresh
   handle. Simpler and faithful alternative: encode the cell as a
   Value.t. We encode: Pair (value, Pair (Int seq, List view)). *)
let encode c =
  Value.Pair (c.value, Value.Pair (Value.Int c.seq, Value.List (Array.to_list c.view)))

let decode v =
  match v with
  | Value.Bot -> bot_cell
  | Value.Pair (value, Value.Pair (Value.Int seq, Value.List view)) ->
    { value; seq; view = Array.of_list view }
  | _ -> failwith "Regsnap.decode: malformed register contents"

let apply t ~pid (op : Ops.op) : Ops.res =
  let res : Ops.res =
    match op with
    | Ops.Read i -> Ops.Got (encode t.regs.(i))
    | Ops.Write (i, v) ->
      if i <> pid then failwith "Regsnap: single-writer violation";
      t.regs.(i) <- decode v;
      Ops.Ack
  in
  t.clock <- t.clock + 1;
  res

let read _t i =
  match F.op (Ops.Read i) with
  | Ops.Got v -> decode v
  | Ops.Ack -> assert false

let write _t ~me c = ignore (F.op (Ops.Write (me, encode c)))

let collect t = Array.init t.f (fun i -> read t i)

let values_of collect_result = Array.map (fun c -> c.value) collect_result

let same_seqs a b =
  Array.for_all2 (fun (ca : cell) cb -> ca.seq = cb.seq) a b

(* The AADGMS scan. Returns (view, borrowed, inv clock, own steps). *)
let scan_inner t =
  let inv = t.clock in
  let moved = Array.make t.f false in
  let steps = ref 0 in
  let collect t =
    steps := !steps + t.f;
    collect t
  in
  let rec loop c1 =
    let c2 = collect t in
    if same_seqs c1 c2 then (values_of c2, false, inv, !steps)
    else begin
      let borrowed = ref None in
      Array.iteri
        (fun i (c1i : cell) ->
          if c1i.seq <> c2.(i).seq then
            if moved.(i) then begin
              (* i completed an entire update — and so an embedded scan —
                 inside our interval: borrow its view. *)
              if !borrowed = None then borrowed := Some c2.(i).view
            end
            else moved.(i) <- true)
        c1;
      match !borrowed with
      | Some view -> (Array.copy view, true, inv, !steps)
      | None -> loop c2
    end
  in
  loop (collect t)

let scan t ~me =
  let view, borrowed, inv, n_ops = scan_inner t in
  let ret = t.clock in
  t.rev_history <-
    Scan_op { proc = me; view; inv; ret; borrowed; n_ops } :: t.rev_history;
  view

let update t ~me v =
  let inv = t.clock in
  let view, _, _, scan_ops = scan_inner t in
  let old = read t me in
  write t ~me { value = v; seq = old.seq + 1; view };
  let ret = t.clock in
  t.rev_history <-
    Update_op { proc = me; value = v; inv; ret; n_ops = scan_ops + 2 }
    :: t.rev_history

let history t = List.rev t.rev_history

let scan_step_bound ~f = (f + 2) * f
