lib/experiments/exp_common.mli: Aug Core Harness
