lib/experiments/exp_common.ml: Aug Core Harness List Printf Prng Racing Schedule Value
