(** Shared machinery for the experiment harness (EXPERIMENTS.md).

    Every experiment is deterministic: all randomness flows from the
    fixed seeds passed here, so the tables in EXPERIMENTS.md are exactly
    reproducible with [dune exec bench/main.exe]. *)

open Core

(** Run a random augmented-snapshot workload: [f] fibers perform [n_ops]
    operations each (a mix of Scans and Block-Updates drawn from the
    seed) under a seeded uniform scheduler. Returns the object and the
    trace. *)
val aug_workload :
  f:int -> m:int -> n_ops:int -> seed:int -> Aug.t * Aug.F.trace_entry list

(** Run the racing protocol through the full simulation harness. *)
val racing_sim :
  n:int -> m:int -> f:int -> d:int -> seed:int -> Harness.spec * Harness.result

(** [row fmt ...] builds one aligned table line. *)
val fmt_row : ('a, unit, string) format -> 'a

(** Percentage, one decimal. *)
val pct : int -> int -> string
