open Core

let aug_workload ~f ~m ~n_ops ~seed =
  let aug = Aug.create ~f ~m () in
  let body pid =
    let g = ref (Prng.make (seed + (1000 * pid))) in
    let draw n =
      let k, g' = Prng.int !g n in
      g := g';
      k
    in
    for _ = 1 to n_ops do
      if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
      else begin
        let r = 1 + draw (min m 3) in
        let comps = ref [] in
        while List.length !comps < r do
          let j = draw m in
          if not (List.mem j !comps) then comps := j :: !comps
        done;
        let updates = List.map (fun j -> (j, Value.Int (draw 100))) !comps in
        ignore (Aug.block_update aug ~me:pid updates)
      end
    done
  in
  let result =
    Aug.F.run ~max_ops:100_000
      ~sched:(Schedule.random ~seed)
      ~apply:(Aug.apply aug)
      (List.init f (fun _ -> body))
  in
  (aug, result.Aug.F.trace)

let racing_sim ~n ~m ~f ~d ~seed =
  let spec =
    {
      Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
      n;
      m;
      f;
      d;
      inputs = List.init f (fun p -> Value.Int (p + 1));
    }
  in
  let result = Harness.run ~sched:(Schedule.random ~seed) spec in
  (spec, result)

let fmt_row fmt = Printf.sprintf fmt

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)
