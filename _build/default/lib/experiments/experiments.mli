(** The experiment registry (DESIGN.md §3, EXPERIMENTS.md).

    Each experiment regenerates one of the paper's checkable claims as a
    plain-text table. All experiments are deterministic: every random
    choice flows from hard-coded seeds, so the tables in EXPERIMENTS.md
    are exactly reproducible. *)

type t = {
  id : string;  (** "E1" .. "E10" *)
  title : string;
  run : unit -> string list;  (** table lines *)
}

(** All experiments, in presentation order. *)
val all : t list

(** Case-insensitive lookup by id. *)
val find : string -> t option

(** Run and print every experiment. *)
val print_all : Format.formatter -> unit
