(** The experiment registry (see DESIGN.md §3 and EXPERIMENTS.md).

    Each experiment regenerates one of the paper's checkable claims as a
    table; all are deterministic in their hard-coded seeds. *)

open Core

type t = { id : string; title : string; run : unit -> string list }

(* ------------------------------------------------------------------ *)
(* E1 — Lemma 2: step complexity of Block-Update and Scan.             *)
(* ------------------------------------------------------------------ *)

let e1 =
  let run () =
    let header =
      [
        "   f    m |    BUs  scans | max BU steps (<=6)  max Scan steps  2k+3 ok";
        String.make 76 '-';
      ]
    in
    let rows =
      List.concat_map
        (fun f ->
          List.map
            (fun m ->
              let checks = ref true in
              let bus = ref 0 and scans = ref 0 in
              let max_bu = ref 0 and max_scan = ref 0 in
              List.iter
                (fun seed ->
                  let aug, trace = Exp_common.aug_workload ~f ~m ~n_ops:10 ~seed in
                  let report = Aug_spec.check aug trace in
                  if not report.Aug_spec.ok then checks := false;
                  bus := !bus + report.Aug_spec.stats.Aug_spec.n_bus;
                  scans := !scans + report.Aug_spec.stats.Aug_spec.n_scans;
                  max_bu := max !max_bu report.Aug_spec.stats.Aug_spec.max_bu_ops;
                  max_scan :=
                    max !max_scan report.Aug_spec.stats.Aug_spec.max_scan_ops)
                (List.init 20 (fun s -> s + 1));
              Printf.sprintf "%4d %4d | %6d %6d | %19d %15d %8s" f m !bus !scans
                !max_bu !max_scan
                (if !checks then "yes" else "NO"))
            [ 2; 3; 4 ])
        [ 2; 3; 4 ]
    in
    header @ rows
  in
  { id = "E1"; title = "Lemma 2: step complexity of the augmented snapshot"; run }

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 20: yield discipline.                                  *)
(* ------------------------------------------------------------------ *)

let e2 =
  let run () =
    let f = 4 and m = 3 in
    let atomic = Array.make f 0 and yield = Array.make f 0 in
    let ok = ref true in
    List.iter
      (fun seed ->
        let aug, trace = Exp_common.aug_workload ~f ~m ~n_ops:10 ~seed in
        let report = Aug_spec.check aug trace in
        if not report.Aug_spec.ok then ok := false;
        List.iter
          (function
            | Aug.Bu_op { proc; result = Aug.Atomic _; _ } ->
              atomic.(proc) <- atomic.(proc) + 1
            | Aug.Bu_op { proc; result = Aug.Yield; _ } ->
              yield.(proc) <- yield.(proc) + 1
            | Aug.Scan_op _ -> ())
          (Aug.log aug))
      (List.init 50 (fun s -> s + 100));
    [
      " sim |  atomic   yield  yield-rate   (q0 must be 0; Thm 20 checks pass)";
      String.make 70 '-';
    ]
    @ List.init f (fun i ->
          Printf.sprintf "  q%d | %7d %7d %10s" i atomic.(i) yield.(i)
            (Exp_common.pct yield.(i) (atomic.(i) + yield.(i))))
    @ [
        Printf.sprintf "q0 always atomic: %s; all Theorem 20 checks: %s"
          (if yield.(0) = 0 then "yes" else "NO")
          (if !ok then "pass" else "FAIL");
      ]
  in
  { id = "E2"; title = "Theorem 20: Block-Updates yield only under lower-id contention"; run }

(* ------------------------------------------------------------------ *)
(* E3 — §3.3: linearization reconstruction.                            *)
(* ------------------------------------------------------------------ *)

let e3 =
  let run () =
    let total = ref 0 and failed = ref 0 in
    let shapes = [ (2, 2); (2, 4); (3, 3); (4, 2); (4, 4) ] in
    let rows =
      List.map
        (fun (f, m) ->
          let execs = 40 in
          let bad = ref 0 in
          let scans = ref 0 and bus = ref 0 in
          List.iter
            (fun seed ->
              let aug, trace = Exp_common.aug_workload ~f ~m ~n_ops:8 ~seed in
              let report = Aug_spec.check aug trace in
              incr total;
              if not report.Aug_spec.ok then begin
                incr failed;
                incr bad
              end;
              scans := !scans + report.Aug_spec.stats.Aug_spec.n_scans;
              bus := !bus + report.Aug_spec.stats.Aug_spec.n_bus)
            (List.init execs (fun s -> s + 1_000));
          Printf.sprintf "%4d %4d | %6d %6d %6d | %9s" f m execs !scans !bus
            (if !bad = 0 then "all pass" else Printf.sprintf "%d FAIL" !bad))
        shapes
    in
    [
      "   f    m |  execs  scans    BUs | Lemmas 9,11,12,16-19 + Cor 15";
      String.make 66 '-';
    ]
    @ rows
    @ [ Printf.sprintf "total executions checked: %d, failures: %d" !total !failed ]
  in
  { id = "E3"; title = "Linearization: windows disjoint, views legal, scans fresh"; run }

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 26/27: simulated-execution replay.                       *)
(* ------------------------------------------------------------------ *)

let e4 =
  let run () =
    let shapes =
      [ (2, 2, 1, 0); (4, 2, 2, 0); (6, 3, 2, 0); (5, 2, 3, 1); (7, 2, 4, 1) ]
    in
    let rows =
      List.map
        (fun (n, m, f, d) ->
          let execs = 30 in
          let bad = ref 0 in
          let lin = ref 0 and revs = ref 0 and hidden = ref 0 in
          List.iter
            (fun seed ->
              let spec, result = Exp_common.racing_sim ~n ~m ~f ~d ~seed in
              let rep = Analysis.check spec result in
              if not rep.Analysis.ok then incr bad;
              lin := !lin + rep.Analysis.stats.Analysis.n_lin_items;
              revs := !revs + rep.Analysis.stats.Analysis.n_revisions;
              hidden := !hidden + rep.Analysis.stats.Analysis.n_hidden_steps)
            (List.init execs (fun s -> s + 1));
          Printf.sprintf "%3d %3d %3d %3d | %6d %6d %7d | %9s" n m f d !lin !revs
            !hidden
            (if !bad = 0 then "all pass" else Printf.sprintf "%d FAIL" !bad))
        shapes
    in
    [
      "  n   m   f   d | lin-ops  revs  hidden | Lemma 26 replay (30 runs each)";
      String.make 72 '-';
    ]
    @ rows
  in
  { id = "E4"; title = "Lemma 26: the revised simulated execution replays against the protocol"; run }

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 21 / Corollary 33: the reduction, end to end.          *)
(* ------------------------------------------------------------------ *)

let e5 =
  let run () =
    let cases =
      (* n m f d task-k *)
      [
        (2, 2, 1, 0, 1);
        (4, 2, 2, 0, 1);
        (6, 3, 2, 0, 1);
        (7, 5, 2, 1, 3);
        (5, 2, 3, 1, 2);
        (8, 2, 4, 0, 3);
      ]
    in
    let rows =
      List.map
        (fun (n, m, f, d, k) ->
          let runs = 25 in
          let wait_free = ref 0 and valid = ref 0 in
          let steps = ref 0 in
          List.iter
            (fun seed ->
              let spec, result = Exp_common.racing_sim ~n ~m ~f ~d ~seed in
              if result.Harness.all_done then incr wait_free;
              steps := !steps + result.Harness.total_ops;
              match Harness.validate spec result ~task:(Task.kset ~k) with
              | Ok () -> incr valid
              | Error _ -> ())
            (List.init runs (fun s -> s + 1));
          Printf.sprintf "%3d %3d %3d %3d %3d | %9s %9s | %8d" n m f d k
            (Exp_common.pct !wait_free runs)
            (Exp_common.pct !valid runs)
            (!steps / runs))
        cases
    in
    [
      "  n   m   f   d   k | wait-free     valid | avg H-ops";
      String.make 58 '-';
    ]
    @ rows
    @ [
        "wait-free must be 100% (Theorem 21); 'valid' < 100% on rows where";
        "m is below the Corollary 33 bound exposes the simulated protocol.";
      ]
  in
  { id = "E5"; title = "Theorem 21: f simulators wait-free solve the task"; run }

(* ------------------------------------------------------------------ *)
(* E5b — the impossibility witness.                                    *)
(* ------------------------------------------------------------------ *)

let e5b =
  let run () =
    let search ~n ~m ~f ~d ~seeds =
      let first = ref None in
      let violations = ref 0 in
      for seed = 0 to seeds - 1 do
        let spec, result = Exp_common.racing_sim ~n ~m ~f ~d ~seed in
        match Harness.validate spec result ~task:Task.consensus with
        | Error _ when result.Harness.all_done ->
          incr violations;
          if !first = None then first := Some seed
        | _ -> ()
      done;
      (!violations, !first)
    in
    let rows =
      List.map
        (fun (n, m, f, d) ->
          let bound = Lower.consensus ~n in
          let v, first = search ~n ~m ~f ~d ~seeds:200 in
          Printf.sprintf "%3d %3d (bound %2d) %3d %3d | %6d / 200 %14s" n m bound
            f d v
            (match first with
            | Some s -> Printf.sprintf "first seed %d" s
            | None -> "none found"))
        [ (4, 2, 2, 0); (6, 3, 2, 0); (6, 2, 3, 0); (3, 3, 1, 0) ]
    in
    (* Deterministic (search-free) adversaries, directly on the
       simulated system. *)
    let det_rows =
      let racing_pair m =
        List.init 2 (fun pid -> (Rsim_protocols.Racing.protocol ~m ()) pid (Value.Int pid))
      in
      let adopt_pair =
        [
          Rsim_protocols.Adopt2.proc ~mine:0 ~theirs:1 ~name:"p0" ~input:(Value.Int 0) ();
          Rsim_protocols.Adopt2.proc ~mine:1 ~theirs:0 ~name:"p1" ~input:(Value.Int 1) ();
        ]
      in
      let describe name result =
        match result with
        | Some w ->
          Printf.sprintf "%-28s BROKEN (%s)" name w.Covering_witness.description
        | None -> Printf.sprintf "%-28s survives" name
      in
      [
        describe "racing m=2, lockstep"
          (Covering_witness.phase_shifted ~procs:(racing_pair 2) ~m:2
             ~task:Task.consensus ~max_turn:8);
        describe "racing m=1, stale writer"
          (Covering_witness.stale_writer ~procs:(racing_pair 1) ~m:1
             ~task:Task.consensus);
        describe "adopt2, lockstep"
          (Covering_witness.phase_shifted ~procs:adopt_pair ~m:2
             ~task:Task.consensus ~max_turn:8);
        describe "adopt2, stale writer"
          (Covering_witness.stale_writer ~procs:adopt_pair ~m:2
             ~task:Task.consensus);
      ]
    in
    [
      "  n   m (Cor 33)    f   d | consensus violations    witness";
      String.make 64 '-';
    ]
    @ rows
    @ [
        "m below the bound: the simulation finds disagreement executions;";
        "the last row (enough space per simulator) finds none.";
        "";
        "deterministic covering adversaries (no search):";
      ]
    @ det_rows
  in
  { id = "E5b"; title = "Impossibility witness: too few registers break consensus"; run }

(* ------------------------------------------------------------------ *)
(* E6 — Lemmas 29-31: a(r), b(i) vs measured Block-Update counts.      *)
(* ------------------------------------------------------------------ *)

let e6 =
  let run () =
    let shapes = [ (2, 2); (2, 3); (2, 4); (3, 2) ] in
    let rows =
      List.concat_map
        (fun (m, f) ->
          let n = f * m in
          let max_bus = Array.make f 0 in
          List.iter
            (fun seed ->
              let _, result = Exp_common.racing_sim ~n ~m ~f ~d:0 ~seed in
              Array.iteri
                (fun i c -> max_bus.(i) <- max max_bus.(i) c)
                result.Harness.bu_counts)
            (List.init 30 (fun s -> s + 1));
          List.init f (fun i ->
              let bound = Complexity.b ~m (i + 1) in
              Printf.sprintf "%3d %3d  q%d | %8d %8d | %s" m f i max_bus.(i) bound
                (if max_bus.(i) <= bound then "ok" else "EXCEEDED")))
        shapes
    in
    [
      "  m   f  sim | measured     b(i) | Lemma 30";
      String.make 48 '-';
    ]
    @ rows
    @ [
        Printf.sprintf "a(r) for m=4: %s"
          (String.concat ", "
             (List.init 4 (fun r ->
                  Printf.sprintf "a(%d)=%d" (r + 1) (Complexity.a ~m:4 (r + 1)))));
      ]
  in
  { id = "E6"; title = "Lemmas 29-31: simulator work vs the a(r)/b(i) bounds"; run }

(* ------------------------------------------------------------------ *)
(* E7 — bound tables (Corollaries 33, 34).                             *)
(* ------------------------------------------------------------------ *)

let e7 =
  let run () =
    let buf = Buffer.create 1024 in
    let fmt = Format.formatter_of_buffer buf in
    Format.fprintf fmt "Corollary 33 vs upper bound [16]:@.";
    Tables.print_kset fmt
      (Tables.kset_rows ~ns:[ 8; 16; 32 ] ~ks:[ 1; 2; 4; 7 ] ~xs:[ 1; 2; 4 ]);
    Format.fprintf fmt "@.Headline (tight) corollaries:@.";
    Tables.print_headline fmt ~ns:[ 4; 8; 16; 32; 64 ];
    Format.fprintf fmt "@.Corollary 34 (approximate agreement):@.";
    Tables.print_approx fmt
      (Tables.approx_rows ~ns:[ 4; 16; 64 ]
         ~epss:[ 0.1; 1e-3; 1e-6; 1e-12; 1e-24 ]);
    Format.pp_print_flush fmt ();
    String.split_on_char '\n' (Buffer.contents buf)
  in
  { id = "E7"; title = "Bound tables: lower vs upper across (n, k, x) and eps"; run }

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 35: derandomization.                                   *)
(* ------------------------------------------------------------------ *)

let e8 =
  let run () =
    let coin_pair () =
      [
        Derandomize.convert (Nd_examples.coin_consensus ~me:0 ()) ~cap:10_000
          ~input:(Value.Int 1);
        Derandomize.convert (Nd_examples.coin_consensus ~me:1 ()) ~cap:10_000
          ~input:(Value.Int 2);
      ]
    in
    (* Obstruction-freedom from random reachable configurations. *)
    let trials = 100 in
    let of_ok = ref 0 in
    for seed = 0 to trials - 1 do
      let c = Mrun.init (coin_pair ()) in
      let sched =
        Schedule.phased ~prefix_len:(seed mod 13) ~prefix:(Schedule.random ~seed)
          ~suffix:(Schedule.script [])
      in
      let c', _ = Mrun.run ~sched c in
      if List.for_all (fun pid -> Mrun.solo_terminates ~max_steps:300 c' pid)
           (Mrun.live c')
      then incr of_ok
    done;
    (* Agreement among decided under random schedules. *)
    let agree = ref 0 and decided_runs = ref 0 in
    for seed = 0 to trials - 1 do
      let c = Mrun.init (coin_pair ()) in
      let c', _ = Mrun.run ~max_steps:2_000 ~sched:(Schedule.random ~seed) c in
      match List.map snd (Mrun.outputs c') with
      | [ a; b ] ->
        incr decided_runs;
        if Value.equal a b then incr agree
      | _ -> ()
    done;
    (* ABA rates, untagged vs tagged (Corollary 36). *)
    let aba ~tagged =
      let count = ref 0 in
      for seed = 0 to trials - 1 do
        let procs =
          [
            Derandomize.convert
              (Nd_examples.coin_consensus ~tagged ~me:0 ())
              ~cap:10_000 ~input:(Value.Int 1);
            Derandomize.convert
              (Nd_examples.coin_consensus ~tagged ~me:1 ())
              ~cap:10_000 ~input:(Value.Int 2);
          ]
        in
        let c = Mrun.init procs in
        let c', _ = Mrun.run ~max_steps:400 ~sched:(Schedule.random ~seed) c in
        match Aba.check c' with Error _ -> incr count | Ok () -> ()
      done;
      !count
    in
    [
      Printf.sprintf
        "coin consensus, derandomized: solo termination from %d random configs: %s"
        trials
        (Exp_common.pct !of_ok trials);
      Printf.sprintf "agreement among fully-decided runs: %s"
        (Exp_common.pct !agree !decided_runs);
      Printf.sprintf "ABA runs, untagged registers : %d / %d" (aba ~tagged:false)
        trials;
      Printf.sprintf "ABA runs, tagged (Cor 36)    : %d / %d" (aba ~tagged:true)
        trials;
      "ticket protocol: derandomized process decides its first ticket (0 extra loops).";
    ]
  in
  { id = "E8"; title = "Theorem 35 + Corollary 36: NDST -> obstruction-free; ABA tagging"; run }

(* ------------------------------------------------------------------ *)
(* E9 — ablation: the helping mechanism is load-bearing.               *)
(* ------------------------------------------------------------------ *)

let e9 =
  let workload ~helping ~f ~m ~seed =
    let aug = Aug.create ~helping ~f ~m () in
    let body pid =
      let g = ref (Prng.make (seed + (1000 * pid))) in
      let draw n =
        let k, g' = Prng.int !g n in
        g := g';
        k
      in
      for _ = 1 to 8 do
        if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
        else begin
          let r = 1 + draw (min m 3) in
          let comps = ref [] in
          while List.length !comps < r do
            let j = draw m in
            if not (List.mem j !comps) then comps := j :: !comps
          done;
          ignore
            (Aug.block_update aug ~me:pid
               (List.map (fun j -> (j, Value.Int (draw 100))) !comps))
        end
      done
    in
    let result =
      Aug.F.run ~max_ops:50_000
        ~sched:(Schedule.random ~seed)
        ~apply:(Aug.apply aug)
        (List.init f (fun _ -> body))
    in
    Aug_spec.check aug result.Aug.F.trace
  in
  let run () =
    let total = 100 in
    let rows =
      List.map
        (fun helping ->
          let fails = ref 0 in
          let sample = ref None in
          for seed = 0 to total - 1 do
            let rep = workload ~helping ~f:3 ~m:3 ~seed in
            if not rep.Aug_spec.ok then begin
              incr fails;
              if !sample = None then
                sample := List.nth_opt rep.Aug_spec.errors 0
            end
          done;
          Printf.sprintf "helping %-5b | %3d / %d executions violate the spec%s"
            helping !fails total
            (match !sample with
            | Some e -> "\n              e.g. " ^ e
            | None -> ""))
        [ true; false ]
    in
    rows
    @ [
        "Removing the L-record helping writes leaves Block-Updates returning";
        "their own stale Line-2 views: foreign atomic updates and scans land";
        "inside the windows, breaking Lemmas 17-19 under contention.";
      ]
  in
  { id = "E9"; title = "Ablation: the augmented snapshot without its helping mechanism"; run }

(* ------------------------------------------------------------------ *)
(* E10 — Corollary 34's reduction, operationally.                      *)
(* ------------------------------------------------------------------ *)

let e10 =
  let run () =
    let eps = 0.25 in
    let rounds = Rsim_protocols.Approx_agreement.rounds_for ~eps in
    let rows =
      List.map
        (fun m ->
          let n = 2 * m in
          let spec =
            {
              Harness.protocol =
                (fun pid input ->
                  (Rsim_protocols.Approx_agreement.protocol_shared ~rounds ~m ())
                    pid input);
              n;
              m;
              f = 2;
              d = 0;
              inputs = [ Value.Float 0.0; Value.Float 1.0 ];
            }
          in
          let budget = Complexity.two_pow_fm2 ~f:2 ~m in
          let runs = 25 in
          let wait_free = ref 0 and valid = ref 0 and max_steps = ref 0 in
          for seed = 0 to runs - 1 do
            let result = Harness.run ~sched:(Schedule.random ~seed) spec in
            if result.Harness.all_done then incr wait_free;
            Array.iter (fun s -> max_steps := max !max_steps s) result.Harness.ops_per_sim;
            match Harness.validate spec result ~task:(Task.approx ~eps) with
            | Ok () -> incr valid
            | Error _ -> ()
          done;
          Printf.sprintf "%3d %3d | %9s %9s | %9d %12d" n m
            (Exp_common.pct !wait_free runs)
            (Exp_common.pct !valid runs)
            !max_steps budget)
        [ 2; 3; 4 ]
    in
    (* The step-complexity side of the reduction: 2-process approximate
       agreement takes at least (1/2)·log_3(1/eps) steps (Hoest-Shavit);
       measure our wait-free protocol's 2-process step counts against
       it across eps. *)
    let hs_rows =
      List.map
        (fun eps ->
          let rounds = Rsim_protocols.Approx_agreement.rounds_for ~eps in
          let hs = 0.5 *. (log (1.0 /. eps) /. log 3.0) in
          let max_steps = ref 0 in
          for seed = 0 to 24 do
            let procs =
              List.mapi
                (fun pid v ->
                  (Rsim_protocols.Approx_agreement.protocol ~rounds ()) pid
                    (Value.Float v))
                [ 0.0; 1.0 ]
            in
            let c = Rsim_shmem.Run.init ~m:2 procs in
            let c', _ =
              Rsim_shmem.Run.run ~sched:(Schedule.random ~seed) c
            in
            Array.iter
              (fun s -> max_steps := max !max_steps s)
              (Rsim_shmem.Run.step_counts c')
          done;
          Printf.sprintf "%10g | %6d %14.1f %17d" eps rounds hs !max_steps)
        [ 0.25; 0.1; 0.01; 1e-4; 1e-8 ]
    in
    [
      "  n   m | wait-free     valid | max steps  2^{fm^2} cap";
      String.make 58 '-';
    ]
    @ rows
    @ [
        "The two simulators extract a 2-process protocol whose per-simulator";
        "step count sits far below Theorem 21's 2^{fm^2} budget — the slack";
        "the Corollary 34 reduction converts into a register bound.";
        "";
        "Hoest-Shavit step complexity, 2 processes (the reduction's source):";
        "       eps | rounds  HS lower bound  max steps measured";
        String.make 58 '-';
      ]
    @ hs_rows
  in
  { id = "E10"; title = "Corollary 34: a 2-simulator extraction of approximate agreement"; run }

let all = [ e1; e2; e3; e4; e5; e5b; e6; e7; e8; e9; e10 ]

let find id = List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let print_all fmt =
  List.iter
    (fun e ->
      Format.fprintf fmt "@.=== %s — %s ===@." e.id e.title;
      List.iter (fun line -> Format.fprintf fmt "%s@." line) (e.run ()))
    all
