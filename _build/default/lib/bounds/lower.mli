(** The paper's space lower bounds, as closed-form functions.

    All bounds count registers; an [m]-component snapshot counts as [m]
    registers (§2). *)

(** Corollary 33: any [x]-obstruction-free protocol solving [k]-set
    agreement among [n > k] processes uses at least
    [⌊(n − x)/(k + 1 − x)⌋ + 1] registers. Requires [1 ≤ x ≤ k < n]. *)
val kset : n:int -> k:int -> x:int -> int

(** The consensus specialization ([k = x = 1]): exactly [n] registers. *)
val consensus : n:int -> int

(** The (n−1)-set agreement specialization: [2] registers. *)
val nminus1_set : n:int -> int

(** Corollary 34: any obstruction-free protocol for ε-approximate
    agreement among [n ≥ 2] processes uses at least
    [min{⌊n/2⌋ + 1, √(log₂ log₃(1/ε)) − 2}] registers (we floor the
    square-root term). Requires [0 < eps < 1]. *)
val approx : n:int -> eps:float -> int

(** Theorem 21, first case: if [L] lower-bounds the wait-free step
    complexity of the task for [f] processes, an obstruction-free
    protocol needs [m ≥ min{⌊n/f⌋ + 1, √(log₂(L)/f)}] components. *)
val thm21_step_complexity : n:int -> f:int -> step_lower_bound:float -> int

(** Theorem 21, second case: if the task is unsolvable wait-free among
    [f] processes, an [x]-obstruction-free protocol ([x < f]) needs
    [m ≥ ⌊(n − x)/(f − x)⌋ + 1] components. *)
val thm21_unsolvable : n:int -> f:int -> x:int -> int
