type kset_row = {
  n : int;
  k : int;
  x : int;
  lower : int;
  upper : int;
  tight : bool;
}

let kset_rows ~ns ~ks ~xs =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun k ->
          List.filter_map
            (fun x ->
              if 1 <= x && x <= k && k < n then begin
                let lower = Lower.kset ~n ~k ~x in
                let upper = Upper.kset ~n ~k ~x in
                Some { n; k; x; lower; upper; tight = lower = upper }
              end
              else None)
            xs)
        ks)
    ns

type approx_row = {
  a_n : int;
  eps : float;
  a_lower : int;
  upper_schenk : int;
  upper_n : int;
}

let approx_rows ~ns ~epss =
  List.concat_map
    (fun n ->
      List.map
        (fun eps ->
          {
            a_n = n;
            eps;
            a_lower = Lower.approx ~n ~eps;
            upper_schenk = Upper.approx_schenk ~eps;
            upper_n = Upper.approx_alsn ~n;
          })
        epss)
    ns

let print_kset fmt rows =
  Format.fprintf fmt "%4s %4s %4s | %8s %8s %6s@." "n" "k" "x" "lower" "upper"
    "tight";
  Format.fprintf fmt "%s@." (String.make 42 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%4d %4d %4d | %8d %8d %6s@." r.n r.k r.x r.lower
        r.upper
        (if r.tight then "yes" else ""))
    rows

let print_approx fmt rows =
  Format.fprintf fmt "%4s %12s | %8s %10s %8s@." "n" "eps" "lower" "Schenk[43]"
    "ALS[9]";
  Format.fprintf fmt "%s@." (String.make 50 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%4d %12g | %8d %10d %8d@." r.a_n r.eps r.a_lower
        r.upper_schenk r.upper_n)
    rows

let print_headline fmt ~ns =
  Format.fprintf fmt "%4s | %14s %14s | %16s %10s@." "n" "consensus lower"
    "upper" "(n-1)-set lower" "upper";
  Format.fprintf fmt "%s@." (String.make 70 '-');
  List.iter
    (fun n ->
      if n >= 3 then
        Format.fprintf fmt "%4d | %14d %14d | %16d %10d@." n
          (Lower.consensus ~n) (Upper.consensus ~n) (Lower.nminus1_set ~n)
          (Upper.kset ~n ~k:(n - 1) ~x:1))
    ns
