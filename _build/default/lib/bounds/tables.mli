(** Bound tables: the paper's quantitative landscape, regenerated.

    Each row compares the paper's lower bound with the best known upper
    bound, marking where they are tight. Rendered as aligned plain-text
    tables by the [print_*] functions (used by the CLI, the benchmark
    harness and EXPERIMENTS.md). *)

type kset_row = {
  n : int;
  k : int;
  x : int;
  lower : int;  (** Corollary 33 *)
  upper : int;  (** [16]: n − k + x *)
  tight : bool;
}

val kset_rows : ns:int list -> ks:int list -> xs:int list -> kset_row list

type approx_row = {
  a_n : int;
  eps : float;
  a_lower : int;  (** Corollary 34 *)
  upper_schenk : int;
  upper_n : int;
}

val approx_rows : ns:int list -> epss:float list -> approx_row list

val print_kset : Format.formatter -> kset_row list -> unit
val print_approx : Format.formatter -> approx_row list -> unit

(** The headline corollaries as a table: consensus (tight at n) and
    (n−1)-set agreement (tight at 2), over a range of n. *)
val print_headline : Format.formatter -> ns:int list -> unit
