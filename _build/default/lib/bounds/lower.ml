let thm21_unsolvable ~n ~f ~x =
  if not (0 <= x && x < f) then invalid_arg "Lower.thm21_unsolvable: need 0 <= x < f";
  if n < f then invalid_arg "Lower.thm21_unsolvable: need n >= f";
  ((n - x) / (f - x)) + 1

let kset ~n ~k ~x =
  if not (1 <= x && x <= k && k < n) then
    invalid_arg "Lower.kset: need 1 <= x <= k < n";
  (* Theorem 21 with f = k + 1 (wait-free k-set agreement is unsolvable
     among k + 1 processes). *)
  thm21_unsolvable ~n ~f:(k + 1) ~x

let consensus ~n =
  if n < 2 then invalid_arg "Lower.consensus: need n >= 2";
  kset ~n ~k:1 ~x:1

let nminus1_set ~n =
  if n < 3 then invalid_arg "Lower.nminus1_set: need n >= 3";
  kset ~n ~k:(n - 1) ~x:1

let thm21_step_complexity ~n ~f ~step_lower_bound =
  if n < f || f < 1 then invalid_arg "Lower.thm21_step_complexity: need n >= f >= 1";
  if step_lower_bound <= 1.0 then 1
  else begin
    let a = (n / f) + 1 in
    let b =
      int_of_float (floor (sqrt (log step_lower_bound /. log 2.0 /. float_of_int f)))
    in
    max 1 (min a b)
  end

let approx ~n ~eps =
  if n < 2 then invalid_arg "Lower.approx: need n >= 2";
  if not (0.0 < eps && eps < 1.0) then invalid_arg "Lower.approx: need 0 < eps < 1";
  (* Hoest-Shavit: two-process eps-approximate agreement takes at least
     L = (1/2) log_3 (1/eps) steps; apply Theorem 21 with f = 2.
     Corollary 34 simplifies the min to
     min{ floor(n/2)+1, sqrt(log2 log3 (1/eps)) - 2 }. *)
  let a = (n / 2) + 1 in
  let log3 x = log x /. log 3.0 in
  let inner = log3 (1.0 /. eps) in
  if inner <= 1.0 then 1
  else begin
    let b = int_of_float (floor (sqrt (log inner /. log 2.0) -. 2.0)) in
    max 1 (min a b)
  end
