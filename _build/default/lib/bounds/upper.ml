let kset ~n ~k ~x =
  if not (1 <= x && x <= k && k < n) then
    invalid_arg "Upper.kset: need 1 <= x <= k < n";
  n - k + x

let consensus ~n =
  if n < 2 then invalid_arg "Upper.consensus: need n >= 2";
  n

let approx_schenk ~eps =
  if not (0.0 < eps && eps < 1.0) then
    invalid_arg "Upper.approx_schenk: need 0 < eps < 1";
  int_of_float (ceil (log (1.0 /. eps) /. log 2.0))

let approx_alsn ~n =
  if n < 2 then invalid_arg "Upper.approx_alsn: need n >= 2";
  n

let kset_committee ~n =
  if n < 1 then invalid_arg "Upper.kset_committee: need n >= 1";
  n
