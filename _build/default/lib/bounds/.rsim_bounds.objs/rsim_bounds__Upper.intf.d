lib/bounds/upper.mli:
