lib/bounds/tables.ml: Format List Lower String Upper
