lib/bounds/tables.mli: Format
