lib/bounds/lower.mli:
