lib/bounds/upper.ml:
