lib/bounds/lower.ml:
