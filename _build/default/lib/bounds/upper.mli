(** Known upper bounds the paper compares against. *)

(** Bouzid–Raynal–Sutra [16]: [x]-obstruction-free [k]-set agreement with
    [n − k + x] registers (anonymous processes). *)
val kset : n:int -> k:int -> x:int -> int

(** Obstruction-free / randomized wait-free consensus with [n] registers
    ([1, 3, 40, 5], [30, 17, 47, 16]). *)
val consensus : n:int -> int

(** Schenk [43]: ε-approximate agreement with [⌈log₂(1/ε)⌉] registers. *)
val approx_schenk : eps:float -> int

(** Attiya–Lynch–Shavit [9]: wait-free ε-approximate agreement with [n]
    single-writer registers. *)
val approx_alsn : n:int -> int

(** The trivial committee upper bound implemented in
    {!Rsim_protocols.Committee}: [n] registers for k-set agreement. *)
val kset_committee : n:int -> int
