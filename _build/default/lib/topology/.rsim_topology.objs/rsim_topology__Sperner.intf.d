lib/topology/sperner.mli:
