lib/topology/sperner.ml: Fun Hashtbl List Option Rsim_value
