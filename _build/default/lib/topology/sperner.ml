type vertex = int * int

type triangle = vertex * vertex * vertex

let vertices ~s =
  List.concat_map
    (fun i -> List.init (s - i + 1) (fun j -> (i, j)))
    (List.init (s + 1) Fun.id)

let mk_tri a b c =
  match List.sort compare [ a; b; c ] with
  | [ x; y; z ] -> (x, y, z)
  | _ -> assert false

let triangles ~s =
  let up =
    List.concat_map
      (fun i ->
        List.init
          (max 0 (s - i))
          (fun j -> mk_tri (i, j) (i + 1, j) (i, j + 1)))
      (List.init s Fun.id)
  in
  let down =
    List.concat_map
      (fun i ->
        List.init
          (max 0 (s - i - 1))
          (fun j -> mk_tri (i + 1, j) (i, j + 1) (i + 1, j + 1)))
      (List.init (max 0 (s - 1)) Fun.id)
  in
  up @ down

let allowed_colors ~s (i, j) =
  let k = s - i - j in
  List.filter_map
    (fun (coord, color) -> if coord > 0 then Some color else None)
    [ (i, 0); (j, 1); (k, 2) ]

let valid ~s ~coloring =
  List.for_all
    (fun v ->
      let c = coloring v in
      List.mem c (allowed_colors ~s v))
    (vertices ~s)

let colors_of coloring (a, b, c) =
  List.sort_uniq compare [ coloring a; coloring b; coloring c ]

let trichromatic ~s ~coloring =
  List.filter (fun t -> colors_of coloring t = [ 0; 1; 2 ]) (triangles ~s)

(* ---- the constructive door-to-door walk ---- *)

(* A door is an edge whose endpoints are colored {0, 1}. Doors appear on
   the boundary only along the k = 0 edge, so a walk entering through a
   boundary door either reaches a trichromatic cell (which has exactly
   one door) or exits through another boundary door; parity guarantees
   some boundary door leads inside. *)

let edges_of (a, b, c) = [ (a, b); (a, c); (b, c) ]

let edge_key (a, b) = if compare a b <= 0 then (a, b) else (b, a)

let is_door coloring (a, b) =
  List.sort_uniq compare [ coloring a; coloring b ] = [ 0; 1 ]

let find_by_walk ~s ~coloring =
  if not (valid ~s ~coloring) then None
  else begin
    let tris = triangles ~s in
    (* edge -> incident triangles *)
    let by_edge = Hashtbl.create (4 * List.length tris) in
    List.iter
      (fun t ->
        List.iter
          (fun e ->
            let k = edge_key e in
            Hashtbl.replace by_edge k (t :: (Option.value ~default:[] (Hashtbl.find_opt by_edge k))))
          (edges_of t))
      tris;
    (* boundary doors on the k = 0 edge: segments ((i, s-i), (i+1, s-i-1)) *)
    let boundary_doors =
      List.filter_map
        (fun i ->
          let e = edge_key ((i, s - i), (i + 1, s - i - 1)) in
          if is_door coloring e then Some e else None)
        (List.init s Fun.id)
    in
    let used = Hashtbl.create 16 in
    (* Walk from a boundary door; return the trichromatic cell if the
       walk ends inside. *)
    let walk_from door =
      Hashtbl.replace used door ();
      let rec go entered_through tri =
        if colors_of coloring tri = [ 0; 1; 2 ] then Some tri
        else begin
          (* a non-trichromatic triangle with a door has exactly two *)
          match
            List.find_opt
              (fun e -> edge_key e <> entered_through && is_door coloring e)
              (edges_of tri)
          with
          | None -> None (* cannot happen for valid colorings *)
          | Some exit_edge -> (
            let key = edge_key exit_edge in
            match
              List.filter (fun t -> t <> tri)
                (Option.value ~default:[] (Hashtbl.find_opt by_edge key))
            with
            | next :: _ -> go key next
            | [] ->
              (* exited through another boundary door *)
              Hashtbl.replace used key ();
              None)
        end
      in
      match Hashtbl.find_opt by_edge door with
      | Some (t :: _) -> go door t
      | _ -> None
    in
    let rec try_doors = function
      | [] -> None
      | d :: rest ->
        if Hashtbl.mem used d then try_doors rest
        else begin
          match walk_from d with
          | Some t -> Some t
          | None -> try_doors rest
        end
    in
    try_doors boundary_doors
  end

let random_coloring ~s ~seed =
  let tbl = Hashtbl.create 64 in
  let g = ref (Rsim_value.Prng.make seed) in
  List.iter
    (fun v ->
      let allowed = allowed_colors ~s v in
      let c, g' = Rsim_value.Prng.choose !g allowed in
      g := g';
      Hashtbl.replace tbl v c)
    (vertices ~s);
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some c -> c
    | None -> invalid_arg "Sperner.random_coloring: vertex out of range"
