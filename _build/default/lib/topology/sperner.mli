(** Sperner's lemma — the combinatorial engine behind the reduction's
    target.

    Theorem 21 reduces space lower bounds to the impossibility of
    wait-free k-set agreement, which the paper cites as following from
    topological arguments built on Sperner's lemma [14, 34, 41, 44]: any
    Sperner coloring of a subdivided simplex has an odd number (hence at
    least one) of panchromatic cells. Intuition for k = 2: processes'
    final views map the subdivided triangle's vertices to decisions
    respecting carriers; a trichromatic triangle is a set of mutually
    "compatible" views forced to output three distinct values —
    contradicting 2-set agreement.

    This module makes that engine executable for the 2-dimensional case:
    the standard subdivision of a triangle at scale [s], validity of
    Sperner colorings, exhaustive counting of trichromatic cells, and
    the constructive {e door-to-door walk} that finds one in O(s²)
    steps. Tests verify the parity claim (the count is odd) over random
    valid colorings.

    Coordinates: a vertex is [(i, j)] with [0 ≤ i + j ≤ s]; its third
    barycentric coordinate is [k = s − i − j]. Corners: [(s,0)] has
    color 0, [(0,s)] color 1, [(0,0)] color 2. A coloring is Sperner if
    each vertex uses a color whose corner coordinate is positive. *)

type vertex = int * int

type triangle = vertex * vertex * vertex

(** All subdivision vertices at scale [s] ([(s+1)(s+2)/2] of them). *)
val vertices : s:int -> vertex list

(** All cells ([s²] of them: upward and downward). *)
val triangles : s:int -> triangle list

(** The carrier constraint: colors vertex [(i,j)] may legally take. *)
val allowed_colors : s:int -> vertex -> int list

(** Whether the coloring is a valid Sperner coloring at scale [s]
    (colors in [0..2], carrier-respecting). *)
val valid : s:int -> coloring:(vertex -> int) -> bool

(** All trichromatic cells. Sperner's lemma: for valid colorings this
    list has odd length. *)
val trichromatic : s:int -> coloring:(vertex -> int) -> triangle list

(** The constructive proof: walk through 0–1 "doors" from the [k = 0]
    boundary edge until a trichromatic cell is reached. Returns [None]
    only if the coloring is invalid. *)
val find_by_walk : s:int -> coloring:(vertex -> int) -> triangle option

(** A uniformly random valid coloring (deterministic in the seed). *)
val random_coloring : s:int -> seed:int -> vertex -> int
