lib/value/prng.pp.ml: Array Int64 List
