lib/value/prng.pp.mli:
