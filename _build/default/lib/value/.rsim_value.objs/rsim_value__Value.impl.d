lib/value/value.pp.ml: List Ppx_deriving_runtime
