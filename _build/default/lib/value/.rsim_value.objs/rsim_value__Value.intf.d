lib/value/value.pp.mli: Format
