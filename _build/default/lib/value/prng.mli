(** Deterministic, splittable pseudo-random number generator.

    All randomized schedulers and tests in this repository draw from this
    PRNG rather than [Stdlib.Random], so that every execution is exactly
    reproducible from a seed. The generator is a 64-bit SplitMix64, which
    has good statistical quality for test-case generation and is trivially
    splittable. *)

type t

val make : int -> t

(** [int t bound] returns [(k, t')] with [0 <= k < bound].
    Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int * t

val bool : t -> bool * t

(** Uniform float in [0, 1). *)
val float : t -> float * t

(** [choose t xs] picks a uniform element of [xs]. Raises on empty list. *)
val choose : t -> 'a list -> 'a * t

(** [split t] returns two independent generators. *)
val split : t -> t * t

(** [shuffle t xs] is a uniform permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list * t
