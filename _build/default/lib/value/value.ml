type t =
  | Bot
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list
[@@deriving eq, ord, show { with_path = false }]

let to_string = show
let is_bot v = match v with Bot -> true | _ -> false

let int_exn = function
  | Int n -> n
  | v -> invalid_arg ("Value.int_exn: " ^ show v)

let float_exn = function
  | Float f -> f
  | v -> invalid_arg ("Value.float_exn: " ^ show v)

let str_exn = function
  | Str s -> s
  | v -> invalid_arg ("Value.str_exn: " ^ show v)

let pair_exn = function
  | Pair (a, b) -> (a, b)
  | v -> invalid_arg ("Value.pair_exn: " ^ show v)

let list_exn = function
  | List l -> l
  | v -> invalid_arg ("Value.list_exn: " ^ show v)

let bool_exn = function
  | Bool b -> b
  | v -> invalid_arg ("Value.bool_exn: " ^ show v)

let as_float_exn = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> invalid_arg ("Value.as_float_exn: " ^ show v)

let max_value a b = if compare a b >= 0 then a else b
let min_value a b = if compare a b <= 0 then a else b

let distinct vs =
  List.filter (fun v -> not (is_bot v)) vs
  |> List.sort_uniq compare
