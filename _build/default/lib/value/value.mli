(** Universal values stored in simulated shared memory.

    Every object of the simulated system (registers, snapshot components,
    max-registers, ...) holds a {!t}. Protocol states embed {!t} values
    freely. [Bot] is the initial value of every component ("the" ⊥ of the
    paper); it is distinct from every written value. *)

type t =
  | Bot  (** ⊥, the initial register/component value *)
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool

(** Total order; used for max-registers, tie-breaking, and deterministic
    iteration over value sets. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val show : t -> string
val to_string : t -> string

val is_bot : t -> bool

(** [int_exn v] projects an [Int]; raises [Invalid_argument] otherwise.
    Same for the other projections. *)
val int_exn : t -> int

val float_exn : t -> float
val str_exn : t -> string
val pair_exn : t -> t * t
val list_exn : t -> t list
val bool_exn : t -> bool

(** Numeric view: [Int n] as [float n], [Float f] as [f]. *)
val as_float_exn : t -> float

val max_value : t -> t -> t
val min_value : t -> t -> t

(** Distinct non-[Bot] values in a list, sorted, deduplicated. *)
val distinct : t list -> t list
