(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. State is a single 64-bit counter; each draw
   advances by the golden-gamma and mixes. *)

type t = int64

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = mix64 (Int64.of_int seed)

let next t =
  let t' = Int64.add t golden_gamma in
  (mix64 t', t')

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r, t' = next t in
  (* Use the top bits via logical shift for uniformity over small bounds. *)
  let k = Int64.to_int (Int64.shift_right_logical r 2) mod bound in
  (k, t')

let bool t =
  let r, t' = next t in
  (Int64.logand r 1L = 1L, t')

let float t =
  let r, t' = next t in
  let bits53 = Int64.to_int (Int64.shift_right_logical r 11) in
  (float_of_int bits53 /. 9007199254740992.0, t')

let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ ->
    let k, t' = int t (List.length xs) in
    (List.nth xs k, t')

let split t =
  let r1, t' = next t in
  (mix64 r1, t')

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let rec go i t =
    if i <= 0 then t
    else begin
      let j, t' = int t (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      go (i - 1) t'
    end
  in
  let t' = go (n - 1) t in
  (Array.to_list arr, t')
