lib/runtime/fiber.ml: Array Effect List Rsim_shmem
