lib/runtime/fiber.mli: Rsim_shmem
