module type OPS = sig
  type op
  type res
end

type status = Done | Pending | Failed of exn

module Make (M : OPS) = struct
  open Effect
  open Effect.Deep

  type _ Effect.t += Op : M.op -> M.res Effect.t

  let op o = perform (Op o)

  type trace_entry = { idx : int; pid : int; op : M.op; res : M.res }

  type result = {
    statuses : status array;
    trace : trace_entry list;
    ops_per_fiber : int array;
    total_ops : int;
  }

  (* A fiber that performed an operation is suspended here until the
     scheduler picks it. *)
  type suspended = { pending_op : M.op; resume : (M.res, unit) continuation }

  type slot = Fresh | Suspended of suspended | Finished of status

  let start_fiber pid body slots =
    (* Run [body pid] until its first Op, completion, or exception. *)
    match_with
      (fun () -> body pid)
      ()
      {
        retc = (fun () -> slots.(pid) <- Finished Done);
        exnc = (fun e -> slots.(pid) <- Finished (Failed e));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Op o ->
              Some
                (fun (k : (a, unit) continuation) ->
                  slots.(pid) <- Suspended { pending_op = o; resume = k })
            | _ -> None);
      }

  let run ?(max_ops = 1_000_000) ~sched ~apply bodies =
    let n = List.length bodies in
    let slots = Array.make n Fresh in
    List.iteri (fun pid body -> start_fiber pid body slots) bodies;
    let ops_per_fiber = Array.make n 0 in
    let rev_trace = ref [] in
    let total = ref 0 in
    let pending_pids () =
      let acc = ref [] in
      for pid = n - 1 downto 0 do
        match slots.(pid) with
        | Suspended _ -> acc := pid :: !acc
        | Fresh | Finished _ -> ()
      done;
      !acc
    in
    let rec loop sched =
      if !total >= max_ops then ()
      else
        match pending_pids () with
        | [] -> ()
        | live -> (
          match Rsim_shmem.Schedule.next sched ~live with
          | None -> ()
          | Some (pid, sched') ->
            (match slots.(pid) with
            | Suspended { pending_op; resume } ->
              let res = apply ~pid pending_op in
              rev_trace :=
                { idx = !total; pid; op = pending_op; res } :: !rev_trace;
              total := !total + 1;
              ops_per_fiber.(pid) <- ops_per_fiber.(pid) + 1;
              (* Resuming overwrites the slot with the fiber's next state
                 (Suspended on its next op, or Finished). *)
              continue resume res
            | Fresh | Finished _ -> assert false);
            loop sched')
    in
    loop sched;
    let statuses =
      Array.map
        (function
          | Finished s -> s
          | Suspended _ -> Pending
          | Fresh -> Done)
        slots
    in
    { statuses; trace = List.rev !rev_trace; ops_per_fiber; total_ops = !total }
end
