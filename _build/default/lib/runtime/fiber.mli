(** Cooperative fibers for the real system, with single-step scheduling.

    Real processes (the simulators and the augmented-snapshot code they
    run) are written in direct style. Every operation on the shared base
    object is performed through {!S.op}, which is an OCaml effect: the
    runtime captures the fiber's continuation there, and a {!Schedule}
    decides which fiber's pending operation executes next. Operations are
    applied atomically, one at a time, so the recorded trace *is* the
    linearization order of base-object operations — exactly the
    atomic-steps model of the paper (§2).

    Determinism: given the same fiber bodies, scheduler, and [apply]
    function, the execution and trace are identical. Fibers must not
    share mutable state other than through [apply]. *)

module type OPS = sig
  type op
  type res
end

type status =
  | Done  (** fiber body returned *)
  | Pending  (** has an operation waiting to be scheduled *)
  | Failed of exn  (** fiber body raised *)

module Make (M : OPS) : sig
  (** [op o] performs shared-memory operation [o]; only callable from
      inside a fiber body run by {!run}. *)
  val op : M.op -> M.res

  type trace_entry = { idx : int; pid : int; op : M.op; res : M.res }

  type result = {
    statuses : status array;
    trace : trace_entry list;  (** execution order = linearization order *)
    ops_per_fiber : int array;
    total_ops : int;
  }

  (** [run ?max_ops ~sched ~apply bodies] starts one fiber per element of
      [bodies] (pid = list position; each body receives its pid), then
      repeatedly: asks [sched] for a pid among fibers with a pending
      operation, applies that operation via [apply] (which typically
      mutates the shared base object), and resumes the fiber until its
      next operation or completion.

      Stops when no fiber is pending, the schedule is exhausted, or
      [max_ops] operations have executed. *)
  val run :
    ?max_ops:int ->
    sched:Rsim_shmem.Schedule.t ->
    apply:(pid:int -> M.op -> M.res) ->
    (int -> unit) list ->
    result
end
