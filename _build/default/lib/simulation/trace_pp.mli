(** Human-readable rendering of simulation runs.

    Debugging a revisionist simulation means reading three intertwined
    timelines: raw [H]-operations, the M-operations they comprise, and
    the simulators' journals (which simulated steps each M-operation
    carried, where pasts were revised, which hidden steps were
    inserted). These printers render each, plus a combined report. *)

(** The raw single-writer-snapshot operations, one line each. *)
val pp_htrace :
  Format.formatter -> Rsim_augmented.Aug.F.trace_entry list -> unit

(** The completed M-operations of an object, in completion order. *)
val pp_mops : Format.formatter -> Rsim_augmented.Aug.t -> unit

(** One simulator's journal: its M-ops, revisions (with ζ), adopted
    outputs and final β·ξ tail. *)
val pp_journal : Format.formatter -> sim:int -> Journal.t -> unit

(** Everything about a finished run: architecture, per-simulator
    journals, M-operation log, and outcome. *)
val pp_run : Format.formatter -> Harness.spec -> Harness.result -> unit
