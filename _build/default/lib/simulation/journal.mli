(** Per-simulator journal of simulation events.

    Each simulator records the M-operations it applies, the revisions of
    its simulated processes' pasts, and its final locally-simulated
    steps. The journal, together with the augmented snapshot's own log
    and trace, lets {!Analysis} reconstruct the simulated execution of
    Lemma 26 and replay it against the protocol. *)

open Rsim_value

(** A locally simulated ("hidden") step of a simulated process. *)
type zeta_step =
  | Zscan of Value.t array  (** a scan and the view it returned *)
  | Zupdate of int * Value.t

type event =
  | Jscan of { serial : int; view : Value.t array }
      (** an applied M.Scan; simulates a scan by this simulator's first
          process *)
  | Jbu of { serial : int; updates : (int * Value.t) list; atomic : bool }
      (** an applied M.Block-Update; its g-th update simulates an update
          by this simulator's g-th process *)
  | Jrevise of {
      after_serial : int;  (** the serial of the M.Scan δ it follows *)
      proc : int;  (** 0-based index within this simulator's processes *)
      source_serial : int;  (** serial of the atomic Jbu whose view was used *)
      zeta : zeta_step list;  (** the inserted hidden execution ζ *)
    }
  | Jfinal of {
      beta : (int * Value.t) list;  (** the constructed m-component block *)
      xi : zeta_step list;  (** first process's terminating solo run *)
      output : Value.t;
    }
  | Jdecided of { proc : int; value : Value.t }
      (** a simulated process output during construction; the simulator
          adopts its value *)

type t

val create : unit -> t

(** Number of M-operations this simulator has completed. *)
val serial : t -> int

(** Record the completion of one M-operation; returns its serial
    (1-based). *)
val bump : t -> int

val push : t -> event -> unit

(** Events in the order they were recorded. *)
val events : t -> event list
