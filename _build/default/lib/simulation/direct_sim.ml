open Rsim_value
open Rsim_shmem
open Rsim_augmented

type t = {
  aug : Aug.t;
  me : int;
  mutable proc : Proc.t;
  journal : Journal.t;
  mutable output : Value.t option;
  mutable bus : int;
}

let make ~aug ~me ~proc ~journal =
  { aug; me; proc; journal; output = None; bus = 0 }

let output t = t.output
let bu_count t = t.bus

let body t _pid =
  let rec loop () =
    match Proc.poised t.proc with
    | Proc.Scan ->
      let view = Aug.scan t.aug ~me:t.me in
      let serial = Journal.bump t.journal in
      Journal.push t.journal (Journal.Jscan { serial; view });
      t.proc <- Proc.step_scan t.proc view;
      loop ()
    | Proc.Update (j, v) ->
      let result = Aug.block_update t.aug ~me:t.me [ (j, v) ] in
      t.bus <- t.bus + 1;
      let serial = Journal.bump t.journal in
      let atomic = match result with `View _ -> true | `Yield -> false in
      Journal.push t.journal
        (Journal.Jbu { serial; updates = [ (j, v) ]; atomic });
      t.proc <- Proc.step_update t.proc;
      loop ()
    | Proc.Output y ->
      t.output <- Some y;
      Journal.push t.journal (Journal.Jdecided { proc = 0; value = y })
  in
  loop ()
