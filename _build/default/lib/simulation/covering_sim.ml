open Rsim_value
open Rsim_shmem
open Rsim_augmented

exception Terminated

type t = {
  aug : Aug.t;
  me : int;
  procs : Proc.t array;  (* p_{i,1} .. p_{i,m}; slot g-1 holds p_{i,g} *)
  journal : Journal.t;
  local_cap : int;
  m : int;
  mutable output : Value.t option;
  mutable bus : int;
}

let make ~aug ~me ~procs ~journal ~local_cap =
  let m = Aug.m aug in
  if Array.length procs <> m then
    invalid_arg "Covering_sim.make: need exactly m simulated processes";
  { aug; me; procs; journal; local_cap; m; output = None; bus = 0 }

let output t = t.output
let bu_count t = t.bus

let decide t ~proc value =
  t.output <- Some value;
  Journal.push t.journal (Journal.Jdecided { proc; value });
  raise Terminated

(* Locally simulate process slot [g] against a private copy of M whose
   contents start as [view], applying only updates to components in
   [allowed], until it is poised to update a component outside [allowed]
   or outputs. Returns the hidden steps ζ (in order) and the final
   state. *)
let local_simulate t ~g ~view ~allowed =
  let rec go p local steps zeta =
    if steps > t.local_cap then
      failwith
        (Printf.sprintf
           "Covering_sim: local simulation of process %d exceeded %d steps — \
            protocol is not obstruction-free within the cap"
           g t.local_cap);
    match Proc.poised p with
    | Proc.Scan ->
      let v = Snapshot.scan local in
      go (Proc.step_scan p v) local (steps + 1) (Journal.Zscan v :: zeta)
    | Proc.Update (j, v) when List.mem j allowed ->
      go (Proc.step_update p) (Snapshot.update local j v) (steps + 1)
        (Journal.Zupdate (j, v) :: zeta)
    | Proc.Update (j, v) -> (p, List.rev zeta, `Poised (j, v))
    | Proc.Output y -> (p, List.rev zeta, `Out y)
  in
  go t.procs.(g) (Snapshot.of_view view) 0 []

(* Apply the M.Block-Update that simulates the block update [bu]
   (returned by Construct(s)); afterwards processes 1..s have performed
   their poised updates. Returns the view if atomic. *)
let simulate_block t bu =
  let result = Aug.block_update t.aug ~me:t.me bu in
  t.bus <- t.bus + 1;
  let serial = Journal.bump t.journal in
  let atomic = match result with `View _ -> true | `Yield -> false in
  Journal.push t.journal (Journal.Jbu { serial; updates = bu; atomic });
  List.iteri (fun g _ -> t.procs.(g) <- Proc.step_update t.procs.(g)) bu;
  (result, serial)

(* Algorithm 6. Returns the constructed block update [(j1,v1)...(jr,vr)]
   where process slot g-1 is poised to perform Update (jg, vg). *)
let rec construct t r =
  if r = 1 then begin
    (* Base case: simulate p_{i,1}'s next step (a scan) with M.Scan. *)
    let view = Aug.scan t.aug ~me:t.me in
    let serial = Journal.bump t.journal in
    Journal.push t.journal (Journal.Jscan { serial; view });
    t.procs.(0) <- Proc.step_scan t.procs.(0) view;
    match Proc.poised t.procs.(0) with
    | Proc.Update (j, v) -> [ (j, v) ]
    | Proc.Output y -> decide t ~proc:0 y
    | Proc.Scan ->
      failwith "Covering_sim: protocol violates Assumption 1 (scan after scan)"
  end
  else begin
    (* [seen] holds (component set, view, serial of the atomic
       Block-Update that returned the view) — the paper's A. *)
    let seen = ref [] in
    let rec loop () =
      let bu = construct t (r - 1) in
      let comps = List.sort Int.compare (List.map fst bu) in
      match
        List.find_opt (fun (comps', _, _) -> comps' = comps) !seen
      with
      | Some (_, view, source_serial) -> begin
        (* Revise the past of p_{i,r} using the stored view. *)
        let p', zeta, outcome = local_simulate t ~g:(r - 1) ~view ~allowed:comps in
        t.procs.(r - 1) <- p';
        Journal.push t.journal
          (Journal.Jrevise
             {
               after_serial = Journal.serial t.journal;
               proc = r - 1;
               source_serial;
               zeta;
             });
        match outcome with
        | `Poised (j, v) -> bu @ [ (j, v) ]
        | `Out y -> decide t ~proc:(r - 1) y
      end
      | None -> begin
        match simulate_block t bu with
        | `View view, serial ->
          seen := (comps, view, serial) :: !seen;
          loop ()
        | `Yield, _ -> loop ()
      end
    in
    loop ()
  end

(* Algorithm 7. *)
let body t _pid =
  try
    let beta = construct t t.m in
    (* Locally simulate β followed by p_{i,1}'s terminating solo
       execution; restore states afterwards (they are only stored values
       here, so we simply do not overwrite [t.procs]). *)
    let local =
      List.fold_left
        (fun mem (j, v) -> Snapshot.update mem j v)
        (Snapshot.create ~m:t.m) beta
    in
    let p1 = Proc.step_update t.procs.(0) in
    let rec solo p local steps xi =
      if steps > t.local_cap then
        failwith
          "Covering_sim: final solo execution exceeded the cap — protocol is \
           not obstruction-free within the cap";
      match Proc.poised p with
      | Proc.Scan ->
        let v = Snapshot.scan local in
        solo (Proc.step_scan p v) local (steps + 1) (Journal.Zscan v :: xi)
      | Proc.Update (j, v) ->
        solo (Proc.step_update p) (Snapshot.update local j v) (steps + 1)
          (Journal.Zupdate (j, v) :: xi)
      | Proc.Output y -> (y, List.rev xi)
    in
    let y, xi = solo p1 local 0 [] in
    Journal.push t.journal (Journal.Jfinal { beta; xi; output = y });
    t.output <- Some y
  with Terminated -> ()
