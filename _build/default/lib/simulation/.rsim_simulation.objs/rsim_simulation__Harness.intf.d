lib/simulation/harness.mli: Journal Proc Rsim_augmented Rsim_runtime Rsim_shmem Rsim_tasks Rsim_value Schedule Stdlib Value
