lib/simulation/covering_witness.mli: Proc Rsim_shmem Rsim_tasks Rsim_value Run Value
