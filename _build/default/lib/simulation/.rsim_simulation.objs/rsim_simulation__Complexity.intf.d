lib/simulation/complexity.mli:
