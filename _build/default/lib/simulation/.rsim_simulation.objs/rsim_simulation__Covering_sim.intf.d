lib/simulation/covering_sim.mli: Journal Rsim_augmented Rsim_shmem Rsim_value Value
