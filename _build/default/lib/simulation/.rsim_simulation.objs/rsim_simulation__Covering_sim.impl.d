lib/simulation/covering_sim.ml: Array Aug Int Journal List Printf Proc Rsim_augmented Rsim_shmem Rsim_value Snapshot Value
