lib/simulation/trace_pp.mli: Format Harness Journal Rsim_augmented
