lib/simulation/analysis.mli: Format Harness
