lib/simulation/complexity.ml:
