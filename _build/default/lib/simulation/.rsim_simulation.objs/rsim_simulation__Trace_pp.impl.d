lib/simulation/trace_pp.ml: Array Aug Format Harness Hrep Journal List Printf Rsim_augmented Rsim_value String Value Vts
