lib/simulation/analysis.ml: Array Aug Aug_spec Format Harness Hashtbl Int Journal List Proc Rsim_augmented Rsim_shmem Rsim_value Snapshot Value Vts
