lib/simulation/journal.mli: Rsim_value Value
