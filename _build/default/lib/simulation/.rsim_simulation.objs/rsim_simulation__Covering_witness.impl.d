lib/simulation/covering_witness.ml: Fun List Printf Proc Rsim_shmem Rsim_tasks Rsim_value Run Schedule Value
