lib/simulation/harness.ml: Array Aug Buffer Covering_sim Direct_sim Fun Journal List Logs Option Printexc Printf Proc Rsim_augmented Rsim_runtime Rsim_shmem Rsim_tasks Rsim_value String Value
