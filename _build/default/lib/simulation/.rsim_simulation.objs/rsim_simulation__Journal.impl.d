lib/simulation/journal.ml: List Rsim_value Value
