lib/simulation/direct_sim.ml: Aug Journal Proc Rsim_augmented Rsim_shmem Rsim_value Value
