(** Constructive covering adversaries.

    The space lower bounds are proved by exhibiting adversarial
    executions in which "covering" processes hold stale pending writes
    that later obliterate a full memory configuration. This module
    builds such executions {e deterministically} (no random search) for
    protocols running in the simulated system:

    - {!phase_shifted} drives two processes in alternating turns so that
      each only ever observes the other's dominated traces — the
      schedule family that defeats round-based full-bank protocols such
      as {!Rsim_protocols.Racing} even at [m = n] banks;
    - {!stale_writer} parks one process on its initial pending write
      while another runs to completion, then releases it — the textbook
      covering scenario that breaks any local-decision protocol at
      [m < n].

    Both return the first violating execution found in a small bounded,
    deterministic search, making the witness experiments (E5b)
    independent of random-schedule luck. *)

open Rsim_value
open Rsim_shmem

type witness = {
  config : Run.config;  (** the final configuration *)
  outputs : (int * Value.t) list;
  description : string;  (** how the schedule was built *)
}

(** [phase_shifted ~procs ~m ~task ~max_turn] searches schedules that
    alternate turns of [a] and [b] steps between processes 0 and 1
    ([1 ≤ a, b ≤ max_turn]), finishing each process solo, and returns
    the first execution whose outputs violate [task]. *)
val phase_shifted :
  procs:Proc.t list ->
  m:int ->
  task:Rsim_tasks.Task.t ->
  max_turn:int ->
  witness option

(** [stale_writer ~procs ~m ~task] parks, in turn, each process after
    [k] initial steps (for small [k]), runs the others to completion
    round-robin, then releases the parked process solo; returns the
    first violating execution. *)
val stale_writer :
  procs:Proc.t list -> m:int -> task:Rsim_tasks.Task.t -> witness option
