(** The step-complexity bounds of §4.5 (Lemmas 29–31).

    [a m r] is the recurrence bounding the number of M.Block-Updates a
    covering simulator applies inside one call to [Construct(r)] when all
    its Block-Updates are atomic:

    {[ a(1) = 0
       a(r) = (C(m, r-1) + 1) · a(r-1) + C(m, r-1) ]}

    [b m i] bounds the total number of M.Block-Updates applied by the
    i-th covering simulator (1-based; the paper's q_i):

    {[ b(1) = a(m)
       b(i) = (a(m-1) + 1) · Σ_{j<i} b(j) + (m+1)·a(m-1) + m ]}

    All arithmetic saturates at [max_int / 2] rather than overflowing;
    [is_saturated] detects that. The closed-form sanity bounds
    [a(r) ≤ 2^{m(r-1)}] and [b(i) ≤ 2^{i·m·(m-1)} · const] are checked in
    tests. *)

(** Binomial coefficient, saturating. *)
val choose : int -> int -> int

(** [a ~m r]; raises [Invalid_argument] unless [1 <= r <= m]. *)
val a : m:int -> int -> int

(** [b ~m i] for the i-th covering simulator, [i >= 1]. *)
val b : m:int -> int -> int

(** Lemma 31: an all-covering simulation of [f] simulators takes at most
    [(2f+7)·b(f) + 3] steps per simulator on the single-writer
    snapshot. *)
val step_bound : f:int -> m:int -> int

(** Upper bound [2^{f·m²}] from Theorem 21's statement (saturating). *)
val two_pow_fm2 : f:int -> m:int -> int

val is_saturated : int -> bool
