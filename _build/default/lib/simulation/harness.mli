(** End-to-end revisionist simulation (Theorem 21's construction).

    Wires up the real system of Figure 1: [f] simulators — [f − d]
    covering simulators with the lowest identifiers, each simulating [m]
    processes, and [d] direct simulators, each simulating one process —
    over one [m]-component augmented snapshot, which is itself
    implemented from an [f]-component single-writer snapshot whose every
    operation is a scheduling point.

    Requires [(f − d)·m + d ≤ n]: enough simulated processes to go
    around. Simulated process [p] gets the input of its simulator
    (colorless tasks allow duplicated inputs), so if the simulation is
    wait-free and the protocol solves the task for [n] processes, the
    [f] simulators' outputs solve the task for their own inputs — the
    reduction of Theorem 21. *)

open Rsim_value
open Rsim_shmem

type spec = {
  protocol : int -> Value.t -> Proc.t;
      (** factory: simulated pid, input ↦ initial process *)
  n : int;  (** simulated processes available *)
  m : int;  (** components of the simulated snapshot M *)
  f : int;  (** simulators *)
  d : int;  (** direct simulators (the paper's x); the rest cover *)
  inputs : Value.t list;  (** one input per simulator (length [f]) *)
}

type result = {
  outputs : (int * Value.t) list;  (** simulator pid ↦ output *)
  aug : Rsim_augmented.Aug.t;
  trace : Rsim_augmented.Aug.F.trace_entry list;
  journals : Journal.t array;
  partition : int array array;  (** simulator ↦ global simulated pids *)
  statuses : Rsim_runtime.Fiber.status array;
  ops_per_sim : int array;  (** H-operations per simulator *)
  bu_counts : int array;  (** M.Block-Updates applied per simulator *)
  total_ops : int;
  all_done : bool;
}

(** The assignment of simulated processes to simulators: covering
    simulator [i < f−d] gets pids [i·m .. i·m+m−1]; direct simulator
    [f−d+j] gets pid [(f−d)·m + j]. *)
val partition : m:int -> f:int -> d:int -> int array array

(** Run the simulation to completion (or until [max_ops] H-operations).
    [local_cap] bounds each hidden local simulation. *)
val run :
  ?max_ops:int -> ?local_cap:int -> sched:Schedule.t -> spec -> result

(** Check the simulators' outputs against a task, using the simulators'
    inputs. Fails if any simulator raised, or if not all simulators
    output. *)
val validate : spec -> result -> task:Rsim_tasks.Task.t -> (unit, string) Stdlib.result

(** ASCII rendering of Figure 1 for this spec. *)
val architecture : spec -> string
