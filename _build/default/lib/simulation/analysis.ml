open Rsim_value
open Rsim_shmem
open Rsim_augmented

type stats = {
  n_lin_items : int;
  n_revisions : int;
  n_hidden_steps : int;
  n_final_steps : int;
  n_sim_steps : int;
}

type report = { ok : bool; errors : string list; stats : stats }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>ok=%b lin=%d revisions=%d hidden=%d final=%d sim-steps=%d@,errors:@,%a@]"
    r.ok r.stats.n_lin_items r.stats.n_revisions r.stats.n_hidden_steps
    r.stats.n_final_steps r.stats.n_sim_steps
    (Format.pp_print_list Format.pp_print_string)
    r.errors

(* One item of the simulated execution σ̄, positioned on the real
   timeline: (trace index, phase) with phase 0 for linearized M-steps
   and 1 for ζ insertions at the same index. *)
type sim_item =
  | Real_scan of { sim : int; view : Value.t array }
  | Real_update of { sim : int; g : int; comp : int; value : Value.t }
  | Hidden of { sim : int; g : int; zeta : Journal.zeta_step list }

let check (spec : Harness.spec) (result : Harness.result) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let empty_stats =
    { n_lin_items = 0; n_revisions = 0; n_hidden_steps = 0; n_final_steps = 0;
      n_sim_steps = 0 }
  in
  if not result.Harness.all_done then begin
    err "analysis requires a completed run (some simulator still pending)";
    { ok = false; errors = List.rev !errors; stats = empty_stats }
  end
  else begin
    let aug = result.Harness.aug in
    let trace = result.Harness.trace in
    let part = result.Harness.partition in

    (* ---- 1. Match each simulator's completed M-ops (Aug log) with its
       journal events, in per-simulator order. ---- *)
    let log = Aug.log aug in
    let per_sim_mops = Array.make spec.Harness.f [] in
    List.iter
      (fun mop ->
        let p = Aug.mop_proc mop in
        per_sim_mops.(p) <- mop :: per_sim_mops.(p))
      log;
    Array.iteri (fun i l -> per_sim_mops.(i) <- List.rev l) per_sim_mops;
    (* serial (1-based) -> mop, per simulator; plus lookup tables used to
       map linearized items back to journal serials. *)
    let scan_target = Hashtbl.create 64 in
    (* (sim, end_idx) -> unit: a completed M.Scan *)
    let bu_info = Hashtbl.create 64 in
    (* (sim, ts) -> (serial, updates, x_idx, last option) *)
    let serial_to_mop = Hashtbl.create 64 in
    Array.iteri
      (fun i mops ->
        let journal_ops =
          List.filter_map
            (function
              | (Journal.Jscan _ | Journal.Jbu _) as e -> Some e
              | Journal.Jrevise _ | Journal.Jfinal _ | Journal.Jdecided _ ->
                None)
            (Journal.events result.Harness.journals.(i))
        in
        (if List.length mops <> List.length journal_ops then
           err "simulator %d: %d M-ops in Aug log but %d in journal" i
             (List.length mops) (List.length journal_ops));
        List.iteri
          (fun k mop ->
            match (mop, List.nth_opt journal_ops k) with
            | Aug.Scan_op { end_idx; _ }, Some (Journal.Jscan { serial; _ }) ->
              Hashtbl.replace scan_target (i, end_idx) serial;
              Hashtbl.replace serial_to_mop (i, serial) mop
            | ( Aug.Bu_op { ts; updates; x_idx; result = bures; _ },
                Some (Journal.Jbu { serial; _ }) ) ->
              let last =
                match bures with
                | Aug.Atomic { last; _ } -> Some last
                | Aug.Yield -> None
              in
              Hashtbl.replace bu_info
                (i, Vts.to_array ts)
                (serial, updates, x_idx, last);
              Hashtbl.replace serial_to_mop (i, serial) mop
            | _, _ -> err "simulator %d: journal/log kind mismatch at op %d" i k)
          mops)
      per_sim_mops;

    (* ---- 2. Linearized M-steps, as σ items with positions. ---- *)
    let litems = Aug_spec.linearize aug trace in
    let positioned = ref [] in
    let push pos phase item = positioned := ((pos, phase), item) :: !positioned in
    List.iter
      (fun litem ->
        match litem with
        | Aug_spec.L_scan { proc; view; end_idx } ->
          push end_idx 0 (Real_scan { sim = proc; view })
        | Aug_spec.L_update { writer; ts; comp; value; lin_idx; _ } -> (
          match Hashtbl.find_opt bu_info (writer, Vts.to_array ts) with
          | None ->
            err "update by q%d (ts %s) has no completed Block-Update" writer
              (Vts.show ts)
          | Some (_, updates, _, _) -> (
            match
              List.find_index (fun (j, _) -> j = comp) updates
            with
            | None ->
              err "update to %d not found in its Block-Update by q%d" comp
                writer
            | Some g ->
              push lin_idx 0 (Real_update { sim = writer; g; comp; value }))))
      litems;

    (* ---- 3. ζ insertions at the window starts of their source
       Block-Updates. ---- *)
    let n_revisions = ref 0 in
    let n_hidden = ref 0 in
    Array.iteri
      (fun i journal ->
        List.iter
          (function
            | Journal.Jrevise { proc; source_serial; zeta; _ } -> (
              incr n_revisions;
              n_hidden := !n_hidden + List.length zeta;
              match Hashtbl.find_opt serial_to_mop (i, source_serial) with
              | Some (Aug.Bu_op { x_idx; result = Aug.Atomic { last; _ }; _ })
                -> (
                match Aug_spec.window_start ~trace ~last ~x_idx with
                | Some l_idx -> push l_idx 1 (Hidden { sim = i; g = proc; zeta })
                | None ->
                  err "simulator %d: cannot locate window start of source BU"
                    i)
              | Some _ | None ->
                err
                  "simulator %d: revision sourced from serial %d which is not \
                   an atomic Block-Update"
                  i source_serial)
            | Journal.Jscan _ | Journal.Jbu _ | Journal.Jfinal _
            | Journal.Jdecided _ -> ())
          (Journal.events journal))
      result.Harness.journals;

    (* Stable sort by (position, phase); original push order breaks ties
       (it already respects linearization order for same-position
       updates). *)
    let items =
      List.stable_sort
        (fun ((p1, ph1), _) ((p2, ph2), _) ->
          let c = Int.compare p1 p2 in
          if c <> 0 then c else Int.compare ph1 ph2)
        (List.rev !positioned)
    in

    (* ---- 4. Replay σ̄ from the initial configuration. ---- *)
    let inputs = Array.of_list spec.Harness.inputs in
    let sim_of_pid = Hashtbl.create 16 in
    Array.iteri
      (fun i pids -> Array.iter (fun pid -> Hashtbl.replace sim_of_pid pid i) pids)
      part;
    let procs = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pid i -> Hashtbl.replace procs pid (spec.Harness.protocol pid inputs.(i)))
      sim_of_pid;
    let mem = ref (Snapshot.create ~m:spec.Harness.m) in
    let n_sim_steps = ref 0 in
    let get_proc pid = Hashtbl.find procs pid in
    let set_proc pid p = Hashtbl.replace procs pid p in
    let step_scan_checked ~what pid view =
      incr n_sim_steps;
      let p = get_proc pid in
      match Proc.poised p with
      | Proc.Scan ->
        let actual = Snapshot.scan !mem in
        if not (Array.for_all2 Value.equal actual view) then
          err "%s: scan by p%d saw a view different from replayed M" what pid;
        set_proc pid (Proc.step_scan p actual)
      | Proc.Update _ | Proc.Output _ ->
        err "%s: p%d was not poised to scan" what pid
    in
    let step_update_checked ~what pid comp value =
      incr n_sim_steps;
      let p = get_proc pid in
      match Proc.poised p with
      | Proc.Update (j, v) when j = comp && Value.equal v value ->
        mem := Snapshot.update !mem comp value;
        set_proc pid (Proc.step_update p)
      | Proc.Update (j, v) ->
        err "%s: p%d poised to update (%d,%s), not (%d,%s)" what pid j
          (Value.show v) comp (Value.show value)
      | Proc.Scan | Proc.Output _ ->
        err "%s: p%d was not poised to update" what pid
    in
    List.iter
      (fun (_, item) ->
        match item with
        | Real_scan { sim; view } ->
          step_scan_checked ~what:"Lemma 26 (scan)" part.(sim).(0) view
        | Real_update { sim; g; comp; value } ->
          if g >= Array.length part.(sim) then
            err "Block-Update by q%d touches process %d beyond its partition"
              sim g
          else
            step_update_checked ~what:"Lemma 26 (update)" part.(sim).(g) comp
              value
        | Hidden { sim; g; zeta } ->
          let pid = part.(sim).(g) in
          List.iter
            (function
              | Journal.Zscan view ->
                step_scan_checked ~what:"Lemma 26 (hidden scan)" pid view
              | Journal.Zupdate (j, v) ->
                step_update_checked ~what:"Lemma 26 (hidden update)" pid j v)
            zeta)
      items;

    (* ---- 5. Append each covering simulator's β·ξ tail (Lemma 27) and
       check outputs. ---- *)
    let n_final = ref 0 in
    Array.iteri
      (fun i journal ->
        List.iter
          (function
            | Journal.Jfinal { beta; xi; output } ->
              List.iteri
                (fun g (j, v) ->
                  incr n_final;
                  step_update_checked ~what:"Lemma 27 (final block)"
                    part.(i).(g) j v)
                beta;
              let pid = part.(i).(0) in
              List.iter
                (function
                  | Journal.Zscan view ->
                    incr n_final;
                    step_scan_checked ~what:"Lemma 27 (final solo)" pid view
                  | Journal.Zupdate (j, v) ->
                    incr n_final;
                    step_update_checked ~what:"Lemma 27 (final solo)" pid j v)
                xi;
              (match Proc.output (get_proc pid) with
              | Some y when Value.equal y output -> ()
              | Some y ->
                err
                  "Lemma 27: simulator %d output %s but its replayed process \
                   output %s"
                  i (Value.show output) (Value.show y)
              | None ->
                err "Lemma 27: simulator %d's final solo run did not terminate"
                  i)
            | Journal.Jdecided { proc; value } -> (
              let pid = part.(i).(proc) in
              match Proc.output (get_proc pid) with
              | Some y when Value.equal y value -> ()
              | Some y ->
                err
                  "Lemma 26: simulator %d adopted %s but replayed p%d output \
                   %s"
                  i (Value.show value) pid (Value.show y)
              | None ->
                err "Lemma 26: simulator %d adopted a value but replayed p%d \
                     never output"
                  i pid)
            | Journal.Jscan _ | Journal.Jbu _ | Journal.Jrevise _ -> ())
          (Journal.events journal))
      result.Harness.journals;

    (* Every simulator's harness-reported output must match its journal. *)
    List.iter
      (fun (i, v) ->
        let journal_out =
          List.find_map
            (function
              | Journal.Jfinal { output; _ } -> Some output
              | Journal.Jdecided { value; _ } -> Some value
              | _ -> None)
            (Journal.events result.Harness.journals.(i))
        in
        match journal_out with
        | Some y when Value.equal y v -> ()
        | Some y ->
          err "simulator %d reported %s but journalled %s" i (Value.show v)
            (Value.show y)
        | None -> err "simulator %d reported an output but journalled none" i)
      result.Harness.outputs;

    let stats =
      {
        n_lin_items = List.length litems;
        n_revisions = !n_revisions;
        n_hidden_steps = !n_hidden;
        n_final_steps = !n_final;
        n_sim_steps = !n_sim_steps + !n_final;
      }
    in
    { ok = !errors = []; errors = List.rev !errors; stats }
  end
