open Rsim_value
open Rsim_shmem
open Rsim_augmented

let src = Logs.Src.create "rsim.harness" ~doc:"Revisionist simulation harness"

module Log = (val Logs.src_log src : Logs.LOG)

type spec = {
  protocol : int -> Value.t -> Proc.t;
  n : int;
  m : int;
  f : int;
  d : int;
  inputs : Value.t list;
}

type result = {
  outputs : (int * Value.t) list;
  aug : Aug.t;
  trace : Aug.F.trace_entry list;
  journals : Journal.t array;
  partition : int array array;
  statuses : Rsim_runtime.Fiber.status array;
  ops_per_sim : int array;
  bu_counts : int array;
  total_ops : int;
  all_done : bool;
}

let partition ~m ~f ~d =
  Array.init f (fun i ->
      if i < f - d then Array.init m (fun g -> (i * m) + g)
      else [| ((f - d) * m) + (i - (f - d)) |])

let check_spec spec =
  if spec.f < 1 then invalid_arg "Harness: f must be >= 1";
  if spec.d < 0 || spec.d > spec.f then invalid_arg "Harness: need 0 <= d <= f";
  if spec.m < 1 then invalid_arg "Harness: m must be >= 1";
  if ((spec.f - spec.d) * spec.m) + spec.d > spec.n then
    invalid_arg
      (Printf.sprintf "Harness: (f-d)*m + d = %d exceeds n = %d"
         (((spec.f - spec.d) * spec.m) + spec.d)
         spec.n);
  if List.length spec.inputs <> spec.f then
    invalid_arg "Harness: need exactly f inputs"

let run ?(max_ops = 2_000_000) ?(local_cap = 100_000) ~sched spec =
  check_spec spec;
  let aug = Aug.create ~f:spec.f ~m:spec.m () in
  let part = partition ~m:spec.m ~f:spec.f ~d:spec.d in
  let journals = Array.init spec.f (fun _ -> Journal.create ()) in
  let inputs = Array.of_list spec.inputs in
  let covering = Array.make spec.f None in
  let direct = Array.make spec.f None in
  let bodies =
    List.init spec.f (fun i ->
        if i < spec.f - spec.d then begin
          let procs =
            Array.map (fun pid -> spec.protocol pid inputs.(i)) part.(i)
          in
          let sim =
            Covering_sim.make ~aug ~me:i ~procs ~journal:journals.(i) ~local_cap
          in
          covering.(i) <- Some sim;
          Covering_sim.body sim
        end
        else begin
          let pid = part.(i).(0) in
          let sim =
            Direct_sim.make ~aug ~me:i
              ~proc:(spec.protocol pid inputs.(i))
              ~journal:journals.(i)
          in
          direct.(i) <- Some sim;
          Direct_sim.body sim
        end)
  in
  Log.debug (fun k ->
      k "starting simulation: n=%d m=%d f=%d d=%d" spec.n spec.m spec.f spec.d);
  let fr = Aug.F.run ~max_ops ~sched ~apply:(Aug.apply aug) bodies in
  Log.debug (fun k ->
      k "simulation finished: %d H-operations, all_done=%b" fr.Aug.F.total_ops
        (Array.for_all
           (function Rsim_runtime.Fiber.Done -> true | _ -> false)
           fr.Aug.F.statuses));
  let output_of i =
    match (covering.(i), direct.(i)) with
    | Some c, _ -> Covering_sim.output c
    | _, Some d -> Direct_sim.output d
    | None, None -> None
  in
  let bu_of i =
    match (covering.(i), direct.(i)) with
    | Some c, _ -> Covering_sim.bu_count c
    | _, Some d -> Direct_sim.bu_count d
    | None, None -> 0
  in
  let outputs =
    List.filter_map
      (fun i -> Option.map (fun v -> (i, v)) (output_of i))
      (List.init spec.f Fun.id)
  in
  {
    outputs;
    aug;
    trace = fr.Aug.F.trace;
    journals;
    partition = part;
    statuses = fr.Aug.F.statuses;
    ops_per_sim = fr.Aug.F.ops_per_fiber;
    bu_counts = Array.init spec.f bu_of;
    total_ops = fr.Aug.F.total_ops;
    all_done =
      Array.for_all
        (function Rsim_runtime.Fiber.Done -> true | _ -> false)
        fr.Aug.F.statuses;
  }

let validate spec result ~task =
  let failed =
    Array.to_list result.statuses
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) ->
           match s with
           | Rsim_runtime.Fiber.Failed e -> Some (i, Printexc.to_string e)
           | Rsim_runtime.Fiber.Done | Rsim_runtime.Fiber.Pending -> None)
  in
  match failed with
  | (i, e) :: _ -> Error (Printf.sprintf "simulator %d raised: %s" i e)
  | [] ->
    if not result.all_done then Error "simulation did not complete (not wait-free within the budget?)"
    else if List.length result.outputs <> spec.f then
      Error "not every simulator output a value"
    else
      Rsim_tasks.Task.check task ~inputs:spec.inputs
        ~outputs:(List.map snd result.outputs)

let architecture spec =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let covering = spec.f - spec.d in
  add "REAL SYSTEM (f = %d simulators)\n" spec.f;
  add "  q0 .. q%d : covering simulators (%d processes each)\n" (covering - 1)
    spec.m;
  if spec.d > 0 then
    add "  q%d .. q%d : direct simulators (1 process each)\n" covering
      (spec.f - 1);
  add "        |\n";
  add "        | access\n";
  add "        v\n";
  add "  [ %d-component single-writer snapshot H ]\n" spec.f;
  add "        |  used to implement\n";
  add "        v\n";
  add "  [ %d-component augmented snapshot M ]\n" spec.m;
  add "        |  used to simulate block updates to\n";
  add "        v\n";
  add "  [ %d-component multi-writer snapshot M ]\n" spec.m;
  add "        ^\n";
  add "        | accessed by\n";
  add "  SIMULATED SYSTEM (n = %d processes; %d in use)\n" spec.n
    (((spec.f - spec.d) * spec.m) + spec.d);
  let part = partition ~m:spec.m ~f:spec.f ~d:spec.d in
  Array.iteri
    (fun i pids ->
      add "  P%d = {%s}%s\n" i
        (String.concat ","
           (List.map (fun p -> "p" ^ string_of_int p) (Array.to_list pids)))
        (if i < covering then "  (covering)" else "  (direct)"))
    part;
  Buffer.contents b
