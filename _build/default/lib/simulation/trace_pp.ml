open Rsim_value
open Rsim_augmented

let pp_updates fmt updates =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (List.map
          (fun (j, v) -> Printf.sprintf "%d:=%s" j (Value.show v))
          updates))

let pp_view fmt view =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (List.map Value.show (Array.to_list view)))

let pp_htrace fmt trace =
  List.iter
    (fun (e : Aug.F.trace_entry) ->
      match e.op with
      | Aug.Ops.Hscan -> Format.fprintf fmt "%4d q%d H.scan@." e.idx e.pid
      | Aug.Ops.Happend_triples triples ->
        Format.fprintf fmt "%4d q%d H.append-triples %s@." e.idx e.pid
          (String.concat ", "
             (List.map
                (fun (t : Hrep.triple) ->
                  Printf.sprintf "(%d, %s, %s)" t.comp (Value.show t.value)
                    (Vts.show t.ts))
                triples))
      | Aug.Ops.Happend_lrecords recs ->
        Format.fprintf fmt "%4d q%d H.append-lrecords {%s}@." e.idx e.pid
          (String.concat ", "
             (List.map
                (fun (l : Hrep.lrecord) ->
                  Printf.sprintf "L[->q%d][%d]" l.dest l.index)
                recs)))
    trace

let pp_mops fmt aug =
  List.iter
    (fun mop ->
      match mop with
      | Aug.Scan_op { proc; start_idx; end_idx; view; n_ops; _ } ->
        Format.fprintf fmt "q%d M.Scan       -> %a   (H-steps %d..%d, %d ops)@."
          proc pp_view view start_idx end_idx n_ops
      | Aug.Bu_op { proc; ts; updates; start_idx; end_idx; x_idx; result; _ } -> (
        match result with
        | Aug.Atomic { view; _ } ->
          Format.fprintf fmt
            "q%d M.BlockUpdate %a ts=%s atomic, past view %a   (H-steps \
             %d..%d, X at %d)@."
            proc pp_updates updates (Vts.show ts) pp_view view start_idx end_idx
            x_idx
        | Aug.Yield ->
          Format.fprintf fmt
            "q%d M.BlockUpdate %a ts=%s YIELD   (H-steps %d..%d, X at %d)@."
            proc pp_updates updates (Vts.show ts) start_idx end_idx x_idx))
    (Aug.log aug)

let pp_zeta fmt zeta =
  Format.fprintf fmt "%s"
    (String.concat "; "
       (List.map
          (function
            | Journal.Zscan view ->
              Format.asprintf "scan->%a" pp_view view
            | Journal.Zupdate (j, v) ->
              Printf.sprintf "upd %d:=%s" j (Value.show v))
          zeta))

let pp_journal fmt ~sim journal =
  List.iter
    (fun event ->
      match event with
      | Journal.Jscan { serial; view } ->
        Format.fprintf fmt "  q%d op#%d Scan -> %a@." sim serial pp_view view
      | Journal.Jbu { serial; updates; atomic } ->
        Format.fprintf fmt "  q%d op#%d BlockUpdate %a %s@." sim serial
          pp_updates updates
          (if atomic then "(atomic)" else "(yield)")
      | Journal.Jrevise { after_serial; proc; source_serial; zeta } ->
        Format.fprintf fmt
          "  q%d REVISES the past of its process %d after op#%d, using the \
           view of op#%d:@.      ζ = %a@."
          sim (proc + 1) after_serial source_serial pp_zeta zeta
      | Journal.Jfinal { beta; xi; output } ->
        Format.fprintf fmt
          "  q%d FINAL block β = %a, then solo run ξ (%d steps) -> %s@." sim
          pp_updates beta (List.length xi) (Value.show output)
      | Journal.Jdecided { proc; value } ->
        Format.fprintf fmt "  q%d adopts the output of its process %d: %s@." sim
          (proc + 1) (Value.show value))
    (Journal.events journal)

let pp_run fmt spec (result : Harness.result) =
  Format.fprintf fmt "%s@." (Harness.architecture spec);
  Format.fprintf fmt "--- M-operations (completion order) ---@.";
  pp_mops fmt result.Harness.aug;
  Format.fprintf fmt "--- simulator journals ---@.";
  Array.iteri (fun sim j -> pp_journal fmt ~sim j) result.Harness.journals;
  Format.fprintf fmt "--- outcome ---@.";
  Format.fprintf fmt "wait-free: %b, %d H-operations@." result.Harness.all_done
    result.Harness.total_ops;
  List.iter
    (fun (i, v) -> Format.fprintf fmt "simulator q%d output %s@." i (Value.show v))
    result.Harness.outputs
