open Rsim_value
open Rsim_shmem

type witness = {
  config : Run.config;
  outputs : (int * Value.t) list;
  description : string;
}

let violates task ~inputs c =
  match Run.live c with
  | _ :: _ -> None (* incomplete executions are not witnesses *)
  | [] -> (
    let outputs = List.map snd (Run.outputs c) in
    match Rsim_tasks.Task.check task ~inputs ~outputs with
    | Ok () -> None
    | Error e -> Some e)

(* Run [pid] for up to [steps] of its own steps, stopping if it
   outputs. *)
let turn c pid steps =
  let rec go c k =
    if k = 0 then c
    else
      match Proc.poised (Run.proc c pid) with
      | Proc.Output _ -> c
      | Proc.Scan | Proc.Update _ -> go (Run.step_pid c pid) (k - 1)
  in
  go c steps

let finish_solo c pid = turn c pid 10_000

(* Recover each process's input as its solo output from the initial
   configuration (sound for validity-respecting protocols: a solo run
   outputs the process's own input). *)
let solo_inputs ~m procs =
  let c0 = Run.init ~m procs in
  List.mapi
    (fun pid _ ->
      match Proc.output (Run.proc (finish_solo c0 pid) pid) with
      | Some v -> v
      | None -> Value.Int pid)
    procs

let phase_shifted ~procs ~m ~task ~max_turn =
  if List.length procs < 2 then
    invalid_arg "Covering_witness.phase_shifted: need at least 2 processes";
  let inputs = solo_inputs ~m procs in
  let rec search a b =
    if a > max_turn then None
    else if b > max_turn then search (a + 1) 1
    else begin
      (* Alternate turns of a (pid 0) and b (pid 1) until both decided
         or a turn budget runs out; then finish everyone solo. *)
      let c = ref (Run.init ~m procs) in
      let budget = ref 40 in
      while Run.live !c <> [] && !budget > 0 do
        c := turn !c 0 a;
        c := turn !c 1 b;
        decr budget
      done;
      List.iteri (fun pid _ -> c := finish_solo !c pid) procs;
      match violates task ~inputs !c with
      | Some _ ->
        Some
          {
            config = !c;
            outputs = Run.outputs !c;
            description =
              Printf.sprintf "phase-shifted lockstep, turns (%d, %d)" a b;
          }
      | None -> search a (b + 1)
    end
  in
  search 1 1

let stale_writer ~procs ~m ~task =
  let n = List.length procs in
  if n < 2 then invalid_arg "Covering_witness.stale_writer: need >= 2 processes";
  let inputs = solo_inputs ~m procs in
  let try_park parked k =
    (* Give the parked process k initial steps (leaving it covering a
       register), run the others to completion round-robin, then release
       it. *)
    let c = turn (Run.init ~m procs) parked k in
    let others = List.filter (fun p -> p <> parked) (List.init n Fun.id) in
    let sched =
      Schedule.fn (fun ~step ~live ->
          let eligible = List.filter (fun p -> List.mem p others) live in
          match eligible with
          | [] -> None
          | _ -> Some (List.nth eligible (step mod List.length eligible)))
    in
    let c, _ = Run.run ~max_steps:10_000 ~sched c in
    let c = finish_solo c parked in
    match violates task ~inputs c with
    | Some _ ->
      Some
        {
          config = c;
          outputs = Run.outputs c;
          description = Printf.sprintf "process %d parked after %d steps" parked k;
        }
    | None -> None
  in
  let rec search parked k =
    if parked >= n then None
    else if k > 3 then search (parked + 1) 1
    else
      match try_park parked k with
      | Some w -> Some w
      | None -> search parked (k + 1)
  in
  search 0 1
