(** Executable check of the simulation's correctness invariant (Lemma 26,
    Lemma 27).

    Given a completed {!Harness} run, [check] reconstructs the simulated
    execution σ̄ of protocol Π that the paper's Lemma 26 asserts exists:

    + the linearized M.Scans and M.Updates of the real execution are
      mapped to the simulated steps they simulate (an M.Scan by [q_i] to
      a scan by [p_{i,1}]; the update to component [j] of a Block-Update
      to the update its [g]-th simulated process was poised to perform);
    + every hidden execution ζ recorded by a covering simulator when it
      revised the past of a process is {b inserted} at the window start
      [L] of the atomic Block-Update whose view it used;
    + each covering simulator's final locally-simulated block β and
      terminating solo run ξ are appended at the end (Lemma 27).

    The resulting sequence is then {b replayed} from the initial
    configuration of the simulated system: every step must be exactly
    the next step of its process (state applicability), every scan —
    real, hidden, or final — must return exactly the replayed contents
    of M, and every simulator's output must equal the output its
    simulated process produces in the replay. Together these are
    properties 1–4 of Lemma 26 and the correctness argument of
    Lemma 27, checked computationally on a concrete execution. *)

type stats = {
  n_lin_items : int;  (** linearized M.Scans + M.Updates *)
  n_revisions : int;  (** ζ insertions *)
  n_hidden_steps : int;  (** total steps inside ζ's *)
  n_final_steps : int;  (** steps inside appended β·ξ tails *)
  n_sim_steps : int;  (** total steps of the simulated execution σ̄ *)
}

type report = { ok : bool; errors : string list; stats : stats }

val pp_report : Format.formatter -> report -> unit

val check : Harness.spec -> Harness.result -> report
