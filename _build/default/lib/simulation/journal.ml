open Rsim_value

type zeta_step = Zscan of Value.t array | Zupdate of int * Value.t

type event =
  | Jscan of { serial : int; view : Value.t array }
  | Jbu of { serial : int; updates : (int * Value.t) list; atomic : bool }
  | Jrevise of {
      after_serial : int;
      proc : int;
      source_serial : int;
      zeta : zeta_step list;
    }
  | Jfinal of {
      beta : (int * Value.t) list;
      xi : zeta_step list;
      output : Value.t;
    }
  | Jdecided of { proc : int; value : Value.t }

type t = { mutable rev : event list; mutable count : int }

let create () = { rev = []; count = 0 }
let serial t = t.count

let bump t =
  t.count <- t.count + 1;
  t.count

let push t e = t.rev <- e :: t.rev
let events t = List.rev t.rev
