(** Direct simulator (§4.1, Algorithm 5).

    A direct simulator [q_i] simulates a single process step by step:
    each scan via [M.Scan] and each update via a one-component
    [M.Block-Update] whose return value is ignored. With [d = x] direct
    simulators (given the highest identifiers), an [x]-obstruction-free
    protocol guarantees their simulated processes terminate whenever
    only they keep taking steps (Lemma 32). *)

open Rsim_value

type t

val make :
  aug:Rsim_augmented.Aug.t ->
  me:int ->
  proc:Rsim_shmem.Proc.t ->
  journal:Journal.t ->
  t

(** The fiber body. Loops until the simulated process outputs. *)
val body : t -> int -> unit

val output : t -> Value.t option
val bu_count : t -> int
