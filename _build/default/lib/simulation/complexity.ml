(* Saturating arithmetic: the bounds are doubly exponential, so for all
   but the smallest parameters they overflow native ints. Saturate at a
   recognizable ceiling instead. *)

let sat_limit = max_int / 2

let is_saturated n = n >= sat_limit

let sat_add a b =
  if a >= sat_limit - b then sat_limit else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a >= sat_limit / b then sat_limit
  else a * b

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go i acc =
      if i > k then acc
      else
        let acc = sat_mul acc (n - k + i) in
        if is_saturated acc then acc else go (i + 1) (acc / i)
    in
    go 1 1
  end

let a ~m r =
  if r < 1 || r > m then invalid_arg "Complexity.a: need 1 <= r <= m";
  let rec go r =
    if r = 1 then 0
    else
      let c = choose m (r - 1) in
      sat_add (sat_mul (sat_add c 1) (go (r - 1))) c
  in
  go r

let b ~m i =
  if i < 1 then invalid_arg "Complexity.b: need i >= 1";
  if m < 1 then invalid_arg "Complexity.b: need m >= 1";
  let am = a ~m m in
  let am1 = if m = 1 then 0 else a ~m (m - 1) in
  let rec go i sum_prev =
    let bi =
      if i = 1 then am else sat_add (sat_mul (sat_add am1 1) sum_prev) am
    in
    (bi, sat_add sum_prev bi)
  and upto i =
    if i = 1 then go 1 0
    else
      let _, sum = upto (i - 1) in
      go i sum
  in
  fst (upto i)

let step_bound ~f ~m =
  sat_add (sat_mul (sat_add (sat_mul 2 f) 7) (b ~m f)) 3

let two_pow_fm2 ~f ~m =
  let e = f * m * m in
  if e >= 62 then sat_limit else 1 lsl e
