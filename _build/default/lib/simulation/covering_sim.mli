(** Covering simulator (§4.1, Algorithms 6 and 7).

    A covering simulator [q_i] simulates [m] processes, trying to build a
    block update covering all [m] components of the simulated snapshot
    [M]. It recursively constructs block updates to [r] components for
    growing [r]; whenever a constructed (r−1)-block hits a component set
    it has already simulated with an {e atomic} Block-Update, it uses
    that Block-Update's returned view to {b revise the past} of its
    [r]-th process — locally simulating a hidden solo execution that the
    block update conceals. If a simulated process ever outputs, the
    simulator adopts that output; if it completes an [m]-block, it
    locally simulates the block followed by its first process's
    terminating solo run and outputs that value (Algorithm 7).

    The simulator must run as a fiber under [Aug.F.run]. *)

open Rsim_value

type t

(** [make ~aug ~me ~procs ~journal ~local_cap] — [procs] are the [m]
    simulated processes [p_{i,1} .. p_{i,m}] in their initial states
    (each poised to scan); [local_cap] bounds every local (hidden) solo
    simulation, failing loudly if the protocol is not obstruction-free. *)
val make :
  aug:Rsim_augmented.Aug.t ->
  me:int ->
  procs:Rsim_shmem.Proc.t array ->
  journal:Journal.t ->
  local_cap:int ->
  t

(** The fiber body. *)
val body : t -> int -> unit

val output : t -> Value.t option

(** Number of M.Block-Updates this simulator applied (for comparison
    with {!Complexity.b}). *)
val bu_count : t -> int
