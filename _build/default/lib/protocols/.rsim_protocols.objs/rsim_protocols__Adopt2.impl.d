lib/protocols/adopt2.ml: Array Proc Rsim_shmem Rsim_value Value
