lib/protocols/pathological.ml: Array Proc Rsim_shmem Rsim_value Value
