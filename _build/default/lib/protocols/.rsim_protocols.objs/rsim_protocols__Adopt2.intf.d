lib/protocols/adopt2.mli: Rsim_shmem Rsim_value Value
