lib/protocols/safe_agreement.mli: Rsim_runtime Rsim_shmem Rsim_value Value
