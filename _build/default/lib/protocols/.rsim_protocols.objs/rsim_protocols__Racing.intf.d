lib/protocols/racing.mli: Rsim_shmem Rsim_value Value
