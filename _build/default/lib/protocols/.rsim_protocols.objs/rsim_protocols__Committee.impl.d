lib/protocols/committee.ml: Adopt2 List Pathological Printf Racing
