lib/protocols/racing.ml: Array Fun Int List Printf Proc Rsim_shmem Rsim_value Value
