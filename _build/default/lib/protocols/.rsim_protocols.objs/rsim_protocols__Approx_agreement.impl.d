lib/protocols/approx_agreement.ml: Array List Printf Proc Rsim_shmem Rsim_value Value
