lib/protocols/approx_agreement.mli: Rsim_shmem Rsim_value Value
