lib/protocols/pathological.mli: Rsim_shmem Rsim_value Value
