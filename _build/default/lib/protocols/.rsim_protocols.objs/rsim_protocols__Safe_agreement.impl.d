lib/protocols/safe_agreement.ml: Array List Rsim_runtime Rsim_value Value
