lib/protocols/committee.mli: Rsim_shmem Rsim_value Value
