(** Committee-based k-set agreement: a simple, correct baseline.

    The [n] processes are split into [k] committees; committee [g] runs
    consensus on its own bank of registers, sized to the committee, and
    a process outputs its committee's consensus value. At most [k]
    distinct values are output, each some process's input. Total space:
    [n] registers — the trivial upper bound the paper contrasts with
    [n - k + x] [16].

    Committee consensus: singleton committees decide their own input;
    pairs run the provably correct {!Adopt2}; larger committees run the
    heuristic {!Racing} (see its caveats). Hence for [k ≥ ⌈n/2⌉] the
    protocol is provably a correct obstruction-free k-set agreement. *)

open Rsim_value

(** Committee of process [pid] among [n] processes and [k] committees
    (contiguous blocks, the first [n mod k] blocks one larger). *)
val committee_of : n:int -> k:int -> pid:int -> int

(** The bank (component indices) of committee [g]. Banks partition
    [0 .. n-1]. *)
val bank_of : n:int -> k:int -> g:int -> int list

(** Factory for the simulation harness; uses [m = n] components. *)
val protocol :
  n:int -> k:int -> ?decide_round:int -> unit -> int -> Value.t -> Rsim_shmem.Proc.t
