(** Wait-free ε-approximate agreement with one register per process.

    The round-based midpoint algorithm (in the style of [9], [22]): each
    process repeatedly publishes [(round, value)] in its own component
    and scans. A process behind the maximum round it sees jumps to that
    round, adopting the midpoint of the frontier values; a process at the
    front moves to the midpoint of the frontier and advances one round.
    After [rounds] rounds it outputs its value.

    For inputs in [[0, 1]] (the paper's setting, §2), taking
    [rounds = ⌈log₂ 1/ε⌉ + 2] gives outputs within ε of each other, and
    all outputs lie in the convex hull of the inputs (every new value is
    a midpoint of previously published values). Wait-free: a process
    terminates after at most [rounds] scan/update pairs plus jumps, no
    matter what others do.

    Satisfies Assumption 1: alternates scan and update starting with a
    scan. *)

open Rsim_value

(** Number of rounds sufficient for precision [eps] on inputs in [0,1]. *)
val rounds_for : eps:float -> int

(** [proc ~slot ~rounds ~input ()] — [slot] is this process's own
    component (the protocol uses single-writer components: [m = n]). *)
val proc : slot:int -> rounds:int -> input:Value.t -> unit -> Rsim_shmem.Proc.t

(** Factory for the simulation harness with [m = n] components: process
    [pid] writes component [pid]. *)
val protocol : rounds:int -> unit -> int -> Value.t -> Rsim_shmem.Proc.t

(** Space-constrained variant: process [pid] writes component
    [pid mod m], so [n > m] processes share [m] components (last writer
    wins per component). This is the regime Corollary 34's lower bound
    speaks to: convergence degrades gracefully but ε-agreement is no
    longer guaranteed under all schedules — the E10 experiment measures
    it through the simulation. *)
val protocol_shared :
  rounds:int -> m:int -> unit -> int -> Value.t -> Rsim_shmem.Proc.t
