open Rsim_value
open Rsim_shmem

type state =
  | Start  (** Assumption 1: begin with a scan (result unused) *)
  | Publish of Value.t  (** poised to write this value to own component *)
  | Check of Value.t  (** own component holds this value; poised to scan *)
  | Out of Value.t

let proc ~mine ~theirs ~name ~input () =
  if mine = theirs then invalid_arg "Adopt2.proc: components must differ";
  let poised = function
    | Start -> Proc.Scan
    | Publish v -> Proc.Update (mine, v)
    | Check _ -> Proc.Scan
    | Out v -> Proc.Output v
  in
  let on_scan s view =
    match s with
    | Start -> Publish input
    | Check v -> (
      match view.(theirs) with
      | Value.Bot -> Out v
      | u when Value.equal u v -> Out v
      | u -> Publish u (* adopt the other's value and retry *))
    | Publish _ | Out _ -> s
  in
  let on_update = function Publish v -> Check v | s -> s in
  Proc.make ~name ~init:Start ~poised ~on_scan ~on_update
