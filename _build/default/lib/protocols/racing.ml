open Rsim_value
open Rsim_shmem

type phase =
  | To_scan
  | To_write of int  (** register (component index) to write next *)
  | Done of Value.t

type state = { r : int; v : Value.t; phase : phase }

let encode r v = Value.Pair (Value.Int r, v)

let decode cell =
  match cell with
  | Value.Pair (Value.Int r, v) -> Some (r, v)
  | Value.Bot -> None
  | _ -> None

(* Lexicographic order on (round, value). *)
let pair_gt (r1, v1) (r2, v2) =
  r1 > r2 || (r1 = r2 && Value.compare v1 v2 > 0)

let proc ~bank ?(decide_round = 1) ~name ~input () =
  (match bank with
  | [] -> invalid_arg "Racing.proc: empty bank"
  | _ ->
    if List.length (List.sort_uniq Int.compare bank) <> List.length bank then
      invalid_arg "Racing.proc: bank components must be distinct");
  if decide_round < 1 then invalid_arg "Racing.proc: decide_round must be >= 1";
  let poised s =
    match s.phase with
    | To_scan -> Proc.Scan
    | To_write j -> Proc.Update (j, encode s.r s.v)
    | Done y -> Proc.Output y
  in
  let on_scan s view =
    let entries = List.map (fun j -> decode view.(j)) bank in
    (* Adopt the lexicographically largest pair seen, if it beats ours. *)
    let r, v =
      List.fold_left
        (fun (r, v) entry ->
          match entry with
          | Some (r', v') when pair_gt (r', v') (r, v) -> (r', v')
          | Some _ | None -> (r, v))
        (s.r, s.v) entries
    in
    let mine (entry : (int * Value.t) option) =
      match entry with
      | Some (r', v') -> r' = r && Value.equal v' v
      | None -> false
    in
    if List.for_all mine entries then
      if r >= decide_round then { r; v; phase = Done v }
      else
        (* Full bank at round r: advance and start writing round r+1. *)
        { r = r + 1; v; phase = To_write (List.hd bank) }
    else begin
      (* Write our pair into the first register of the bank that
         disagrees. *)
      let j =
        List.find
          (fun j -> not (mine (decode view.(j))))
          bank
      in
      { r; v; phase = To_write j }
    end
  in
  let on_update s = { s with phase = To_scan } in
  Proc.make ~name ~init:{ r = 0; v = input; phase = To_scan } ~poised ~on_scan
    ~on_update

let protocol ~m ?(decide_round = 1) () =
  let bank = List.init m Fun.id in
  fun pid input ->
    proc ~bank ~decide_round ~name:(Printf.sprintf "racing%d" pid) ~input ()
