open Rsim_value
open Rsim_shmem

let rounds_for ~eps =
  if eps <= 0.0 then invalid_arg "Approx_agreement.rounds_for: eps <= 0";
  if eps >= 1.0 then 1
  else int_of_float (ceil (log (1.0 /. eps) /. log 2.0)) + 2

type phase = To_scan | To_write | Done_ of float

type state = { r : int; v : float; phase : phase }

let encode r v = Value.Pair (Value.Int r, Value.Float v)

let decode cell =
  match cell with
  | Value.Pair (Value.Int r, Value.Float v) -> Some (r, v)
  | _ -> None

let midpoint vs =
  match vs with
  | [] -> None
  | v :: _ ->
    let lo = List.fold_left min v vs and hi = List.fold_left max v vs in
    Some ((lo +. hi) /. 2.0)

let proc ~slot ~rounds ~input () =
  if rounds < 1 then invalid_arg "Approx_agreement.proc: rounds < 1";
  let v0 = Value.as_float_exn input in
  let poised s =
    match s.phase with
    | To_scan -> Proc.Scan
    | To_write -> Proc.Update (slot, encode s.r s.v)
    | Done_ v -> Proc.Output (Value.Float v)
  in
  let on_scan s view =
    let entries =
      Array.to_list view |> List.filter_map decode
    in
    let rmax = List.fold_left (fun acc (r, _) -> max acc r) s.r entries in
    let s' =
      if rmax > s.r then begin
        (* Jump: adopt the midpoint of the frontier. *)
        let front = List.filter_map (fun (r, v) -> if r = rmax then Some v else None) entries in
        match midpoint front with
        | Some v -> { s with r = rmax; v }
        | None -> { s with r = rmax }
      end
      else begin
        (* At the front: midpoint of frontier values (including our own)
           and advance. *)
        let front =
          s.v
          :: List.filter_map (fun (r, v) -> if r = s.r then Some v else None) entries
        in
        match midpoint front with
        | Some v -> { s with r = s.r + 1; v }
        | None -> { s with r = s.r + 1 }
      end
    in
    if s'.r > rounds then { s' with phase = Done_ s'.v }
    else { s' with phase = To_write }
  in
  let on_update s = { s with phase = To_scan } in
  Proc.make
    ~name:(Printf.sprintf "approx%d" slot)
    ~init:{ r = 0; v = v0; phase = To_scan }
    ~poised ~on_scan ~on_update

let protocol ~rounds () =
  fun pid input -> proc ~slot:pid ~rounds ~input ()

let protocol_shared ~rounds ~m () =
  fun pid input -> proc ~slot:(pid mod m) ~rounds ~input ()
