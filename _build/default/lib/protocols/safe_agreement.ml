open Rsim_value

module Ops = struct
  type op = Sa_scan | Sa_write of Value.t
  type res = Sa_view of Value.t array | Sa_ack
end

module F = Rsim_runtime.Fiber.Make (Ops)

(* Component i holds (level, value) for process i, encoded as a pair;
   Bot = (0, Bot). *)
type t = { f : int; mutable cells : Value.t array }

let create ~f =
  if f <= 0 then invalid_arg "Safe_agreement.create: f must be positive";
  { f; cells = Array.make f Value.Bot }

let apply t ~pid (op : Ops.op) : Ops.res =
  match op with
  | Ops.Sa_scan -> Ops.Sa_view (Array.copy t.cells)
  | Ops.Sa_write v ->
    let cells = Array.copy t.cells in
    cells.(pid) <- v;
    t.cells <- cells;
    Ops.Sa_ack

let decode cell =
  match cell with
  | Value.Bot -> (0, Value.Bot)
  | Value.Pair (Value.Int level, v) -> (level, v)
  | _ -> failwith "Safe_agreement: malformed cell"

let encode level v = Value.Pair (Value.Int level, v)

let sa_scan () =
  match F.op Ops.Sa_scan with
  | Ops.Sa_view view -> Array.map decode view
  | Ops.Sa_ack -> assert false

let sa_write v = ignore (F.op (Ops.Sa_write v))

let propose _t ~me:_ v =
  (* level 1: entering the unsafe window *)
  sa_write (encode 1 v);
  let view = sa_scan () in
  if Array.exists (fun (level, _) -> level = 2) view then
    (* someone already settled: retreat *)
    sa_write (encode 0 v)
  else sa_write (encode 2 v)

let read _t ~me:_ ~max_spins =
  let rec spin k =
    if k = 0 then None
    else begin
      let view = sa_scan () in
      if Array.exists (fun (level, _) -> level = 1) view then spin (k - 1)
      else begin
        (* no one unsafe: the settled set is now stable enough to read *)
        let settled =
          Array.to_list view |> List.filter (fun (level, _) -> level = 2)
        in
        match settled with
        | (_, v) :: _ -> Some v
        | [] -> spin (k - 1) (* nobody proposed yet *)
      end
    end
  in
  spin max_spins
