(** Round-racing obstruction-free consensus over [m] snapshot components.

    The protocol is anonymous and memoryless in the style of the
    upper-bound comparators the paper cites ([16], [47]): each register
    holds a pair [(round, value)]; a process repeatedly scans, adopts the
    lexicographically largest [(round, value)] it sees if that beats its
    own, and otherwise writes its own pair into the first register that
    differs. When it sees all registers of its bank equal to its own pair
    it advances one round; it decides after observing a full bank at
    round ≥ [decide_round].

    Properties:
    - {b Obstruction-free}: running solo, a process fills its bank and
      decides within [O(m · decide_round)] steps.
    - {b Validity}: the decided value is some process's input (values
      only enter memory from inputs and adoption).
    - {b Agreement is heuristic, not guaranteed} — deliberately so.
      A phase-shifted covering adversary can interleave two processes so
      that each only ever observes dominated or equal-round entries of
      the other and both complete private round sweeps, even with a bank
      of [m = n] registers (about 0.1% of uniformly random 2-process
      schedules exhibit this). This is the library's {e adversarially
      breakable comparator}: the witness experiments (E5b) drive the
      revisionist simulation to construct exactly such executions,
      illustrating why the space bounds of Corollary 33 are about what
      {e any} protocol must withstand. For a provably correct consensus
      building block see {!Adopt2}; for correct k-set agreement built
      from it see {!Committee}.

    Satisfies Assumption 1: alternates scan and update, starting with a
    scan, deciding only at a scan. *)

open Rsim_value

(** [proc ~bank ?decide_round ~name ~input ()] is a process racing on the
    components listed in [bank] (distinct, in increasing order of
    preference). [decide_round] defaults to 1 (one confirmation round). *)
val proc :
  bank:int list -> ?decide_round:int -> name:string -> input:Value.t -> unit -> Rsim_shmem.Proc.t

(** [protocol ~m ?decide_round ()] is a factory for the simulation
    harness: every process races on all [m] components. *)
val protocol :
  m:int -> ?decide_round:int -> unit -> int -> Value.t -> Rsim_shmem.Proc.t
