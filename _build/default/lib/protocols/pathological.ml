open Rsim_value
open Rsim_shmem

let spinner ~name =
  let poised (ph, k) =
    if ph = 0 then Proc.Scan else Proc.Update (0, Value.Int k)
  in
  Proc.make ~name ~init:(0, 0) ~poised
    ~on_scan:(fun (_, k) _ -> (1, k))
    ~on_update:(fun (_, k) -> (0, k + 1))

let constant ~name ~output =
  let poised scanned = if scanned then Proc.Output output else Proc.Scan in
  Proc.make ~name ~init:false ~poised
    ~on_scan:(fun _ _ -> true)
    ~on_update:(fun s -> s)

let echo_first ~name ~input =
  let poised = function
    | `Start | `Scanned None -> Proc.Scan
    | `Scanned (Some v) -> Proc.Output v
  in
  Proc.make ~name ~init:`Start ~poised
    ~on_scan:(fun _ view ->
      match Array.find_opt (fun v -> not (Value.is_bot v)) view with
      | Some v -> `Scanned (Some v)
      | None -> `Scanned (Some input))
    ~on_update:(fun s -> s)

let churner ~name ~input ~writes =
  let poised (ph, left) =
    if ph = 0 then Proc.Scan
    else if left = 0 then Proc.Output input
    else Proc.Update (0, input)
  in
  Proc.make ~name ~init:(0, max 1 writes) ~poised
    ~on_scan:(fun (_, left) _ -> (1, left))
    ~on_update:(fun (_, left) -> (0, left - 1))
