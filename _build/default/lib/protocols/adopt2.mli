(** Two-process obstruction-free consensus on two single-writer
    components — a {e provably correct} comparator.

    Each of the two processes owns one component. A process first
    publishes its current value, then scans: if the other component is
    empty or agrees, it decides its value; otherwise it adopts the
    other's value, republishes, and retries.

    Correctness (unlike {!Racing}, this argument is airtight):
    - {b Validity}: values only enter components from inputs or adoption.
    - {b Agreement}: suppose p decides x and q later decides y. When p
      decided, p's own component held x, and it never changes afterwards;
      q's deciding scan therefore sees x in p's component, so it can only
      decide y = x. (Scans of the snapshot are atomic, hence totally
      ordered; the earlier decider's component is frozen.)
    - {b Obstruction-freedom}: running solo, the other component is
      frozen; after at most one adoption the values match and the process
      decides within 4 steps.

    Satisfies Assumption 1 (scan first, alternate, decide at a scan). *)

open Rsim_value

(** [proc ~mine ~theirs ~name ~input ()]: [mine] is the component this
    process writes, [theirs] the component it reads. *)
val proc :
  mine:int -> theirs:int -> name:string -> input:Value.t -> unit -> Rsim_shmem.Proc.t
