let sizes ~n ~k =
  if k < 1 || k > n then invalid_arg "Committee: need 1 <= k <= n";
  List.init k (fun g -> (n / k) + if g < n mod k then 1 else 0)

let offsets ~n ~k =
  let szs = sizes ~n ~k in
  let rec go acc off = function
    | [] -> List.rev acc
    | s :: rest -> go ((off, s) :: acc) (off + s) rest
  in
  go [] 0 szs

let committee_of ~n ~k ~pid =
  if pid < 0 || pid >= n then invalid_arg "Committee.committee_of: bad pid";
  let rec find g = function
    | (off, s) :: rest -> if pid < off + s then g else find (g + 1) rest
    | [] -> assert false
  in
  find 0 (offsets ~n ~k)

let bank_of ~n ~k ~g =
  match List.nth_opt (offsets ~n ~k) g with
  | Some (off, s) -> List.init s (fun i -> off + i)
  | None -> invalid_arg "Committee.bank_of: bad committee"

let protocol ~n ~k ?(decide_round = 1) () =
  fun pid input ->
    let g = committee_of ~n ~k ~pid in
    let name = Printf.sprintf "committee%d.%d" g pid in
    match bank_of ~n ~k ~g with
    | [ _ ] ->
      (* Alone in the committee: decide own input at the first scan. *)
      Pathological.constant ~name ~output:input
    | [ a; b ] ->
      (* Pairs get the provably correct two-process protocol. *)
      let mine, theirs = if pid = a then (a, b) else (b, a) in
      Adopt2.proc ~mine ~theirs ~name ~input ()
    | bank ->
      (* Larger committees race (heuristic; see {!Racing}). *)
      Racing.proc ~bank ~decide_round ~name ~input ()
