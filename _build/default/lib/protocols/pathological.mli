(** Deliberately ill-behaved protocols, for failure injection in tests.

    The simulation and the execution engine must either tolerate or
    loudly reject these. *)

open Rsim_value

(** Scans and rewrites component 0 forever; never outputs. Not
    obstruction-free. *)
val spinner : name:string -> Rsim_shmem.Proc.t

(** Outputs [output] immediately after its first scan (takes one step). *)
val constant : name:string -> output:Value.t -> Rsim_shmem.Proc.t

(** After its first scan, outputs the first non-⊥ component value it saw,
    or its own input if memory was empty. Valid-looking but violates
    agreement; useful for checking that task validation catches broken
    protocols. *)
val echo_first : name:string -> input:Value.t -> Rsim_shmem.Proc.t

(** Writes [writes] times to component 0 and then outputs its input:
    parameterizes how long a process keeps the memory churning. *)
val churner : name:string -> input:Value.t -> writes:int -> Rsim_shmem.Proc.t
