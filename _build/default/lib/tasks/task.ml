open Rsim_value

type t = {
  name : string;
  valid_input : Value.t -> bool;
  validate : inputs:Value.t list -> outputs:Value.t list -> (unit, string) result;
}

let check t ~inputs ~outputs =
  if inputs = [] then Error "no inputs"
  else
    match List.find_opt (fun v -> not (t.valid_input v)) inputs with
    | Some bad -> Error (Printf.sprintf "invalid input %s" (Value.show bad))
    | None -> t.validate ~inputs ~outputs

let is_member v vs = List.exists (Value.equal v) vs

let all_inputs_rule ~inputs ~outputs =
  match List.find_opt (fun o -> not (is_member o inputs)) outputs with
  | Some bad ->
    Error (Printf.sprintf "output %s is not any process's input" (Value.show bad))
  | None -> Ok ()

let consensus =
  {
    name = "consensus";
    valid_input = (fun v -> not (Value.is_bot v));
    validate =
      (fun ~inputs ~outputs ->
        match all_inputs_rule ~inputs ~outputs with
        | Error _ as e -> e
        | Ok () -> (
          match Value.distinct outputs with
          | [] | [ _ ] -> Ok ()
          | many ->
            Error
              (Printf.sprintf "disagreement: %d distinct outputs"
                 (List.length many))));
  }

let kset ~k =
  if k < 1 then invalid_arg "Task.kset: k must be >= 1";
  {
    name = Printf.sprintf "%d-set agreement" k;
    valid_input = (fun v -> not (Value.is_bot v));
    validate =
      (fun ~inputs ~outputs ->
        match all_inputs_rule ~inputs ~outputs with
        | Error _ as e -> e
        | Ok () ->
          let d = List.length (Value.distinct outputs) in
          if d <= k then Ok ()
          else Error (Printf.sprintf "%d distinct outputs > k = %d" d k));
  }

let approx ~eps =
  if eps <= 0.0 then invalid_arg "Task.approx: eps must be positive";
  let numeric v =
    match v with Value.Int _ | Value.Float _ -> true | _ -> false
  in
  {
    name = Printf.sprintf "%g-approximate agreement" eps;
    valid_input = numeric;
    validate =
      (fun ~inputs ~outputs ->
        if not (List.for_all numeric outputs) then Error "non-numeric output"
        else begin
          let xs = List.map Value.as_float_exn inputs in
          let ys = List.map Value.as_float_exn outputs in
          let lo = List.fold_left min infinity xs in
          let hi = List.fold_left max neg_infinity xs in
          match
            List.find_opt (fun y -> y < lo -. 1e-12 || y > hi +. 1e-12) ys
          with
          | Some y -> Error (Printf.sprintf "output %g outside [%g, %g]" y lo hi)
          | None ->
            let ylo = List.fold_left min infinity ys in
            let yhi = List.fold_left max neg_infinity ys in
            if ys <> [] && yhi -. ylo > eps +. 1e-12 then
              Error
                (Printf.sprintf "outputs spread %g exceeds eps = %g"
                   (yhi -. ylo) eps)
            else Ok ()
        end);
  }
