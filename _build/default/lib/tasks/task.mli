(** Colorless tasks (§2).

    A colorless task is specified by which input sets are allowed and
    which output sets are valid for a given input set; it does not depend
    on which process holds which value or on the number of processes.
    [validate] receives the multiset of inputs of the participating
    processes and the multiset of outputs produced, and says whether the
    outputs are permitted. *)

open Rsim_value

type t = {
  name : string;
  valid_input : Value.t -> bool;
  validate : inputs:Value.t list -> outputs:Value.t list -> (unit, string) result;
}

(** [check t ~inputs ~outputs] like [validate], also rejecting invalid
    inputs and empty input sets. *)
val check :
  t -> inputs:Value.t list -> outputs:Value.t list -> (unit, string) result

(** Consensus: all outputs equal, and every output is some input. *)
val consensus : t

(** k-set agreement: at most [k] distinct outputs, each some input. *)
val kset : k:int -> t

(** ε-approximate agreement on numeric inputs: outputs pairwise within
    [eps] and inside [min inputs, max inputs]. *)
val approx : eps:float -> t
