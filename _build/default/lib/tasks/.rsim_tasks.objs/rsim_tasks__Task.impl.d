lib/tasks/task.ml: List Printf Rsim_value Value
