lib/tasks/task.mli: Rsim_value Value
