open Rsim_value
open Rsim_shmem
open Rsim_protocols

let () =
  let n = 2 in
  let inputs = List.init n (fun p -> Value.Int p) in
  let procs = List.mapi (fun pid inp -> (Racing.protocol ~m:n ()) pid inp) inputs in
  let c = Run.init ~m:n procs in
  let c', _ = Run.run ~max_steps:200_000 ~sched:(Schedule.random ~seed:133) c in
  List.iter (fun (e : Run.event) ->
    match e.action with
    | Proc.Scan ->
      Printf.printf "%2d p%d SCAN  -> [%s]\n" e.idx e.pid
        (String.concat "; " (List.map Value.show (Array.to_list (Option.get e.view))))
    | Proc.Update (j, v) ->
      Printf.printf "%2d p%d WRITE reg%d := %s\n" e.idx e.pid j (Value.show v)
    | Proc.Output v -> Printf.printf "%2d p%d OUTPUT %s\n" e.idx e.pid (Value.show v))
    (Run.trace c');
  List.iter (fun (p, v) -> Printf.printf "p%d decided %s\n" p (Value.show v)) (Run.outputs c')
