open Rsim_value
open Rsim_shmem
open Rsim_augmented

let workload ~helping ~f ~m ~seed =
  let aug = Aug.create ~helping ~f ~m () in
  let body pid =
    let g = ref (Prng.make (seed + 1000 * pid)) in
    let draw n = let k, g' = Prng.int !g n in g := g'; k in
    for _ = 1 to 8 do
      if draw 3 = 0 then ignore (Aug.scan aug ~me:pid)
      else begin
        let r = 1 + draw (min m 3) in
        let comps = ref [] in
        while List.length !comps < r do
          let j = draw m in
          if not (List.mem j !comps) then comps := j :: !comps
        done;
        ignore (Aug.block_update aug ~me:pid (List.map (fun j -> (j, Value.Int (draw 100))) !comps))
      end
    done
  in
  let result = Aug.F.run ~max_ops:50_000 ~sched:(Schedule.random ~seed)
    ~apply:(Aug.apply aug) (List.init f (fun _ -> body)) in
  Aug_spec.check aug result.Aug.F.trace

let () =
  List.iter (fun helping ->
    let fails = ref 0 and total = 100 in
    let sample = ref [] in
    for seed = 0 to total - 1 do
      let rep = workload ~helping ~f:3 ~m:3 ~seed in
      if not rep.Aug_spec.ok then begin
        incr fails;
        if !sample = [] then sample := rep.Aug_spec.errors
      end
    done;
    Printf.printf "helping=%b: %d/%d executions violate the spec\n" helping !fails total;
    List.iteri (fun i e -> if i < 3 then Printf.printf "   e.g. %s\n" e) !sample)
    [ true; false ]
