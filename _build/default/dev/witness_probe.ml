open Rsim_value
open Rsim_protocols
open Rsim_simulation

let () =
  (* phase-shifted lockstep vs racing at m = n = 2 *)
  let procs = List.init 2 (fun pid -> (Racing.protocol ~m:2 ()) pid (Value.Int pid)) in
  (match Covering_witness.phase_shifted ~procs ~m:2 ~task:Rsim_tasks.Task.consensus ~max_turn:8 with
   | Some w -> Printf.printf "phase-shifted m=n=2: FOUND (%s) outputs=%s\n" w.Covering_witness.description
       (String.concat "," (List.map (fun (i,v) -> Printf.sprintf "%d:%s" i (Value.show v)) w.Covering_witness.outputs))
   | None -> print_endline "phase-shifted m=n=2: none");
  (* stale writer vs racing at m=1 < n=2 *)
  let procs1 = List.init 2 (fun pid -> (Racing.protocol ~m:1 ()) pid (Value.Int pid)) in
  (match Covering_witness.stale_writer ~procs:procs1 ~m:1 ~task:Rsim_tasks.Task.consensus with
   | Some w -> Printf.printf "stale-writer m=1 n=2: FOUND (%s)\n" w.Covering_witness.description
   | None -> print_endline "stale-writer m=1 n=2: none");
  (* adopt2 must survive both *)
  let a2 = [ Adopt2.proc ~mine:0 ~theirs:1 ~name:"p0" ~input:(Value.Int 1) ();
             Adopt2.proc ~mine:1 ~theirs:0 ~name:"p1" ~input:(Value.Int 2) () ] in
  (match Covering_witness.phase_shifted ~procs:a2 ~m:2 ~task:Rsim_tasks.Task.consensus ~max_turn:8 with
   | Some w -> Printf.printf "adopt2 phase-shifted: BROKEN?! (%s)\n" w.Covering_witness.description
   | None -> print_endline "adopt2 phase-shifted: survives (as proved)");
  (match Covering_witness.stale_writer ~procs:a2 ~m:2 ~task:Rsim_tasks.Task.consensus with
   | Some w -> Printf.printf "adopt2 stale-writer: BROKEN?! (%s)\n" w.Covering_witness.description
   | None -> print_endline "adopt2 stale-writer: survives (as proved)")
