let () = Rsim_experiments.Experiments.print_all Format.std_formatter
