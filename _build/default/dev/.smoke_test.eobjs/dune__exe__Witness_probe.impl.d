dev/witness_probe.ml: Adopt2 Covering_witness List Printf Racing Rsim_protocols Rsim_simulation Rsim_tasks Rsim_value String Value
