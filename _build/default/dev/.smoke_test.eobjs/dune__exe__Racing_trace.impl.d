dev/racing_trace.ml: Array List Option Printf Proc Racing Rsim_protocols Rsim_shmem Rsim_value Run Schedule String Value
