dev/ablation_probe.mli:
