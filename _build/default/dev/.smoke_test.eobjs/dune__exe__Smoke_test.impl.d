dev/smoke_test.ml: Analysis Array Format Harness List Printf Rsim_augmented Rsim_protocols Rsim_shmem Rsim_simulation Rsim_tasks Rsim_value Schedule String Value
