dev/smoke_test.mli:
