dev/exp_smoke.mli:
