dev/racing_search.mli:
