dev/racing_search.ml: Array List Printf Racing Rsim_protocols Rsim_shmem Rsim_value Run Schedule String Value
