dev/ablation_probe.ml: Aug Aug_spec List Printf Prng Rsim_augmented Rsim_shmem Rsim_value Schedule Value
