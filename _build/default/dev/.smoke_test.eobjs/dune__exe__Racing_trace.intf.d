dev/racing_trace.mli:
