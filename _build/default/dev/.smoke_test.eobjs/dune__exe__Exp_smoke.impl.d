dev/exp_smoke.ml: Format Rsim_experiments
