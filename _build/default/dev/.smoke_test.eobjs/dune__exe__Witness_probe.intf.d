dev/witness_probe.mli:
