open Rsim_value
open Rsim_shmem
open Rsim_protocols

let () =
  (* scan for agreement violations / non-termination of racing m=n *)
  let bad = ref 0 in
  for n = 2 to 5 do
    for seed = 0 to 20000 do
      let inputs = List.init n (fun p -> Value.Int p) in
      let procs = List.mapi (fun pid inp -> (Racing.protocol ~m:n ()) pid inp) inputs in
      let c = Run.init ~m:n procs in
      let c', outcome = Run.run ~max_steps:200_000 ~sched:(Schedule.random ~seed) c in
      let outs = List.map snd (Run.outputs c') in
      let distinct = Value.distinct outs in
      if outcome <> Run.All_done then begin
        incr bad;
        if !bad < 5 then Printf.printf "n=%d seed=%d: NOT DONE (outcome %s) after steps=%d\n" n seed
          (match outcome with Run.Step_limit -> "limit" | Run.Schedule_exhausted -> "exhausted" | _ -> "?")
          (Array.fold_left (+) 0 (Run.step_counts c'))
      end
      else if List.length distinct > 1 then begin
        incr bad;
        if !bad < 5 then Printf.printf "n=%d seed=%d: DISAGREEMENT %s\n" n seed
          (String.concat "," (List.map Value.show distinct))
      end
    done
  done;
  Printf.printf "total bad: %d\n" !bad
