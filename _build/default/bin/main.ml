(* rsim — command-line interface to the revisionist-simulation library. *)

open Core
open Cmdliner

(* ---------------- bounds ---------------- *)

let bounds_cmd =
  let table =
    Arg.(
      value
      & opt (enum [ ("kset", `Kset); ("approx", `Approx); ("headline", `Headline) ]) `Headline
      & info [ "table" ] ~doc:"Which table: kset, approx, or headline.")
  in
  let ns =
    Arg.(value & opt (list int) [ 8; 16; 32 ] & info [ "n" ] ~doc:"Values of n.")
  in
  let run table ns =
    let fmt = Format.std_formatter in
    (match table with
    | `Kset ->
      Tables.print_kset fmt (Tables.kset_rows ~ns ~ks:[ 1; 2; 4; 7 ] ~xs:[ 1; 2; 4 ])
    | `Approx ->
      Tables.print_approx fmt
        (Tables.approx_rows ~ns ~epss:[ 0.1; 1e-3; 1e-6; 1e-12; 1e-24 ])
    | `Headline -> Tables.print_headline fmt ~ns);
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's lower/upper bound tables (Corollaries 33-34).")
    Term.(const run $ table $ ns)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Simulated processes.") in
  let m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Snapshot components.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Simulators.") in
  let d = Arg.(value & opt int 0 & info [ "d" ] ~doc:"Direct simulators (the paper's x).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let arch = Arg.(value & flag & info [ "show-architecture" ] ~doc:"Print Figure 1 for this spec.") in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"Run the Aug spec checker and the Lemma 26 replay.") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full run: M-operations, journals, revisions.") in
  let run n m f d seed arch check trace =
    let spec =
      {
        Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
        n;
        m;
        f;
        d;
        inputs = List.init f (fun p -> Value.Int (p + 1));
      }
    in
    if arch then print_string (Harness.architecture spec);
    let result = Harness.run ~sched:(Schedule.random ~seed) spec in
    Printf.printf "wait-free: %b   H-operations: %d\n" result.Harness.all_done
      result.Harness.total_ops;
    List.iter
      (fun (i, v) -> Printf.printf "simulator q%d output %s\n" i (Value.show v))
      result.Harness.outputs;
    (match Harness.validate spec result ~task:Task.consensus with
    | Ok () -> print_endline "consensus: valid"
    | Error e -> Printf.printf "consensus: VIOLATED (%s)\n" e);
    if trace then Trace_pp.pp_run Format.std_formatter spec result;
    if check then begin
      let aug_rep = Aug_spec.check result.Harness.aug result.Harness.trace in
      Format.printf "augmented-snapshot spec: %s@."
        (if aug_rep.Aug_spec.ok then "all lemmas hold" else "FAILED");
      if not aug_rep.Aug_spec.ok then
        Format.printf "%a@." Aug_spec.pp_report aug_rep;
      let rep = Analysis.check spec result in
      Format.printf
        "Lemma 26 replay: %s (lin=%d revisions=%d hidden steps=%d)@."
        (if rep.Analysis.ok then "execution reconstructed and replayed"
         else "FAILED")
        rep.Analysis.stats.Analysis.n_lin_items
        rep.Analysis.stats.Analysis.n_revisions
        rep.Analysis.stats.Analysis.n_hidden_steps;
      if not rep.Analysis.ok then Format.printf "%a@." Analysis.pp_report rep
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the revisionist simulation of racing consensus (Theorem 21's construction).")
    Term.(const run $ n $ m $ f $ d $ seed $ arch $ check $ trace)

(* ---------------- witness ---------------- *)

let witness_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Simulated processes.") in
  let m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Snapshot components.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Simulators.") in
  let d = Arg.(value & opt int 0 & info [ "d" ] ~doc:"Direct simulators.") in
  let seeds = Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Schedules to search.") in
  let run n m f d seeds =
    let bound = Lower.consensus ~n in
    Printf.printf "Corollary 33: consensus among n=%d needs >= %d registers; trying m=%d.\n"
      n bound m;
    let found = ref 0 in
    let first = ref None in
    for seed = 0 to seeds - 1 do
      let spec =
        {
          Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
          n;
          m;
          f;
          d;
          inputs = List.init f (fun p -> Value.Int (p + 1));
        }
      in
      let result = Harness.run ~sched:(Schedule.random ~seed) spec in
      match Harness.validate spec result ~task:Task.consensus with
      | Error _ when result.Harness.all_done ->
        incr found;
        if !first = None then first := Some seed
      | _ -> ()
    done;
    (match !first with
    | Some s ->
      Printf.printf
        "violations in %d/%d schedules (first seed %d): the simulation drives the\n\
         under-provisioned protocol to disagreement, as the reduction predicts.\n"
        !found seeds s
    | None ->
      Printf.printf "no violation in %d schedules (space is sufficient here).\n" seeds)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Search schedules for the disagreement the space lower bound predicts.")
    Term.(const run $ n $ m $ f $ d $ seeds)

(* ---------------- derand ---------------- *)

let derand_cmd =
  let proto =
    Arg.(
      value
      & opt (enum [ ("coin", `Coin); ("ticket", `Ticket) ]) `Coin
      & info [ "protocol" ] ~doc:"Which nondeterministic protocol: coin or ticket.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let run proto seed =
    match proto with
    | `Coin ->
      let procs =
        [
          Derandomize.convert (Nd_examples.coin_consensus ~me:0 ()) ~cap:10_000
            ~input:(Value.Int 1);
          Derandomize.convert (Nd_examples.coin_consensus ~me:1 ()) ~cap:10_000
            ~input:(Value.Int 2);
        ]
      in
      let c = Mrun.init procs in
      Printf.printf "initial shortest solo paths: %s\n"
        (String.concat ", "
           (List.map
              (fun pid ->
                match Derandomize.solo_distance (Mrun.proc c pid) with
                | Some d -> Printf.sprintf "p%d: %d" pid d
                | None -> Printf.sprintf "p%d: none" pid)
              [ 0; 1 ]));
      let c', outcome = Mrun.run ~max_steps:500 ~sched:(Schedule.random ~seed) c in
      Printf.printf "outcome: %s\n"
        (match outcome with
        | Mrun.All_done -> "all decided"
        | Mrun.Step_limit -> "step limit (lockstep livelock; OF still holds solo)"
        | Mrun.Schedule_exhausted -> "schedule exhausted");
      List.iter
        (fun (pid, v) -> Printf.printf "p%d decided %s\n" pid (Value.show v))
        (Mrun.outputs c')
    | `Ticket ->
      let procs =
        List.init 3 (fun _ ->
            Derandomize.convert Nd_examples.ticket ~cap:10_000 ~input:(Value.Int 0))
      in
      let c = Mrun.init procs in
      let c', _ = Mrun.run ~sched:(Schedule.random ~seed) c in
      List.iter
        (fun (pid, v) -> Printf.printf "p%d got ticket %s\n" pid (Value.show v))
        (Mrun.outputs c')
  in
  Cmd.v
    (Cmd.info "derand"
       ~doc:"Derandomize a nondeterministic solo-terminating protocol (Theorem 35) and run it.")
    Term.(const run $ proto $ seed)

(* ---------------- sperner ---------------- *)

let sperner_cmd =
  let scale = Arg.(value & opt int 8 & info [ "s"; "scale" ] ~doc:"Subdivision scale.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Coloring seed.") in
  let run scale seed =
    let coloring = Sperner.random_coloring ~s:scale ~seed in
    let tri = Sperner.trichromatic ~s:scale ~coloring in
    Printf.printf
      "random Sperner coloring at scale %d: %d trichromatic cells (odd, per the lemma)\n"
      scale (List.length tri);
    (match Sperner.find_by_walk ~s:scale ~coloring with
    | Some ((a1, a2), (b1, b2), (c1, c2)) ->
      Printf.printf "door-to-door walk found {(%d,%d) (%d,%d) (%d,%d)}\n" a1 a2
        b1 b2 c1 c2
    | None -> print_endline "walk failed (invalid coloring?)");
    (* render the coloring as a triangle of digits *)
    for k = scale downto 0 do
      print_string (String.make k ' ');
      for i = 0 to scale - k do
        let j = scale - k - i in
        Printf.printf "%d " (coloring (i, j))
      done;
      print_newline ()
    done
  in
  Cmd.v
    (Cmd.info "sperner"
       ~doc:"Sperner's lemma demo: the combinatorial core of the reduction's target.")
    Term.(const run $ scale $ seed)

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (E1..E10); all if omitted.")
  in
  let run id =
    match id with
    | None -> Rsim_experiments.Experiments.print_all Format.std_formatter
    | Some id -> (
      match Rsim_experiments.Experiments.find id with
      | Some e ->
        Format.printf "=== %s — %s ===@." e.Rsim_experiments.Experiments.id
          e.Rsim_experiments.Experiments.title;
        List.iter print_endline (e.Rsim_experiments.Experiments.run ())
      | None -> prerr_endline ("unknown experiment: " ^ id))
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the EXPERIMENTS.md tables (E1..E10).")
    Term.(const run $ id)

let main_cmd =
  let doc = "Revisionist simulations: executable space-lower-bound machinery (PODC 2018)." in
  Cmd.group
    (Cmd.info "rsim" ~version:Core.version ~doc)
    [ bounds_cmd; simulate_cmd; witness_cmd; derand_cmd; sperner_cmd; experiments_cmd ]

let () =
  (* RSIM_LOG=debug surfaces the harness's internal logging. *)
  Logs.set_reporter (Logs.format_reporter ());
  (match Sys.getenv_opt "RSIM_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level (Some Logs.Warning));
  exit (Cmd.eval main_cmd)
