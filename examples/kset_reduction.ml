(* k-set agreement and x-obstruction-freedom (Theorem 21, second case).

   With d = x direct simulators (highest identifiers) and f - x covering
   simulators, the simulation of an x-obstruction-free protocol is
   wait-free whenever m <= (n - x)/(f - x), i.e. whenever the protocol
   is below the Corollary 33 bound with f = k + 1.

   We run the upper-bound regime m = n - k + x [16] with f = 2
   simulators (1 covering + 1 direct) and check the simulators' outputs
   against k-set agreement, and print the surrounding bound table.

   Run with: dune exec examples/kset_reduction.exe *)

open Core

let () =
  let n = 7 and k = 3 and x = 1 in
  let m = Upper.kset ~n ~k ~x in
  Printf.printf
    "k-set agreement: n=%d k=%d x=%d | lower bound %d registers, upper bound %d.\n\n"
    n k x (Lower.kset ~n ~k ~x) m;
  let spec =
    {
      Harness.protocol = (fun pid input -> (Racing.protocol ~m ()) pid input);
      n;
      m;
      f = 2;
      d = x;
      inputs = [ Value.Int 10; Value.Int 20 ];
    }
  in
  print_string (Harness.architecture spec);
  print_newline ();
  let ok = ref 0 in
  let runs = 50 in
  for seed = 0 to runs - 1 do
    let result = Harness.run ~sched:(Schedule.random ~seed) spec in
    match Harness.validate spec result ~task:(Task.kset ~k) with
    | Ok () -> incr ok
    | Error e -> Printf.printf "seed %d: %s\n" seed (Harness.explain e)
  done;
  Printf.printf "valid %d-set agreement among the simulators in %d/%d runs.\n\n" k
    !ok runs;
  print_endline "Bound landscape (Corollary 33 vs [16]):";
  Tables.print_kset Format.std_formatter
    (Tables.kset_rows ~ns:[ n; 2 * n ] ~ks:[ 1; k; n - 1 ] ~xs:[ 1; 2; 3 ])
